/// \file traffic.h
/// \brief The OLTP traffic engine: thousands of simulated sessions driven
/// as resumable state machines by one smallest-time-first event scheduler.
///
/// Each session runs the modified-TPC-C mix (session.h) one *statement* at
/// a time — every op is a yield point, so sessions genuinely interleave on
/// the shared simulated resources instead of executing whole transactions
/// back to back. On top of the raw pipeline sit the two CN-side mechanisms
/// this subsystem exists to measure:
///
/// * group commit (group_commit.h) — commit-ready transactions accumulate
///   in a window and flush through one batched 2PC round + one log force;
/// * admission control (admission.h) — a max-in-flight gate with a bounded
///   wait queue; queue time is charged to transaction latency and overflow
///   is shed.
///
/// RunTpcc (tpcc_workload.h) is a thin wrapper over RunTraffic with both
/// mechanisms off, preserving the legacy closed-loop semantics.
#pragma once

#include <cstdint>

#include "cluster/tpcc_workload.h"
#include "cluster/traffic/admission.h"
#include "cluster/traffic/group_commit.h"

namespace ofi::cluster::traffic {

struct TrafficOptions {
  /// Total simulated sessions (must be > 0). Unlike TpccConfig's
  /// clients_per_dn this is an absolute count — the headline experiments
  /// sweep it to thousands per cluster.
  int sessions = 64;
  /// Idle time a session waits between commit ack and its next arrival.
  SimTime think_time_us = 0;
  /// Back-off before a session retries after an abort or a shed.
  SimTime abort_backoff_us = 50;
  GroupCommitConfig group_commit;
  AdmissionConfig admission;
};

struct TrafficResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Arrivals turned away by admission control (sessions retry after
  /// back-off; each refusal counts once).
  uint64_t shed = 0;
  double throughput_tps = 0;

  /// Per-transaction simulated commit latency (arrival at the CN — before
  /// any admission wait — to commit ack), exact percentiles.
  SimTime latency_p50_us = 0;
  SimTime latency_p95_us = 0;
  SimTime latency_p99_us = 0;
  double latency_mean_us = 0;

  uint64_t gtm_requests = 0;
  int64_t upgrades = 0;
  int64_t downgrades = 0;

  /// Group-commit activity during the run (0 when disabled).
  int64_t group_batches = 0;
  int64_t group_txns = 0;
  /// Durable log forces charged by the commit path (batched or not).
  int64_t log_writes = 0;

  /// Admission-control activity during the run.
  int64_t admission_queued = 0;
  int64_t admission_shed = 0;
  int64_t admission_wait_us = 0;
  int max_in_flight_seen = 0;
};

/// Runs `options.sessions` sessions of the modified-TPC-C mix against
/// `cluster` for `config.duration_us` of simulated time. The cluster must
/// already be loaded via LoadTpcc. Returns InvalidArgument on nonsensical
/// options or config.
Result<TrafficResult> RunTraffic(Cluster* cluster, const TpccConfig& config,
                                 const TrafficOptions& options);

}  // namespace ofi::cluster::traffic
