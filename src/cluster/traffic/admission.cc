#include "cluster/traffic/admission.h"

#include <algorithm>

namespace ofi::cluster::traffic {

AdmissionDecision AdmissionController::Request(int64_t ticket, SimTime now) {
  std::lock_guard lock(mu_);
  if (config_.max_in_flight <= 0 || in_flight_ < config_.max_in_flight) {
    ++in_flight_;
    ++total_admitted_;
    return AdmissionDecision::kAdmitted;
  }
  if (queue_.size() < config_.max_queue) {
    queue_.push_back(Waiter{ticket, now});
    ++total_queued_;
    return AdmissionDecision::kQueued;
  }
  ++total_shed_;
  return AdmissionDecision::kShed;
}

bool AdmissionController::Release(SimTime now, int64_t* next_ticket,
                                  SimTime* admitted_at) {
  std::lock_guard lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (queue_.empty()) return false;
  Waiter w = queue_.front();
  queue_.pop_front();
  ++in_flight_;
  ++total_admitted_;
  total_wait_us_ += std::max<SimTime>(0, now - w.enqueued_at);
  if (next_ticket != nullptr) *next_ticket = w.ticket;
  if (admitted_at != nullptr) *admitted_at = now;
  return true;
}

}  // namespace ofi::cluster::traffic
