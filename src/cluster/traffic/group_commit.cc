#include "cluster/traffic/group_commit.h"

namespace ofi::cluster::traffic {

std::vector<GroupCommitCoordinator::FlushedTxn> GroupCommitCoordinator::Flush(
    SimTime flush_time) {
  std::vector<FlushedTxn> out;
  if (window_.empty()) return out;
  ++generation_;

  std::vector<Txn*> txns;
  txns.reserve(window_.size());
  for (const Entry& e : window_) txns.push_back(e.txn);
  std::vector<GroupCommitOutcome> outcomes =
      cluster_->CommitBatch(txns, flush_time);

  out.reserve(window_.size());
  for (size_t i = 0; i < window_.size(); ++i) {
    out.push_back(FlushedTxn{window_[i].ticket, std::move(outcomes[i])});
  }
  window_.clear();
  return out;
}

}  // namespace ofi::cluster::traffic
