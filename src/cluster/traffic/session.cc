#include "cluster/traffic/session.h"

#include <algorithm>

namespace ofi::cluster::traffic {
namespace {

using sql::Row;
using sql::Value;

/// The warehouse sharding means "another shard" = a warehouse on another DN
/// (degenerate 1-node clusters pick any other warehouse; the transaction
/// still runs the multi-shard protocol, as declared).
int64_t RemoteWarehouse(int64_t home, Rng* rng, const WorkloadParams& p) {
  if (p.num_dns <= 1) {
    if (p.total_warehouses <= 1) return home;
    int64_t w = rng->Uniform(0, p.total_warehouses - 1);
    return w == home ? (w + 1) % p.total_warehouses : w;
  }
  int home_dn = static_cast<int>(home) % p.num_dns;
  int other_dn = static_cast<int>(rng->Uniform(0, p.num_dns - 2));
  if (other_dn >= home_dn) ++other_dn;
  int64_t slot = rng->Uniform(0, p.warehouses_per_dn - 1);
  return slot * p.num_dns + other_dn;
}

}  // namespace

void Session::PlanNextTxn(const WorkloadParams& p) {
  plan.clear();
  next_op = 0;
  delivery_batch = 0;
  pending_order_key = -1;

  // Same draw order as the legacy closed loop, so the mix distribution is
  // unchanged.
  bool multi_shard = rng.Chance(p.multi_shard_fraction);
  double mix = rng.NextDouble();
  int64_t w = home_warehouse;

  if (mix < 0.44) {
    // NewOrder: read customer, bump district, insert an order, decrement
    // stock (line 0 remote when multi-shard).
    type = TxnType::kNewOrder;
    scope = multi_shard ? TxnScope::kMultiShard : TxnScope::kSingleShard;
    int64_t cust = rng.NURand(1023, 0, p.customers_per_warehouse - 1) %
                   p.customers_per_warehouse;
    plan.push_back(Op{Op::Kind::kRead, "customer", tpcc::CustomerKey(w, cust), {}});
    plan.push_back(Op{Op::Kind::kAddDeltas, "district",
                      tpcc::DistrictKey(w, rng.Uniform(0, 9)),
                      {{1, 1}}});
    int64_t lines = rng.Uniform(2, 4);
    // Order sequence stays inside the warehouse's key range so the order
    // row co-locates with its warehouse (session id keeps writers disjoint).
    int64_t seq = (next_order_seq++ * 1024 + (id & 1023)) % 400'000;
    int64_t ok = tpcc::OrderKey(w, seq);
    Op insert{Op::Kind::kInsertOrder, "orders", ok, {}};
    insert.customer = cust;
    insert.lines = lines;
    plan.push_back(std::move(insert));
    pending_order_key = ok;
    for (int64_t line = 0; line < lines; ++line) {
      int64_t item_w =
          (multi_shard && line == 0) ? RemoteWarehouse(w, &rng, p) : w;
      plan.push_back(Op{Op::Kind::kStockDecrement, "stock",
                        tpcc::StockKey(item_w,
                                       rng.Uniform(0, p.stock_per_warehouse - 1)),
                        {}});
    }
  } else if (mix < 0.86) {
    // Payment: +ytd on district and warehouse, +balance on a customer
    // (remote when multi-shard). The hot warehouse row goes LAST so the
    // first-updater-wins conflict window is only the commit tail, not the
    // whole transaction.
    type = TxnType::kPayment;
    scope = multi_shard ? TxnScope::kMultiShard : TxnScope::kSingleShard;
    int64_t cust_w = multi_shard ? RemoteWarehouse(w, &rng, p) : w;
    int64_t cust = rng.NURand(1023, 0, p.customers_per_warehouse - 1) %
                   p.customers_per_warehouse;
    plan.push_back(Op{Op::Kind::kAddDeltas, "district",
                      tpcc::DistrictKey(w, rng.Uniform(0, 9)),
                      {{1, 10}}});
    plan.push_back(Op{Op::Kind::kAddDeltas, "customer",
                      tpcc::CustomerKey(cust_w, cust),
                      {{1, -10}, {2, 1}}});
    plan.push_back(Op{Op::Kind::kAddDeltas, "warehouse", tpcc::WarehouseKey(w),
                      {{1, 10}}});
  } else if (mix < 0.90) {
    // OrderStatus: read-only customer + district probe.
    type = TxnType::kOrderStatus;
    scope = TxnScope::kSingleShard;
    int64_t cust = rng.NURand(1023, 0, p.customers_per_warehouse - 1) %
                   p.customers_per_warehouse;
    plan.push_back(Op{Op::Kind::kRead, "customer", tpcc::CustomerKey(w, cust), {}});
    plan.push_back(Op{Op::Kind::kRead, "district",
                      tpcc::DistrictKey(w, rng.Uniform(0, 9)), {}});
  } else if (mix < 0.95 && !undelivered.empty()) {
    // Delivery: mark up to 10 of this session's oldest open orders
    // delivered and credit the customers; the credit comes out of the
    // warehouse's collected ytd (money moves, it is never minted).
    type = TxnType::kDelivery;
    scope = TxnScope::kSingleShard;
    delivery_batch = std::min<size_t>(10, undelivered.size());
    for (size_t i = 0; i < delivery_batch; ++i) {
      plan.push_back(Op{Op::Kind::kDeliverOrder, "orders", undelivered[i], {}});
    }
    plan.push_back(Op{Op::Kind::kAddDeltas, "warehouse", tpcc::WarehouseKey(w),
                      {{1, -static_cast<int64_t>(delivery_batch)}}});
  } else {
    // StockLevel: read-only — a district probe plus 20 stock reads.
    type = TxnType::kStockLevel;
    scope = TxnScope::kSingleShard;
    plan.push_back(Op{Op::Kind::kRead, "district",
                      tpcc::DistrictKey(w, rng.Uniform(0, 9)), {}});
    for (int i = 0; i < 20; ++i) {
      plan.push_back(Op{Op::Kind::kRead, "stock",
                        tpcc::StockKey(w, rng.Uniform(0, p.stock_per_warehouse - 1)),
                        {}});
    }
  }
}

Status Session::ExecuteNextOp() {
  const Op& op = plan[next_op++];
  Txn& t = *txn;
  switch (op.kind) {
    case Op::Kind::kRead:
      return t.Read(op.table, Value(op.key)).status();
    case Op::Kind::kAddDeltas: {
      OFI_ASSIGN_OR_RETURN(Row row, t.Read(op.table, Value(op.key)));
      for (const Op::ColDelta& d : op.deltas) {
        row[d.col] = Value(row[d.col].AsInt() + d.delta);
      }
      return t.Update(op.table, Value(op.key), std::move(row));
    }
    case Op::Kind::kStockDecrement: {
      OFI_ASSIGN_OR_RETURN(Row row, t.Read(op.table, Value(op.key)));
      row[1] = Value(row[1].AsInt() <= 10 ? 91 : row[1].AsInt() - 1);
      return t.Update(op.table, Value(op.key), std::move(row));
    }
    case Op::Kind::kInsertOrder: {
      Value ok(op.key);
      return t.Insert(op.table, ok,
                      {ok, Value(op.customer), Value(op.lines), Value(0)});
    }
    case Op::Kind::kDeliverOrder: {
      Value ok(op.key);
      OFI_ASSIGN_OR_RETURN(Row orow, t.Read("orders", ok));
      int64_t cust = orow[1].AsInt();
      orow[3] = Value(1);
      OFI_RETURN_NOT_OK(t.Update("orders", ok, std::move(orow)));
      // Credit the order's customer (same warehouse as the order).
      Value ck(tpcc::CustomerKey(tpcc::WarehouseOf(op.key), cust));
      OFI_ASSIGN_OR_RETURN(Row crow, t.Read("customer", ck));
      crow[1] = Value(crow[1].AsInt() + 1);
      return t.Update("customer", ck, std::move(crow));
    }
  }
  return Status::Internal("unreachable op kind");
}

void Session::OnCommitted() {
  ++committed;
  if (delivery_batch > 0) {
    undelivered.erase(undelivered.begin(),
                      undelivered.begin() + static_cast<ptrdiff_t>(delivery_batch));
  }
  if (pending_order_key >= 0) undelivered.push_back(pending_order_key);
}

}  // namespace ofi::cluster::traffic
