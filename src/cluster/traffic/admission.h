/// \file admission.h
/// \brief CN-side admission control for the OLTP traffic subsystem: a
/// max-in-flight-transactions gate with a bounded FIFO wait queue. Sessions
/// that cannot start immediately either queue (their wait is charged to
/// simulated latency) or, when the queue itself is full, are shed — the
/// overload valve that lets throughput degrade gracefully instead of every
/// session piling onto the data-node queues at once.
///
/// Thread safety: all methods are guarded by an internal mutex. The
/// simulated traffic engine drives the controller from one thread, but the
/// same component is reusable from a real multi-threaded front end (and the
/// tsan-gated stress test exercises exactly that).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "common/sim_clock.h"

namespace ofi::cluster::traffic {

struct AdmissionConfig {
  /// Transactions allowed past the gate at once. 0 = unlimited (the gate
  /// and the queue are bypassed entirely).
  int max_in_flight = 0;
  /// Waiting sessions the queue holds before arrivals are shed.
  size_t max_queue = 1024;
};

/// What the controller decided for one arriving transaction.
enum class AdmissionDecision { kAdmitted, kQueued, kShed };

/// \brief The admission gate. Callers identify waiting sessions by an
/// opaque ticket (the traffic engine passes session ids).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// A transaction wants to start at simulated time `now`. Either admits it
  /// (slot taken), parks it in the FIFO queue, or sheds it.
  AdmissionDecision Request(int64_t ticket, SimTime now);

  /// A previously admitted transaction finished at `now`, freeing its slot.
  /// If a session is waiting, it is admitted in FIFO order: `*next_ticket`
  /// receives its ticket, `*admitted_at` the admission time (== `now`), and
  /// the session's queue wait is accounted. Returns true when a waiter was
  /// promoted.
  bool Release(SimTime now, int64_t* next_ticket, SimTime* admitted_at);

  int in_flight() const {
    std::lock_guard lock(mu_);
    return in_flight_;
  }
  size_t queue_depth() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

  // Cumulative counters (admission.* metrics).
  int64_t total_admitted() const {
    std::lock_guard lock(mu_);
    return total_admitted_;
  }
  int64_t total_queued() const {
    std::lock_guard lock(mu_);
    return total_queued_;
  }
  int64_t total_shed() const {
    std::lock_guard lock(mu_);
    return total_shed_;
  }
  int64_t total_wait_us() const {
    std::lock_guard lock(mu_);
    return total_wait_us_;
  }

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Waiter {
    int64_t ticket;
    SimTime enqueued_at;
  };

  AdmissionConfig config_;
  mutable std::mutex mu_;
  int in_flight_ = 0;
  std::deque<Waiter> queue_;
  int64_t total_admitted_ = 0;
  int64_t total_queued_ = 0;
  int64_t total_shed_ = 0;
  int64_t total_wait_us_ = 0;
};

}  // namespace ofi::cluster::traffic
