#include "cluster/traffic/traffic.h"

#include <algorithm>

#include "cluster/traffic/session.h"
#include <queue>
#include <vector>

namespace ofi::cluster::traffic {
namespace {

/// Exact percentile over a sorted sample (nearest-rank).
SimTime Percentile(const std::vector<SimTime>& sorted, int p) {
  if (sorted.empty()) return 0;
  size_t rank = (sorted.size() * static_cast<size_t>(p) + 99) / 100;
  if (rank < 1) rank = 1;
  return sorted[rank - 1];
}

struct Event {
  SimTime time;
  uint64_t seq;  // FIFO tie-break at equal times
  enum class Kind { kStep, kFlush } kind;
  int session = 0;           // kStep
  uint64_t generation = 0;   // kFlush
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

Status Validate(const TpccConfig& config, const TrafficOptions& options) {
  if (options.sessions <= 0)
    return Status::InvalidArgument("traffic: sessions must be positive");
  if (config.warehouses_per_dn <= 0)
    return Status::InvalidArgument("traffic: warehouses_per_dn must be positive");
  if (config.duration_us <= 0)
    return Status::InvalidArgument("traffic: duration_us must be positive");
  if (config.customers_per_warehouse <= 0 || config.stock_per_warehouse <= 0)
    return Status::InvalidArgument("traffic: per-warehouse sizes must be positive");
  if (config.multi_shard_fraction < 0.0 || config.multi_shard_fraction > 1.0)
    return Status::InvalidArgument(
        "traffic: multi_shard_fraction must be in [0, 1]");
  if (options.group_commit.enabled && options.group_commit.max_batch == 0)
    return Status::InvalidArgument("traffic: group-commit max_batch must be > 0");
  return Status::OK();
}

}  // namespace

Result<TrafficResult> RunTraffic(Cluster* cluster, const TpccConfig& config,
                                 const TrafficOptions& options) {
  if (cluster == nullptr)
    return Status::InvalidArgument("traffic: cluster is null");
  OFI_RETURN_NOT_OK(Validate(config, options));

  WorkloadParams params;
  params.num_dns = cluster->num_dns();
  params.warehouses_per_dn = config.warehouses_per_dn;
  params.total_warehouses = config.warehouses_per_dn * cluster->num_dns();
  params.multi_shard_fraction = config.multi_shard_fraction;
  params.customers_per_warehouse = config.customers_per_warehouse;
  params.stock_per_warehouse = config.stock_per_warehouse;

  std::vector<Session> sessions(options.sessions);
  for (int i = 0; i < options.sessions; ++i) {
    sessions[i].id = i;
    // Spread sessions over warehouses; warehouse w lives on DN (w % num_dns),
    // so consecutive sessions land on different DNs.
    sessions[i].home_warehouse = i % params.total_warehouses;
    sessions[i].rng = Rng(config.seed * 7919 + i);
  }
  // True while a session holds an admission slot granted by a queue
  // promotion it has not yet consumed.
  std::vector<char> preadmitted(sessions.size(), 0);

  AdmissionController admission(options.admission);
  GroupCommitCoordinator group_commit(cluster, options.group_commit);

  const uint64_t gtm_before = cluster->gtm().requests_served();
  MetricsRegistry& metrics = cluster->metrics();
  const int64_t upgrades_before = metrics.Get("merge.upgrades");
  const int64_t downgrades_before = metrics.Get("merge.downgrades");
  const int64_t batches_before = metrics.Get("group_commit.batches");
  const int64_t gc_txns_before = metrics.Get("group_commit.txns");
  const int64_t log_writes_before = metrics.Get("commitlog.log_writes");

  std::priority_queue<Event, std::vector<Event>, EventLater> heap;
  uint64_t next_seq = 0;
  auto schedule_step = [&](int session, SimTime at) {
    heap.push(Event{at, next_seq++, Event::Kind::kStep, session, 0});
  };
  auto schedule_flush = [&](SimTime at, uint64_t generation) {
    heap.push(Event{at, next_seq++, Event::Kind::kFlush, 0, generation});
  };

  const SimTime backoff = std::max<SimTime>(1, options.abort_backoff_us);
  std::vector<SimTime> latencies;
  TrafficResult result;

  /// A transaction that held an admission slot finished at `now`: free the
  /// slot and, if a session is waiting, admit it and resume it.
  auto release_slot = [&](SimTime now) {
    int64_t ticket = 0;
    SimTime admitted_at = 0;
    if (admission.Release(now, &ticket, &admitted_at)) {
      preadmitted[ticket] = 1;
      result.max_in_flight_seen =
          std::max(result.max_in_flight_seen, admission.in_flight());
      schedule_step(static_cast<int>(ticket), admitted_at);
    }
  };

  auto handle_flush = [&](SimTime flush_time) {
    for (GroupCommitCoordinator::FlushedTxn& f : group_commit.Flush(flush_time)) {
      Session& ss = sessions[f.ticket];
      if (f.outcome.status.ok()) {
        SimTime done = std::max(flush_time, f.outcome.done);
        latencies.push_back(done - ss.arrival_us);
        ss.OnCommitted();
        ss.txn.reset();
        release_slot(done);
        schedule_step(ss.id, done + options.think_time_us);
      } else {
        // CommitBatch already aborted the transaction (failed prepare).
        ++ss.aborted;
        ss.txn.reset();
        release_slot(flush_time);
        schedule_step(ss.id, flush_time + backoff);
      }
    }
  };

  for (int i = 0; i < options.sessions; ++i) schedule_step(i, 0);

  uint64_t events = 0;
  while (!heap.empty()) {
    Event ev = heap.top();
    heap.pop();
    // Event times are monotone and every future resource arrival is at or
    // after the current event, so older busy intervals can be dropped.
    if (++events % 4096 == 0) cluster->scheduler().Trim(ev.time);

    if (ev.kind == Event::Kind::kFlush) {
      if (!group_commit.IsStale(ev.generation)) handle_flush(ev.time);
      continue;
    }

    Session& ss = sessions[ev.session];
    if (!ss.txn.has_value()) {
      // Arrival: this session wants to start its next transaction.
      if (ev.time >= config.duration_us) {
        // Run over. If this session was promoted from the admission queue,
        // pass the slot on so the queue drains.
        if (preadmitted[ev.session]) {
          preadmitted[ev.session] = 0;
          release_slot(ev.time);
        }
        continue;
      }
      if (preadmitted[ev.session]) {
        preadmitted[ev.session] = 0;  // arrival_us was set when it queued
      } else {
        ss.arrival_us = ev.time;
        switch (admission.Request(ev.session, ev.time)) {
          case AdmissionDecision::kQueued:
            continue;  // parked; Release() will resume it
          case AdmissionDecision::kShed:
            ++ss.shed;
            schedule_step(ev.session, ev.time + backoff);
            continue;
          case AdmissionDecision::kAdmitted:
            result.max_in_flight_seen =
                std::max(result.max_in_flight_seen, admission.in_flight());
            break;
        }
      }
      ss.PlanNextTxn(params);
      ss.txn = cluster->Begin(ss.scope, ev.time);
      schedule_step(ev.session, ev.time);  // first op, after peers at this time
      continue;
    }

    Txn& txn = *ss.txn;
    txn.AdvanceTo(ev.time);

    if (!ss.PlanExhausted()) {
      Status st = ss.ExecuteNextOp();
      if (st.ok()) {
        schedule_step(ev.session, std::max(ev.time + 1, txn.now()));
      } else {
        (void)txn.Abort();
        SimTime done = std::max(ev.time, txn.now());
        ++ss.aborted;
        ss.txn.reset();
        release_slot(done);
        schedule_step(ev.session, done + backoff);
      }
      continue;
    }

    // Commit point.
    if (options.group_commit.enabled) {
      GroupCommitCoordinator::Enqueued e =
          group_commit.Add(ev.session, &txn, ev.time);
      if (e.flush_now) {
        handle_flush(ev.time);
      } else if (e.schedule_deadline) {
        schedule_flush(e.deadline, e.generation);
      }
      continue;  // parked until its window flushes
    }
    Status st = txn.Commit();
    SimTime done = std::max(ev.time, txn.now());
    if (st.ok()) {
      latencies.push_back(done - ss.arrival_us);
      ss.OnCommitted();
      ss.txn.reset();
      release_slot(done);
      schedule_step(ev.session, done + options.think_time_us);
    } else {
      (void)txn.Abort();
      done = std::max(done, txn.now());
      ++ss.aborted;
      ss.txn.reset();
      release_slot(done);
      schedule_step(ev.session, done + backoff);
    }
  }

  for (const Session& ss : sessions) {
    result.committed += ss.committed;
    result.aborted += ss.aborted;
    result.shed += ss.shed;
  }
  result.throughput_tps = static_cast<double>(result.committed) /
                          (static_cast<double>(config.duration_us) / 1e6);

  std::sort(latencies.begin(), latencies.end());
  result.latency_p50_us = Percentile(latencies, 50);
  result.latency_p95_us = Percentile(latencies, 95);
  result.latency_p99_us = Percentile(latencies, 99);
  if (!latencies.empty()) {
    double sum = 0;
    for (SimTime l : latencies) sum += static_cast<double>(l);
    result.latency_mean_us = sum / static_cast<double>(latencies.size());
  }

  result.gtm_requests = cluster->gtm().requests_served() - gtm_before;
  result.upgrades = metrics.Get("merge.upgrades") - upgrades_before;
  result.downgrades = metrics.Get("merge.downgrades") - downgrades_before;
  result.group_batches = metrics.Get("group_commit.batches") - batches_before;
  result.group_txns = metrics.Get("group_commit.txns") - gc_txns_before;
  result.log_writes = metrics.Get("commitlog.log_writes") - log_writes_before;

  result.admission_queued = admission.total_queued();
  result.admission_shed = admission.total_shed();
  result.admission_wait_us = admission.total_wait_us();
  metrics.Add("admission.queued", result.admission_queued);
  metrics.Add("admission.shed", result.admission_shed);
  metrics.Add("admission.wait_us", result.admission_wait_us);
  return result;
}

}  // namespace ofi::cluster::traffic
