/// \file session.h
/// \brief A resumable simulated OLTP session: one TPC-C-style terminal
/// whose transaction is a *plan of ops* executed one step at a time, so
/// thousands of sessions interleave on the shared simulated resources at
/// statement granularity instead of running one blocking loop each.
///
/// The mix and per-transaction logic mirror the legacy closed-loop driver
/// (NewOrder / Payment / OrderStatus / Delivery / StockLevel, warehouse
/// co-located keys, explicit single-shard fraction) — the difference is
/// that every statement is a yield point for the traffic scheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cluster/tpcc_workload.h"
#include "common/rng.h"

namespace ofi::cluster::traffic {

/// The modified-TPC-C transaction mix (paper §II-A2).
enum class TxnType { kNewOrder, kPayment, kOrderStatus, kDelivery, kStockLevel };

/// One step of a transaction plan. A step is the unit of work between two
/// scheduler yields: a point read, or a read-modify-write of one row.
struct Op {
  enum class Kind {
    kRead,            // point read of `key` in `table`
    kAddDeltas,       // read `key`, add every (col, delta), write back
    kStockDecrement,  // the TPC-C stock decrement with the wrap-at-10 rule
    kInsertOrder,     // insert the order row
    kDeliverOrder,    // mark one order delivered and credit its customer
  };
  struct ColDelta {
    int col;
    int64_t delta;
  };

  Kind kind;
  const char* table = "";
  int64_t key = 0;
  std::vector<ColDelta> deltas;  // kAddDeltas payload
  int64_t customer = 0;          // kInsertOrder payload
  int64_t lines = 0;             // kInsertOrder payload
};

/// Workload shape shared by every session (derived from TpccConfig).
struct WorkloadParams {
  int total_warehouses = 0;
  int warehouses_per_dn = 0;
  int num_dns = 0;
  double multi_shard_fraction = 0.0;
  int customers_per_warehouse = 0;
  int stock_per_warehouse = 0;
};

/// \brief One simulated session. The traffic engine owns the scheduling;
/// the session owns its RNG stream, its open transaction and its plan.
struct Session {
  int id = 0;
  int64_t home_warehouse = 0;
  Rng rng;
  int64_t next_order_seq = 0;
  std::deque<int64_t> undelivered;  // this session's open order keys

  // --- Current transaction -------------------------------------------------
  TxnType type = TxnType::kPayment;
  TxnScope scope = TxnScope::kSingleShard;
  std::vector<Op> plan;
  size_t next_op = 0;
  std::optional<Txn> txn;
  /// When this transaction arrived at the CN (before any admission wait);
  /// committed latency = commit ack time - arrival.
  SimTime arrival_us = 0;
  size_t delivery_batch = 0;      // orders to pop from `undelivered` on commit
  int64_t pending_order_key = -1;  // NewOrder key to record on commit

  // --- Tallies -------------------------------------------------------------
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t shed = 0;

  /// Draws the next transaction (type, scope, plan) from the mix. The draw
  /// order matches the legacy closed-loop driver.
  void PlanNextTxn(const WorkloadParams& p);

  /// Executes the next op of the plan on the open transaction. OK = step
  /// done (caller yields until txn->now()); error = the transaction must
  /// abort.
  Status ExecuteNextOp();

  bool PlanExhausted() const { return next_op >= plan.size(); }

  /// Post-commit bookkeeping (pops delivered orders, records new ones).
  void OnCommitted();
};

}  // namespace ofi::cluster::traffic
