/// \file group_commit.h
/// \brief CN-side group-commit coordinator for the traffic engine: instead
/// of forcing the commit log once per transaction, commit-ready
/// transactions accumulate in an open *window* and flush together through
/// Cluster::CommitBatch — one batched 2PC round per data node and one log
/// force for the whole window. The window closes when it fills
/// (`max_batch`) or when its deadline (`window_us` after the first entrant)
/// fires, whichever comes first.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"

namespace ofi::cluster::traffic {

struct GroupCommitConfig {
  bool enabled = false;
  /// How long the first commit in a window waits for company.
  SimTime window_us = 200;
  /// Window size that triggers an immediate flush.
  size_t max_batch = 64;
};

/// \brief Accumulates commit-ready transactions and flushes them as one
/// batch. Single-threaded: driven by the traffic engine's event loop.
class GroupCommitCoordinator {
 public:
  GroupCommitCoordinator(Cluster* cluster, GroupCommitConfig config)
      : cluster_(cluster), config_(config) {}

  struct Enqueued {
    /// The window is full — the caller should Flush() right away instead of
    /// waiting for the deadline.
    bool flush_now = false;
    /// Deadline for the window this transaction joined (valid when it was
    /// the first entrant: the caller schedules a flush event here).
    SimTime deadline = 0;
    bool schedule_deadline = false;
    /// Window generation, for recognizing stale deadline events.
    uint64_t generation = 0;
  };

  /// Adds a commit-ready transaction (identified by `ticket`) to the open
  /// window at simulated time `now`. The Txn must stay alive until the
  /// window flushes.
  Enqueued Add(int64_t ticket, Txn* txn, SimTime now) {
    Enqueued e;
    if (window_.empty()) {
      e.schedule_deadline = true;
      e.deadline = now + config_.window_us;
    }
    window_.push_back(Entry{ticket, txn});
    e.generation = generation_;
    e.flush_now = window_.size() >= config_.max_batch;
    return e;
  }

  /// True when a deadline event carrying `generation` refers to a window
  /// that already flushed (its timer should be ignored).
  bool IsStale(uint64_t generation) const { return generation != generation_; }

  struct FlushedTxn {
    int64_t ticket;
    GroupCommitOutcome outcome;
  };

  /// Closes the open window and commits it through one CommitBatch round
  /// departing at `flush_time`. Returns the per-transaction outcomes in
  /// window (stage) order.
  std::vector<FlushedTxn> Flush(SimTime flush_time);

  size_t window_size() const { return window_.size(); }

 private:
  struct Entry {
    int64_t ticket;
    Txn* txn;
  };

  Cluster* cluster_;
  GroupCommitConfig config_;
  std::vector<Entry> window_;
  uint64_t generation_ = 0;
};

}  // namespace ofi::cluster::traffic
