#include "cluster/cluster.h"

#include <map>

#include "common/thread_pool.h"
#include "txn/snapshot.h"

namespace ofi::cluster {

Cluster::Cluster(int num_dns, Protocol protocol, LatencyModel latency)
    : protocol_(protocol), latency_(latency) {
  gtm_resource_ = scheduler_.AddResource();
  for (int i = 0; i < num_dns; ++i) {
    dns_.push_back(std::make_unique<DataNode>(i));
    dn_resources_.push_back(scheduler_.AddResource());
  }
}

Status Cluster::CreateTable(const std::string& name, const sql::Schema& schema) {
  for (auto& dn : dns_) {
    OFI_RETURN_NOT_OK(dn->CreateTable(name, schema));
  }
  return Status::OK();
}

namespace {

/// Builds one DN's delta-store shard and registers it, replacing any
/// existing shard. AttachChangeListener snapshots the heap and installs
/// the listener under one exclusive lock, so the shard's base state plus
/// its event stream cover every heap version exactly once.
Status BuildColumnarShard(DataNode* dn, const std::string& name,
                          const txn::Gtm& gtm) {
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * heap, dn->GetTable(name));
  auto shard = std::make_shared<storage::DeltaShard>(heap->schema());
  storage::ListenerId listener = 0;
  storage::HeapDump dump = heap->AttachChangeListener(
      [shard](const storage::HeapChange& c) { shard->OnHeapChange(c); },
      &listener);
  // The DN-local horizon (Vacuum's convention) and the GTM safe horizon
  // bound what the base build may fold into sealed chunks; the rest of the
  // dump starts life in the delta tail.
  txn::Xid horizon = dn->txn_mgr().TakeSnapshot().xmin;
  shard->InstallBase(std::move(dump), &dn->txn_mgr().clog(), horizon,
                     gtm.SafeHorizon(), heap->epoch());
  dn->RegisterColumnar(name, std::move(shard), listener);
  return Status::OK();
}

/// Builds one DN's index shard: AttachChangeListener's atomic dump+install
/// guarantees the base postings plus the event stream cover every heap
/// version exactly once. The build itself is synchronous and takes no pool
/// task and no heap lock while installing (the dump is a copy), so it can
/// never deadlock against background delta merges sharing the thread pool.
Status BuildIndexShard(DataNode* dn, const std::string& table,
                       const std::string& column,
                       storage::SecondaryIndex::Kind kind) {
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * heap, dn->GetTable(table));
  OFI_ASSIGN_OR_RETURN(auto index, storage::SecondaryIndex::Make(
                                       heap->schema(), column, kind));
  storage::ListenerId listener = 0;
  storage::HeapDump dump = heap->AttachChangeListener(
      [index](const storage::HeapChange& c) { index->OnHeapChange(c); },
      &listener);
  index->InstallBase(std::move(dump));
  dn->RegisterIndex(table, std::move(index), listener);
  return Status::OK();
}

}  // namespace

Status Cluster::RegisterColumnar(const std::string& name) {
  for (auto& dn : dns_) {
    OFI_RETURN_NOT_OK(BuildColumnarShard(dn.get(), name, gtm_));
  }
  columnar_tables_.insert(name);
  metrics_.Add("columnar.registered");
  return Status::OK();
}

storage::DeltaShard::MergeResult Cluster::RunMerge(
    int dn, const std::shared_ptr<storage::DeltaShard>& shard,
    const std::string& name, SimTime arrival) {
  DataNode* node = dns_[dn].get();
  auto heap = node->GetTable(name);
  if (!heap.ok()) return storage::DeltaShard::MergeResult{};
  txn::Xid horizon = node->txn_mgr().TakeSnapshot().xmin;
  storage::DeltaShard::MergeResult res = shard->Merge(
      node->txn_mgr().clog(), horizon, gtm_.SafeHorizon(), (*heap)->epoch());
  if (res.changed()) {
    size_t work = res.folded + res.dropped;
    (void)ChargeDnMerge(dn, arrival, work);
    metrics_.Add("columnar.merges");
    metrics_.Add("columnar.merge_rows", static_cast<int64_t>(work));
  }
  return res;
}

Result<size_t> Cluster::RefreshColumnar(const std::string& name) {
  if (!IsColumnar(name)) {
    return Status::NotFound("no columnar copy registered for " + name);
  }
  size_t merged = 0;
  for (size_t i = 0; i < dns_.size(); ++i) {
    auto shard = dns_[i]->GetColumnarShard(name);
    if (shard == nullptr) continue;
    if (RunMerge(static_cast<int>(i), shard, name, 0).changed()) ++merged;
  }
  if (merged > 0) {
    metrics_.Add("columnar.refreshes", static_cast<int64_t>(merged));
  }
  return merged;
}

void Cluster::NoteColumnarWrite(int dn, const std::string& table, SimTime now) {
  if (!auto_merge_ || columnar_tables_.count(table) == 0) return;
  auto shard = dns_[dn]->GetColumnarShard(table);
  if (shard == nullptr || shard->delta_size() < delta_merge_threshold_) return;
  if (!shard->TryScheduleMerge()) return;  // a merge task is already queued
  {
    std::lock_guard lock(merge_wait_mu_);
    ++merges_inflight_;
  }
  // The merge runs off the query path on the shared pool; its simulated
  // cost is charged on the DN resource with the triggering write's time as
  // arrival (the DN starts folding as soon as the tail crosses the
  // threshold).
  common::ThreadPool::Shared().Submit([this, dn, shard, table, now] {
    (void)RunMerge(dn, shard, table, now);
    shard->MergeTaskDone();
    std::lock_guard lock(merge_wait_mu_);
    if (--merges_inflight_ == 0) merge_cv_.notify_all();
  });
}

void Cluster::WaitForMerges() {
  std::unique_lock lock(merge_wait_mu_);
  merge_cv_.wait(lock, [this] { return merges_inflight_ == 0; });
}

Cluster::~Cluster() { WaitForMerges(); }

bool Cluster::IsColumnar(const std::string& name) const {
  return columnar_tables_.count(name) > 0;
}

void Cluster::DropColumnar(const std::string& name) {
  for (auto& dn : dns_) dn->DropColumnar(name);
  columnar_tables_.erase(name);
}

Status Cluster::CreateIndex(const std::string& table, const std::string& column,
                            bool ordered) {
  if (HasIndex(table, column)) {
    return Status::AlreadyExists("index exists: " + table + "(" + column + ")");
  }
  storage::SecondaryIndex::Kind kind = ordered
                                           ? storage::SecondaryIndex::Kind::kOrdered
                                           : storage::SecondaryIndex::Kind::kHash;
  for (auto& dn : dns_) {
    OFI_RETURN_NOT_OK(BuildIndexShard(dn.get(), table, column, kind));
  }
  {
    std::lock_guard<std::mutex> lock(indexed_tables_mu_);
    ++indexed_tables_[table];
  }
  metrics_.Add("index.created");
  return Status::OK();
}

void Cluster::DropIndexes(const std::string& table) {
  for (auto& dn : dns_) dn->DropIndexes(table);
  std::lock_guard<std::mutex> lock(indexed_tables_mu_);
  indexed_tables_.erase(table);
}

bool Cluster::HasIndex(const std::string& table,
                       const std::string& column) const {
  if (dns_.empty()) return false;
  for (const auto& idx : dns_[0]->Indexes(table)) {
    if (idx->column() == column) return true;
    // Accept a bare name against the registered qualified one.
    const std::string& q = idx->column();
    size_t dot = q.rfind('.');
    if (dot != std::string::npos && q.compare(dot + 1, std::string::npos,
                                              column) == 0) {
      return true;
    }
  }
  return false;
}

std::shared_ptr<storage::SecondaryIndex> Cluster::IndexOn(
    int dn, const std::string& table, size_t col) const {
  return dns_[dn]->GetIndex(table, col);
}

void Cluster::NoteIndexWrite(const std::string& table) {
  int count = 0;
  {
    std::lock_guard<std::mutex> lock(indexed_tables_mu_);
    auto it = indexed_tables_.find(table);
    if (it == indexed_tables_.end()) return;
    count = it->second;
  }
  metrics_.Add("index.maintenance_ops", count);
}

SimTime Cluster::ChargeGtm(SimTime arrival) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime done = scheduler_.Charge(gtm_resource_, a, latency_.gtm_service_us);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnStmt(int dn, SimTime arrival) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime done = scheduler_.Charge(dn_resources_[dn], a, latency_.dn_stmt_service_us);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnCommit(int dn, SimTime arrival) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime done =
      scheduler_.Charge(dn_resources_[dn], a, latency_.dn_commit_service_us);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnCommitBatch(int dn, SimTime arrival, size_t records,
                                     bool durable) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime service = latency_.dn_commit_service_us;
  if (records > 1) {
    service += static_cast<SimTime>(records - 1) * latency_.dn_batch_record_service_us;
  }
  if (durable) {
    service += latency_.log_write_service_us;
    metrics_.Add("commitlog.log_writes");
  }
  SimTime done = scheduler_.Charge(dn_resources_[dn], a, service);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnColumnarScan(int dn, SimTime arrival,
                                      size_t chunks_scanned,
                                      size_t delta_rows) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime service = latency_.columnar_stmt_service_us +
                    static_cast<SimTime>(chunks_scanned) *
                        latency_.columnar_chunk_service_us +
                    static_cast<SimTime>((delta_rows + 255) / 256) *
                        latency_.columnar_delta_block_service_us;
  SimTime done = scheduler_.Charge(dn_resources_[dn], a, service);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnIndexProbe(int dn, SimTime arrival,
                                    size_t rows_returned) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime service = latency_.index_probe_service_us +
                    static_cast<SimTime>(rows_returned) *
                        latency_.index_row_service_us;
  SimTime done = scheduler_.Charge(dn_resources_[dn], a, service);
  metrics_.Add("index.lookups");
  metrics_.Add("index.rows_returned", static_cast<int64_t>(rows_returned));
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnRowScan(int dn, SimTime arrival,
                                 size_t rows_examined) {
  SimTime a = arrival + latency_.network_hop_us;
  SimTime service = latency_.dn_stmt_service_us +
                    static_cast<SimTime>((rows_examined + 255) / 256) *
                        latency_.row_scan_block_service_us;
  SimTime done = scheduler_.Charge(dn_resources_[dn], a, service);
  return done + latency_.network_hop_us;
}

SimTime Cluster::ChargeDnMerge(int dn, SimTime arrival, size_t records) {
  SimTime blocks = static_cast<SimTime>((records + 255) / 256);
  SimTime service =
      std::max<SimTime>(1, blocks * latency_.columnar_merge_block_service_us);
  return scheduler_.Charge(dn_resources_[dn], arrival, service);
}

Status Cluster::EnableReplication() {
  if (dns_.size() < 2) {
    return Status::InvalidArgument("replication needs at least 2 data nodes");
  }
  replication_enabled_ = true;
  down_.assign(dns_.size(), false);
  shadows_.assign(dns_.size(), ShadowShard{});
  return Status::OK();
}

void Cluster::ShipToBackup(int primary, const ReplicationRecord& record) {
  shadows_[primary].Apply(record);
  metrics_.Add("repl.records");
  metrics_.Add("repl.bytes", static_cast<int64_t>(record.ByteSize()));
}

int Cluster::EffectiveDn(int shard) const {
  if (!replication_enabled_ || down_.empty() || !down_[shard]) return shard;
  return BackupOf(shard);
}

Status Cluster::FailDn(int dn) {
  if (!replication_enabled_) {
    return Status::InvalidArgument("replication is not enabled");
  }
  if (down_[dn]) return Status::InvalidArgument("dn already down");
  int backup = BackupOf(dn);
  if (down_[backup]) {
    return Status::Unavailable("backup is down too: data loss");
  }
  down_[dn] = true;
  // Promote: materialize the shadow into the backup's MVCC tables under a
  // single committed recovery transaction. Keys are disjoint from the
  // backup's own shard, so tables can be shared.
  DataNode* node = dns_[backup].get();
  txn::Xid rec_xid = node->txn_mgr().Begin();
  txn::Snapshot snap = node->txn_mgr().TakeSnapshot();
  txn::VisibilityChecker vis(&snap, &node->txn_mgr().clog(), rec_xid);
  for (const auto& [table_name, rows] : shadows_[dn].tables()) {
    auto table = node->GetTable(table_name);
    if (!table.ok()) continue;
    for (const auto& [key_str, rec] : rows) {
      if (rec.deleted) continue;
      (void)(*table)->Insert(rec.key, rec.row, rec_xid, vis);
    }
  }
  OFI_RETURN_NOT_OK(node->txn_mgr().Commit(rec_xid));
  metrics_.Add("ha.failovers");
  return Status::OK();
}

size_t Cluster::Vacuum() {
  size_t removed = 0;
  for (auto& dn : dns_) {
    // The DN-local horizon: the oldest xid any open local snapshot can
    // reference. With no active transactions this is next_xid (everything
    // committed is fair game).
    txn::Snapshot snap = dn->txn_mgr().TakeSnapshot();
    txn::Xid horizon = snap.xmin;
    for (auto& [name, table] : dn->mutable_tables()) {
      removed += table->Vacuum(horizon, dn->txn_mgr().clog());
      // Index postings age out under the same horizon rule; the heap fires
      // no vacuum events, so indexes compact themselves here.
      for (const auto& idx : dn->Indexes(name)) {
        size_t pruned = idx->Compact(dn->txn_mgr().clog(), horizon);
        if (pruned > 0) {
          metrics_.Add("index.compacted", static_cast<int64_t>(pruned));
        }
      }
    }
  }
  metrics_.Add("vacuum.removed", static_cast<int64_t>(removed));
  return removed;
}

int Cluster::RecoverInDoubtTransactions() {
  int resolved = 0;
  for (auto& dn : dns_) {
    resolved += dn->RecoverInDoubt(gtm_);
  }
  return resolved;
}

Txn Cluster::Begin(TxnScope scope, SimTime start_time) {
  // Periodic background maintenance: prune per-DN merge state below the
  // global safe horizon so xidMap/LCO scans stay O(recent transactions).
  // (Atomic counter: concurrent Begins may both cross the boundary, which
  // just prunes twice — PruneBelowHorizon is idempotent.)
  if (begins_since_maintenance_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      64) {
    begins_since_maintenance_.store(0, std::memory_order_relaxed);
    txn::Gxid horizon = gtm_.SafeHorizon();
    for (auto& dn : dns_) {
      dn->txn_mgr().mutable_clog().PruneBelowHorizon(horizon);
    }
  }
  Txn t(this, scope, start_time);
  bool needs_gtm =
      protocol_ == Protocol::kBaselineGtm || scope == TxnScope::kMultiShard;
  if (needs_gtm) {
    // One round trip carrying two serialized GTM requests: GXID allocation
    // and the global snapshot.
    t.gxid_ = gtm_.BeginGlobal();
    t.global_snapshot_ = gtm_.TakeGlobalSnapshot();
    SimTime a = t.now_ + latency_.network_hop_us;
    SimTime done = scheduler_.Charge(gtm_resource_, a, 2 * latency_.gtm_service_us);
    t.now_ = done + latency_.network_hop_us;
    metrics_.Add("gtm.begin");
  }
  metrics_.Add("txn.begin");
  return t;
}

Txn::Txn(Cluster* cluster, TxnScope scope, SimTime start)
    : cluster_(cluster), scope_(scope), now_(start) {}

Result<Txn::DnContext*> Txn::OpenContext(int dn, SimTime* clock) {
  if (cluster_->IsDown(dn)) {
    return Status::Unavailable("dn" + std::to_string(dn) + " is down");
  }
  auto it = dns_.find(dn);
  if (it != dns_.end()) return &it->second;

  if (cluster_->protocol() == Protocol::kGtmLite &&
      scope_ == TxnScope::kSingleShard && !dns_.empty()) {
    return Status::InvalidArgument(
        "single-shard transaction touched a second shard (dn" +
        std::to_string(dn) + ")");
  }

  DataNode* node = cluster_->dn(dn);
  DnContext ctx;
  if (cluster_->protocol() == Protocol::kBaselineGtm) {
    // The GXID doubles as this DN's xid; visibility uses the global snapshot.
    node->BeginExternal(gxid_);
    ctx.xid = gxid_;
  } else if (scope_ == TxnScope::kSingleShard) {
    ctx.xid = node->txn_mgr().Begin();
    ctx.local_snapshot = node->txn_mgr().TakeSnapshot();
  } else {
    // Multi-shard GTM-lite: local xid + local snapshot, then Algorithm 1.
    // The snapshot merge is real DN work (xidMap probe + LCO traversal):
    // charge one statement's worth of service for it.
    *clock = cluster_->ChargeDnStmt(dn, *clock);
    ctx.xid = node->txn_mgr().Begin();
    node->txn_mgr().BindGxid(ctx.xid, gxid_);
    ctx.local_snapshot = node->txn_mgr().TakeSnapshot();
    auto waiter = [this, node, clock](txn::Xid lxid, txn::Gxid) {
      // UPGRADE: the reader waits out the commit-confirmation window.
      *clock += cluster_->latency().commit_confirm_delay_us;
      return node->FinishPendingCommit(lxid);
    };
    ctx.merged = txn::MergeSnapshots(*global_snapshot_, *ctx.local_snapshot,
                                     node->txn_mgr().clog(), waiter);
    upgrades_ += ctx.merged->upgrades;
    downgrades_ += ctx.merged->downgrades;
    cluster_->metrics().Add("merge.upgrades", ctx.merged->upgrades);
    cluster_->metrics().Add("merge.downgrades", ctx.merged->downgrades);
  }
  auto [ins, _] = dns_.emplace(dn, std::move(ctx));
  return &ins->second;
}

Result<Txn::DnContext*> Txn::Touch(int dn) { return OpenContext(dn, &now_); }

Result<SimTime> Txn::PrepareShard(int dn, SimTime arrival) {
  if (finished_) return Status::InvalidArgument("txn finished");
  SimTime clock = arrival;
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, OpenContext(dn, &clock));
  (void)ctx;
  return clock;
}

Result<std::vector<sql::Row>> Txn::ScanShardPrepared(const std::string& table,
                                                     int dn) const {
  auto it = dns_.find(dn);
  if (it == dns_.end()) {
    return Status::InvalidArgument("shard not prepared: dn" + std::to_string(dn));
  }
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  return t->ScanVisible(CheckerFor(dn, it->second));
}

Result<txn::VisibilityChecker> Txn::VisibilityForPrepared(int dn) const {
  auto it = dns_.find(dn);
  if (it == dns_.end()) {
    return Status::InvalidArgument("shard not prepared: dn" + std::to_string(dn));
  }
  return CheckerFor(dn, it->second);
}

txn::VisibilityChecker Txn::CheckerFor(int dn, const DnContext& ctx) const {
  const txn::CommitLog& clog = cluster_->dn(dn)->txn_mgr().clog();
  if (cluster_->protocol() == Protocol::kBaselineGtm) {
    return txn::VisibilityChecker(&*global_snapshot_, &clog, ctx.xid);
  }
  if (ctx.merged.has_value()) {
    return txn::VisibilityChecker(&*ctx.merged, &clog, ctx.xid);
  }
  return txn::VisibilityChecker(&*ctx.local_snapshot, &clog, ctx.xid);
}

Result<sql::Row> Txn::Read(const std::string& table, const sql::Value& key) {
  if (finished_) return Status::InvalidArgument("txn finished");
  int dn = cluster_->EffectiveDn(cluster_->ShardFor(key));
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, Touch(dn));
  // OLTP fast path: any index on the table carries covering heap-key
  // postings, so a point read is an index probe (cheap per-probe service)
  // instead of a heap statement — same snapshot, same visible row.
  if (auto idx = cluster_->dn(dn)->GetAnyIndex(table)) {
    Result<sql::Row> row = idx->ProbeHeapKey(key, CheckerFor(dn, *ctx));
    now_ = cluster_->ChargeDnIndexProbe(dn, now_, row.ok() ? 1 : 0);
    return row;
  }
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  now_ = cluster_->ChargeDnStmt(dn, now_);
  return t->Read(key, CheckerFor(dn, *ctx));
}

Result<std::vector<sql::Row>> Txn::ScanShard(const std::string& table, int dn) {
  if (finished_) return Status::InvalidArgument("txn finished");
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, Touch(dn));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  now_ = cluster_->ChargeDnStmt(dn, now_);
  return t->ScanVisible(CheckerFor(dn, *ctx));
}

Status Txn::Insert(const std::string& table, const sql::Value& key, sql::Row row) {
  if (finished_) return Status::InvalidArgument("txn finished");
  int dn = cluster_->EffectiveDn(cluster_->ShardFor(key));
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, Touch(dn));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  now_ = cluster_->ChargeDnStmt(dn, now_);
  sql::Row row_copy = row;
  OFI_RETURN_NOT_OK(t->Insert(key, std::move(row), ctx->xid, CheckerFor(dn, *ctx)));
  ctx->writes.push_back(WriteRecord{table, key, row_copy, false});
  cluster_->NoteColumnarWrite(dn, table, now_);
  cluster_->NoteIndexWrite(table);
  return Status::OK();
}

Status Txn::Update(const std::string& table, const sql::Value& key, sql::Row row) {
  if (finished_) return Status::InvalidArgument("txn finished");
  int dn = cluster_->EffectiveDn(cluster_->ShardFor(key));
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, Touch(dn));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  now_ = cluster_->ChargeDnStmt(dn, now_);
  sql::Row row_copy = row;
  OFI_RETURN_NOT_OK(t->Update(key, std::move(row), ctx->xid, CheckerFor(dn, *ctx)));
  ctx->writes.push_back(WriteRecord{table, key, row_copy, false});
  cluster_->NoteColumnarWrite(dn, table, now_);
  cluster_->NoteIndexWrite(table);
  return Status::OK();
}

Status Txn::Delete(const std::string& table, const sql::Value& key) {
  if (finished_) return Status::InvalidArgument("txn finished");
  int dn = cluster_->EffectiveDn(cluster_->ShardFor(key));
  OFI_ASSIGN_OR_RETURN(DnContext * ctx, Touch(dn));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * t, cluster_->dn(dn)->GetTable(table));
  now_ = cluster_->ChargeDnStmt(dn, now_);
  OFI_RETURN_NOT_OK(t->Delete(key, ctx->xid, CheckerFor(dn, *ctx)));
  ctx->writes.push_back(WriteRecord{table, key, {}, true});
  cluster_->NoteColumnarWrite(dn, table, now_);
  cluster_->NoteIndexWrite(table);
  return Status::OK();
}

Status Txn::CommitSingleShard() {
  // GTM-lite single-shard: one local commit message (with its own log
  // force), zero GTM traffic.
  for (auto& [dn, ctx] : dns_) {
    now_ = cluster_->ChargeDnCommitBatch(dn, now_, 1, /*durable=*/true);
    OFI_RETURN_NOT_OK(cluster_->dn(dn)->txn_mgr().Commit(ctx.xid, txn::kNoGxid));
  }
  return Status::OK();
}

Status Txn::CommitTwoPhase() {
  const bool baseline = cluster_->protocol() == Protocol::kBaselineGtm;
  const bool single_dn = dns_.size() <= 1;

  // Phase one: prepare every participant (skipped for a 1-DN transaction).
  // A prepare is durable — the DN must survive a crash still knowing it
  // promised to commit — so each message carries a log force.
  if (!single_dn) {
    for (auto& [dn, ctx] : dns_) {
      now_ = cluster_->ChargeDnCommitBatch(dn, now_, 1, /*durable=*/true);
      Status st = cluster_->dn(dn)->txn_mgr().Prepare(ctx.xid);
      if (!st.ok()) {
        Abort();
        return st;
      }
    }
  }

  if (baseline) {
    // PG-XC order: commit on every node, then dequeue from the GTM, so a
    // fresh global snapshot never exposes a half-committed transaction.
    for (auto& [dn, ctx] : dns_) {
      now_ = cluster_->ChargeDnCommitBatch(dn, now_, 1, /*durable=*/true);
      OFI_RETURN_NOT_OK(cluster_->dn(dn)->txn_mgr().Commit(ctx.xid, gxid_));
    }
    now_ = cluster_->ChargeGtm(now_);
    OFI_RETURN_NOT_OK(cluster_->gtm().CommitGlobal(gxid_));
    return Status::OK();
  }

  // GTM-lite order (paper §II-A2): the GTM marks the transaction committed
  // FIRST, then confirmations reach the DNs — the Anomaly1 window that
  // UPGRADE closes on the reader side.
  now_ = cluster_->ChargeGtm(now_);
  OFI_RETURN_NOT_OK(cluster_->gtm().CommitGlobal(gxid_));
  for (auto& [dn, ctx] : dns_) {
    now_ = cluster_->ChargeDnCommitBatch(dn, now_, 1, /*durable=*/true);
    if (cluster_->delay_commit_confirmations() && !single_dn) {
      cluster_->dn(dn)->EnqueuePendingCommit(ctx.xid, gxid_);
    } else {
      OFI_RETURN_NOT_OK(cluster_->dn(dn)->txn_mgr().Commit(ctx.xid, gxid_));
    }
  }
  return Status::OK();
}

Status Txn::Commit() {
  if (finished_) return Status::InvalidArgument("txn already finished");
  finished_ = true;
  Status st;
  if (cluster_->protocol() == Protocol::kGtmLite &&
      scope_ == TxnScope::kSingleShard) {
    st = CommitSingleShard();
  } else {
    st = CommitTwoPhase();
  }
  if (st.ok()) {
    committed_ = true;
    cluster_->metrics().Add("txn.commit");
    if (cluster_->replication_enabled()) {
      // Synchronous logical replication of the committed write set to each
      // touched primary's backup (one round trip per participant).
      for (auto& [dn, ctx] : dns_) {
        if (ctx.writes.empty()) continue;
        for (const auto& w : ctx.writes) {
          cluster_->ShipToBackup(dn, ReplicationRecord{w.table, w.key, w.row,
                                                       w.deleted});
        }
        now_ = cluster_->ChargeDnCommit(cluster_->BackupOf(dn), now_);
      }
    }
  } else {
    cluster_->metrics().Add("txn.commit_failed");
  }
  return st;
}

std::vector<GroupCommitOutcome> Cluster::CommitBatch(
    const std::vector<Txn*>& txns, SimTime flush_time) {
  std::vector<GroupCommitOutcome> out(txns.size());
  const bool baseline = protocol_ == Protocol::kBaselineGtm;

  std::vector<bool> live(txns.size(), false);
  for (size_t i = 0; i < txns.size(); ++i) {
    Txn* t = txns[i];
    if (t == nullptr || t->finished_) {
      out[i].status = Status::InvalidArgument("txn already finished");
      continue;
    }
    t->finished_ = true;
    live[i] = true;
    out[i].done = flush_time;
  }

  // One record per (transaction, participant DN). A transaction prepares
  // only when it spans more than one DN — same rule as the per-commit path.
  struct Rec {
    size_t i;
    Txn* t;
    Txn::DnContext* ctx;
  };
  std::map<int, std::vector<Rec>> by_dn;
  std::map<int, std::vector<Rec>> prep_by_dn;
  for (size_t i = 0; i < txns.size(); ++i) {
    if (!live[i]) continue;
    Txn* t = txns[i];
    for (auto& [dn, ctx] : t->dns_) {
      by_dn[dn].push_back(Rec{i, t, &ctx});
      if (t->dns_.size() > 1) prep_by_dn[dn].push_back(Rec{i, t, &ctx});
    }
  }

  // Phase one: one batched prepare message per DN, all records sharing one
  // round trip and one log force. The batch's prepare barrier is the max
  // over DNs — the coordinator sends the decision only once every
  // participant has promised.
  SimTime prep_barrier = flush_time;
  for (auto& [dn, recs] : prep_by_dn) {
    SimTime done = ChargeDnCommitBatch(dn, flush_time, recs.size(), true);
    prep_barrier = std::max(prep_barrier, done);
    for (Rec& r : recs) {
      if (!live[r.i]) continue;
      Status st = dns_[dn]->txn_mgr().Prepare(r.ctx->xid);
      if (!st.ok()) {
        live[r.i] = false;
        out[r.i].status = st;
        (void)r.t->Abort();  // rolls back every touched DN, frees the gxid
      }
    }
  }

  // The global decision: one GTM round trip carrying every global commit in
  // the batch (GTM-lite sends it before the DN confirmations, the baseline
  // dequeues after every DN has committed).
  auto charge_gtm_batch = [this](SimTime arrival, size_t n) {
    SimTime a = arrival + latency_.network_hop_us;
    SimTime done = scheduler_.Charge(gtm_resource_, a,
                                     static_cast<SimTime>(n) * latency_.gtm_service_us);
    return done + latency_.network_hop_us;
  };
  SimTime gtm_done = prep_barrier;
  if (!baseline) {
    std::vector<Txn*> global;
    for (size_t i = 0; i < txns.size(); ++i) {
      if (live[i] && txns[i]->gxid_ != txn::kNoGxid) global.push_back(txns[i]);
    }
    if (!global.empty()) {
      gtm_done = charge_gtm_batch(prep_barrier, global.size());
      for (Txn* t : global) (void)gtm_.CommitGlobal(t->gxid_);
    }
  }

  // Apply phase: one batched confirmation message per DN. Every record is
  // staged into the DN's group-commit window and the window is flushed
  // once — a single log write makes the whole batch visible atomically
  // with respect to snapshots taken before/after the flush.
  SimTime apply_barrier = flush_time;
  for (auto& [dn, recs] : by_dn) {
    size_t n_live = 0;
    SimTime arrival = flush_time;
    for (Rec& r : recs) {
      if (!live[r.i]) continue;
      ++n_live;
      if (r.t->dns_.size() > 1) arrival = std::max(arrival, prep_barrier);
      if (!baseline && r.t->gxid_ != txn::kNoGxid) {
        arrival = std::max(arrival, gtm_done);
      }
    }
    if (n_live == 0) continue;
    SimTime done = ChargeDnCommitBatch(dn, arrival, n_live, true);
    apply_barrier = std::max(apply_barrier, done);
    for (Rec& r : recs) {
      if (!live[r.i]) continue;
      if (!baseline && delay_commit_confirm_ && r.t->dns_.size() > 1) {
        // Anomaly1 test hook: the confirmation queues instead of applying.
        dns_[dn]->EnqueuePendingCommit(r.ctx->xid, r.t->gxid_);
      } else {
        Status st = dns_[dn]->txn_mgr().StageCommit(r.ctx->xid, r.t->gxid_);
        if (!st.ok()) {
          live[r.i] = false;
          out[r.i].status = st;
        }
      }
      out[r.i].done = std::max(out[r.i].done, done);
    }
    dns_[dn]->txn_mgr().FlushStaged();
  }
  {
    int64_t survivors = 0;
    for (size_t i = 0; i < txns.size(); ++i) {
      if (live[i]) ++survivors;
    }
    metrics_.Add("group_commit.txns", survivors);
  }
  metrics_.Add("group_commit.batches");

  if (baseline) {
    // PG-XC order: the GTM dequeue happens only after every node committed.
    std::vector<Txn*> global;
    for (size_t i = 0; i < txns.size(); ++i) {
      if (live[i] && txns[i]->gxid_ != txn::kNoGxid) global.push_back(txns[i]);
    }
    if (!global.empty()) {
      gtm_done = charge_gtm_batch(apply_barrier, global.size());
      for (Txn* t : global) (void)gtm_.CommitGlobal(t->gxid_);
      for (size_t i = 0; i < txns.size(); ++i) {
        if (live[i] && txns[i]->gxid_ != txn::kNoGxid) {
          out[i].done = std::max(out[i].done, gtm_done);
        }
      }
    }
  }

  // Wrap-up per survivor: committed flag, metrics, replication shipping.
  for (size_t i = 0; i < txns.size(); ++i) {
    if (!live[i]) continue;
    Txn* t = txns[i];
    t->committed_ = true;
    metrics_.Add("txn.commit");
    if (replication_enabled_) {
      SimTime done = out[i].done;
      for (auto& [dn, ctx] : t->dns_) {
        if (ctx.writes.empty()) continue;
        for (const auto& w : ctx.writes) {
          ShipToBackup(dn, ReplicationRecord{w.table, w.key, w.row, w.deleted});
        }
        done = ChargeDnCommit(BackupOf(dn), done);
      }
      out[i].done = done;
    }
    t->now_ = std::max(t->now_, out[i].done);
  }
  return out;
}

Status Txn::Abort() {
  // A committed transaction must never be rolled back: its version-chain
  // edits are visible to others already.
  if (committed_) {
    return Status::InvalidArgument("cannot abort a committed transaction");
  }
  if (finished_ && dns_.empty()) return Status::OK();
  finished_ = true;
  for (auto& [dn, ctx] : dns_) {
    DataNode* node = cluster_->dn(dn);
    for (const auto& w : ctx.writes) {
      auto t = node->GetTable(w.table);
      if (t.ok()) (*t)->RollbackKey(w.key, ctx.xid);
    }
    now_ = cluster_->ChargeDnCommit(dn, now_);
    // Abort may race with an earlier failure; ignore state errors.
    (void)node->txn_mgr().Abort(ctx.xid);
  }
  if (gxid_ != txn::kNoGxid && !cluster_->gtm().IsCommitted(gxid_)) {
    now_ = cluster_->ChargeGtm(now_);
    (void)cluster_->gtm().AbortGlobal(gxid_);
  }
  cluster_->metrics().Add("txn.abort");
  return Status::OK();
}

}  // namespace ofi::cluster
