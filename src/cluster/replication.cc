#include "cluster/replication.h"

namespace ofi::cluster {

void ShadowShard::Apply(const ReplicationRecord& record) {
  ++records_applied_;
  bytes_received_ += record.ByteSize();
  tables_[record.table][record.key.ToString()] = record;
}

size_t ShadowShard::live_rows() const {
  size_t n = 0;
  for (const auto& [table, rows] : tables_) {
    for (const auto& [key, rec] : rows) {
      if (!rec.deleted) ++n;
    }
  }
  return n;
}

}  // namespace ofi::cluster
