#include "cluster/distributed_plan.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <latch>
#include <map>
#include <optional>

#include "sql/executor.h"
#include "storage/delta_store.h"
#include "txn/snapshot.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::AggSpec;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Table;
using sql::TypeId;
using sql::Value;

/// The partial aggregates one requested aggregate decomposes into, and how
/// the final stage merges them.
struct PartialPlan {
  std::vector<AggSpec> partial;  // computed per shard
  // Final-stage spec over the unioned partials; AVG needs a post-division.
  std::vector<AggSpec> final_specs;
  bool is_avg = false;
  std::string sum_name, count_name;  // for AVG
};

PartialPlan DecomposeAgg(const DistributedAgg& agg) {
  PartialPlan plan;
  switch (agg.func) {
    case AggFunc::kCount:
      plan.partial = {AggSpec{AggFunc::kCount,
                              agg.column.empty() ? nullptr
                                                 : Expr::ColumnRef(agg.column),
                              agg.name}};
      // Final: COUNT partials SUM together.
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      plan.partial = {AggSpec{agg.func, Expr::ColumnRef(agg.column), agg.name}};
      plan.final_specs = {
          AggSpec{agg.func == AggFunc::kSum ? AggFunc::kSum : agg.func,
                  Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kAvg:
      // AVG decomposes into (SUM, COUNT); the CN divides at the end.
      plan.is_avg = true;
      plan.sum_name = agg.name + "$sum";
      plan.count_name = agg.name + "$cnt";
      plan.partial = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.column), plan.sum_name},
          AggSpec{AggFunc::kCount, Expr::ColumnRef(agg.column), plan.count_name}};
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.sum_name), plan.sum_name},
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.count_name),
                  plan.count_name}};
      break;
  }
  return plan;
}

size_t TableBytes(const Table& t) {
  size_t n = 0;
  for (const auto& row : t.rows()) n += sql::RowByteSize(row);
  return n;
}

std::string BareName(const std::string& qualified) {
  auto dot = qualified.rfind('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

/// Output column names for the group-by keys. A bare name is used only when
/// it stays unambiguous across every output column; `GROUP BY a.x, b.x`
/// keeps the qualified names (both stripping to `x` would collide in the
/// projected schema). Returns InvalidArgument if names collide even
/// qualified.
Result<std::vector<std::string>> GroupOutputNames(
    const std::vector<std::string>& group_by,
    const std::vector<DistributedAgg>& aggs) {
  std::map<std::string, int> bare_uses;
  for (const auto& g : group_by) ++bare_uses[BareName(g)];
  for (const auto& a : aggs) ++bare_uses[a.name];

  std::vector<std::string> names;
  names.reserve(group_by.size());
  for (const auto& g : group_by) {
    const std::string bare = BareName(g);
    names.push_back(bare_uses[bare] > 1 ? g : bare);
  }

  std::map<std::string, int> final_uses;
  for (const auto& n : names) ++final_uses[n];
  for (const auto& a : aggs) ++final_uses[a.name];
  for (const auto& [name, uses] : final_uses) {
    if (uses > 1) {
      return Status::InvalidArgument("ambiguous output column: " + name);
    }
  }
  return names;
}

/// One shard's fragment output, filled in by a pool worker.
struct FragSlot {
  Status status = Status::OK();
  Table table;  // partial-aggregate rows or plain result rows
  size_t partial_bytes = 0;
  size_t naive_bytes = 0;
  size_t build_spill_bytes = 0;  // join build partition spooled to disk
  bool columnar = false;
  storage::ScanStats stats;  // columnar and index-probe shards
  /// Heap rows a row-path scan walked (visible versions before the filter);
  /// drives the deferred per-block row-scan latency charge.
  size_t rows_examined = 0;
};

// --- Columnar scan path (storage/column_store) -------------------------------

/// A filter the columnar kernels evaluate natively: TRUE, one inclusive
/// int64 range on a column, or one string equality. Comparison predicates
/// lower onto the range with saturated bounds, and And() of ranges on the
/// same column intersects. Anything else falls back to the row store.
struct ColumnarPredicate {
  enum class Kind { kAll, kIntRange, kStringEq };
  Kind kind = Kind::kAll;
  std::string column;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  std::string needle;
  /// Statically unsatisfiable (x > INT64_MAX, or an empty intersection):
  /// the scan short-circuits to an empty selection.
  bool never = false;
};

std::optional<ColumnarPredicate> RecognizeExpr(const Expr& e) {
  if (e.kind() == sql::ExprKind::kCompare) {
    if (e.children().size() != 2) return std::nullopt;
    const Expr& l = *e.children()[0];
    const Expr& r = *e.children()[1];
    if (l.kind() != sql::ExprKind::kColumn || r.kind() != sql::ExprKind::kLiteral) {
      return std::nullopt;
    }
    const Value& lit = r.literal();
    ColumnarPredicate p;
    p.column = l.column_name();
    if (lit.type() == TypeId::kString && e.compare_op() == sql::CompareOp::kEq) {
      p.kind = ColumnarPredicate::Kind::kStringEq;
      p.needle = lit.AsString();
      return p;
    }
    if (lit.type() != TypeId::kInt64) return std::nullopt;
    const int64_t v = lit.AsInt();
    p.kind = ColumnarPredicate::Kind::kIntRange;
    switch (e.compare_op()) {
      case sql::CompareOp::kEq:
        p.lo = p.hi = v;
        break;
      case sql::CompareOp::kGt:
        if (v == std::numeric_limits<int64_t>::max()) p.never = true;
        else p.lo = v + 1;
        break;
      case sql::CompareOp::kGe:
        p.lo = v;
        break;
      case sql::CompareOp::kLt:
        if (v == std::numeric_limits<int64_t>::min()) p.never = true;
        else p.hi = v - 1;
        break;
      case sql::CompareOp::kLe:
        p.hi = v;
        break;
      default:
        return std::nullopt;  // <> needs NULL-aware decode; not worth it
    }
    return p;
  }
  if (e.kind() == sql::ExprKind::kLogical &&
      e.logical_op() == sql::LogicalOp::kAnd && e.children().size() == 2) {
    auto a = RecognizeExpr(*e.children()[0]);
    auto b = RecognizeExpr(*e.children()[1]);
    if (!a || !b || a->kind != ColumnarPredicate::Kind::kIntRange ||
        b->kind != ColumnarPredicate::Kind::kIntRange || a->column != b->column) {
      return std::nullopt;
    }
    a->lo = std::max(a->lo, b->lo);
    a->hi = std::min(a->hi, b->hi);
    a->never = a->never || b->never || a->lo > a->hi;
    return a;
  }
  return std::nullopt;
}

/// nullopt = filter not columnar-evaluable (row fallback for the query).
std::optional<ColumnarPredicate> RecognizeFilter(const sql::ExprPtr& filter) {
  if (!filter) return ColumnarPredicate{};  // kAll
  return RecognizeExpr(*filter);
}

/// Why (or that) the fused partial aggregate can run as pure column
/// kernels. Aggregates must be COUNT(*)/COUNT/SUM/MIN/MAX over columns
/// typed exactly kInt64 (timestamps/doubles would change the executor's
/// output value types; AVG qualifies via its SUM+COUNT split); group keys
/// must resolve on the shard schema with an int64/timestamp/string payload
/// (the key types the grouped hash kernel carries). Each failure reason
/// maps to its own `columnar.fallback_*` metric.
enum class KernelSupport : uint8_t { kOk, kUnsupportedAgg, kUnsupportedGroupBy };

KernelSupport ClassifyKernelSupport(const std::vector<std::string>& group_by,
                                    const std::vector<PartialPlan>& plans,
                                    const sql::Schema& schema) {
  for (const auto& p : plans) {
    for (const auto& spec : p.partial) {
      if (spec.arg == nullptr) continue;  // COUNT(*)
      if (spec.arg->kind() != sql::ExprKind::kColumn) {
        return KernelSupport::kUnsupportedAgg;
      }
      auto idx = schema.IndexOf(spec.arg->column_name());
      if (!idx.ok() || schema.column(*idx).type != TypeId::kInt64) {
        return KernelSupport::kUnsupportedAgg;
      }
    }
  }
  for (const auto& g : group_by) {
    auto idx = schema.IndexOf(g);
    if (!idx.ok()) return KernelSupport::kUnsupportedGroupBy;
    const TypeId t = schema.column(*idx).type;
    if (t != TypeId::kInt64 && t != TypeId::kTimestamp && t != TypeId::kString) {
      return KernelSupport::kUnsupportedGroupBy;
    }
  }
  return KernelSupport::kOk;
}

/// The EXPLAIN/per-DN label for a columnar scan fused with an aggregate.
std::string KernelSupportDetail(bool grouped, KernelSupport support) {
  switch (support) {
    case KernelSupport::kOk:
      return grouped ? "columnar(grouped-kernel)" : "columnar(kernel)";
    case KernelSupport::kUnsupportedAgg:
      return "columnar(materialize:agg)";
    case KernelSupport::kUnsupportedGroupBy:
      return "columnar(materialize:groupby-type)";
  }
  return "?";
}

/// Runs the recognized filter, returning the selection (nullopt = all rows,
/// so aggregate kernels can take their zone-map-only fast paths).
Result<std::optional<std::vector<uint32_t>>> RunColumnarFilter(
    const storage::ColumnTable& ct, const ColumnarPredicate& pred,
    const storage::ScanOptions& sopts, storage::ScanStats* stats) {
  if (pred.never) {
    return std::optional<std::vector<uint32_t>>{std::vector<uint32_t>{}};
  }
  switch (pred.kind) {
    case ColumnarPredicate::Kind::kAll:
      return std::optional<std::vector<uint32_t>>{};
    case ColumnarPredicate::Kind::kIntRange: {
      OFI_ASSIGN_OR_RETURN(
          std::vector<uint32_t> sel,
          ct.FilterBetweenInt64(pred.column, pred.lo, pred.hi, sopts, stats));
      return std::optional<std::vector<uint32_t>>{std::move(sel)};
    }
    case ColumnarPredicate::Kind::kStringEq: {
      OFI_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                           ct.FilterEqString(pred.column, pred.needle, sopts, stats));
      return std::optional<std::vector<uint32_t>>{std::move(sel)};
    }
  }
  return Status::Internal("unreachable");
}

/// Pure-kernel partial aggregate: the exact Table the row-path executor
/// would produce for a global aggregate (COUNT -> kInt64 with 0 on empty,
/// SUM/MIN/MAX -> the column's type with NULL when nothing contributes),
/// computed without materializing a single row.
Result<Table> RunColumnarKernelAgg(const storage::ColumnTable& ct,
                                   const std::vector<uint32_t>* sel,
                                   bool never,
                                   const std::vector<AggSpec>& partial_specs,
                                   const storage::ScanOptions& sopts,
                                   storage::ScanStats* stats) {
  std::vector<Column> cols;
  Row r;
  for (const auto& spec : partial_specs) {
    if (spec.arg == nullptr) {
      // COUNT(*): rows in the selection; NULLs count too.
      cols.push_back(Column{spec.name, TypeId::kInt64, ""});
      int64_t c = sel ? static_cast<int64_t>(sel->size())
                      : (never ? 0 : static_cast<int64_t>(ct.sealed_rows()));
      r.push_back(Value(c));
      continue;
    }
    const std::string& col = spec.arg->column_name();
    switch (spec.func) {
      case AggFunc::kCount: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(int64_t c, ct.CountInt64(col, sel, sopts, stats));
        r.push_back(Value(c));
        break;
      }
      case AggFunc::kSum: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> s,
                             ct.SumInt64(col, sel, sopts, stats));
        r.push_back(s ? Value(*s) : Value::Null());
        break;
      }
      case AggFunc::kMin: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> m,
                             ct.MinInt64(col, sel, sopts, stats));
        r.push_back(m ? Value(*m) : Value::Null());
        break;
      }
      case AggFunc::kMax: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> m,
                             ct.MaxInt64(col, sel, sopts, stats));
        r.push_back(m ? Value(*m) : Value::Null());
        break;
      }
      default:
        return Status::Internal("non-decomposed aggregate in kernel path");
    }
  }
  Table out{sql::Schema(std::move(cols))};
  out.mutable_rows().push_back(std::move(r));
  return out;
}

/// Grouped-kernel partial aggregate: the exact partial Table the row-path
/// executor would produce for `GROUP BY group_by` over the shard (group
/// columns carry the qualified shard-schema Column so the CN final
/// aggregation resolves them identically; SUM/MIN/MAX of zero non-null
/// inputs are NULL, COUNT partials are plain int64) — computed by the
/// vectorized hash kernel without materializing a single row.
Result<Table> RunColumnarGroupedAgg(const storage::ColumnTable& ct,
                                    const std::vector<std::string>& group_by,
                                    const std::vector<uint32_t>* sel,
                                    const std::vector<AggSpec>& partial_specs,
                                    const storage::ScanOptions& sopts,
                                    storage::ScanStats* stats) {
  std::vector<storage::GroupedAggSpec> kspecs;
  kspecs.reserve(partial_specs.size());
  for (const auto& spec : partial_specs) {
    storage::GroupedAggSpec k;
    if (spec.arg == nullptr) {
      k.op = storage::GroupedAggOp::kCountStar;
    } else {
      k.column = spec.arg->column_name();
      switch (spec.func) {
        case AggFunc::kCount: k.op = storage::GroupedAggOp::kCount; break;
        case AggFunc::kSum: k.op = storage::GroupedAggOp::kSum; break;
        case AggFunc::kMin: k.op = storage::GroupedAggOp::kMin; break;
        case AggFunc::kMax: k.op = storage::GroupedAggOp::kMax; break;
        default:
          return Status::Internal("non-decomposed aggregate in kernel path");
      }
    }
    kspecs.push_back(std::move(k));
  }
  // An unsatisfiable filter yields an empty selection, and a grouped
  // aggregate over nothing is zero groups — the kernel handles both.
  OFI_ASSIGN_OR_RETURN(
      storage::GroupedAggResult res,
      ct.GroupedAggregate(group_by, kspecs, sel, sopts, stats));

  std::vector<Column> cols;
  cols.reserve(group_by.size() + kspecs.size());
  for (const auto& g : group_by) {
    OFI_ASSIGN_OR_RETURN(size_t idx, ct.schema().IndexOf(g));
    cols.push_back(ct.schema().column(idx));
  }
  for (const auto& spec : partial_specs) {
    cols.push_back(Column{spec.name, TypeId::kInt64, ""});
  }
  Table out{sql::Schema(std::move(cols))};
  for (size_t g = 0; g < res.num_groups; ++g) {
    Row r;
    r.reserve(res.keys.size() + res.aggs.size());
    for (const auto& kc : res.keys) {
      if (kc.valid[g] == 0) {
        r.push_back(Value::Null());
      } else if (kc.type == TypeId::kString) {
        r.push_back(Value(kc.strs[g]));
      } else if (kc.type == TypeId::kTimestamp) {
        r.push_back(Value::Timestamp(kc.ints[g]));
      } else {
        r.push_back(Value(kc.ints[g]));
      }
    }
    for (size_t j = 0; j < res.aggs.size(); ++j) {
      const auto& ac = res.aggs[j];
      const bool count_like = kspecs[j].op == storage::GroupedAggOp::kCountStar ||
                              kspecs[j].op == storage::GroupedAggOp::kCount;
      if (count_like) {
        r.push_back(Value(ac.value[g]));
      } else {
        r.push_back(ac.count[g] > 0 ? Value(ac.value[g]) : Value::Null());
      }
    }
    out.mutable_rows().push_back(std::move(r));
  }
  return out;
}

// --- Delta-tail union (storage/delta_store) ---------------------------------

/// Row-path evaluation of the recognized predicate over one delta-tail row
/// (SQL semantics: NULL never matches) — the delta half of the scan union
/// must filter exactly as the kernels filter the sealed half.
bool DeltaRowMatches(const ColumnarPredicate& pred, const sql::Schema& schema,
                     const Row& row) {
  if (pred.never) return false;
  if (pred.kind == ColumnarPredicate::Kind::kAll) return true;
  auto idx = schema.IndexOf(pred.column);
  if (!idx.ok()) return false;
  const Value& v = row[*idx];
  if (v.is_null()) return false;
  if (pred.kind == ColumnarPredicate::Kind::kIntRange) {
    if (v.type() != TypeId::kInt64 && v.type() != TypeId::kTimestamp) {
      return false;
    }
    const int64_t x = v.AsInt();
    return x >= pred.lo && x <= pred.hi;
  }
  return v.type() == TypeId::kString && v.AsString() == pred.needle;
}

int64_t WrapAdd(int64_t a, int64_t b) {
  // SUM wraps modularly (matching the column kernels), so sealed + delta
  // partials combine associatively and bit-identically to the row path.
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

/// Folds filtered delta-tail rows into the one-row global-aggregate partial
/// the kernel produced for the sealed chunks. All combines are null-aware
/// and associative, so the merged partial equals what one kernel over
/// sealed+delta would have produced.
Status MergeDeltaIntoKernelAgg(Table* partial,
                               const std::vector<AggSpec>& specs,
                               const sql::Schema& schema,
                               const std::vector<Row>& delta_rows) {
  if (delta_rows.empty()) return Status::OK();
  Row& out = partial->mutable_rows()[0];
  for (size_t j = 0; j < specs.size(); ++j) {
    const AggSpec& spec = specs[j];
    if (spec.arg == nullptr) {  // COUNT(*)
      out[j] = Value(out[j].AsInt() + static_cast<int64_t>(delta_rows.size()));
      continue;
    }
    OFI_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(spec.arg->column_name()));
    int64_t count = 0;
    std::optional<int64_t> acc;
    for (const Row& r : delta_rows) {
      const Value& v = r[idx];
      if (v.is_null()) continue;
      const int64_t x = v.AsInt();
      ++count;
      if (!acc.has_value()) {
        acc = x;
      } else if (spec.func == AggFunc::kSum) {
        acc = WrapAdd(*acc, x);
      } else if (spec.func == AggFunc::kMin) {
        acc = std::min(*acc, x);
      } else if (spec.func == AggFunc::kMax) {
        acc = std::max(*acc, x);
      }
    }
    switch (spec.func) {
      case AggFunc::kCount:
        out[j] = Value(out[j].AsInt() + count);
        break;
      case AggFunc::kSum:
        if (acc.has_value()) {
          out[j] = out[j].is_null() ? Value(*acc)
                                    : Value(WrapAdd(out[j].AsInt(), *acc));
        }
        break;
      case AggFunc::kMin:
        if (acc.has_value()) {
          out[j] = out[j].is_null() ? Value(*acc)
                                    : Value(std::min(out[j].AsInt(), *acc));
        }
        break;
      case AggFunc::kMax:
        if (acc.has_value()) {
          out[j] = out[j].is_null() ? Value(*acc)
                                    : Value(std::max(out[j].AsInt(), *acc));
        }
        break;
      default:
        return Status::Internal("non-decomposed aggregate in kernel path");
    }
  }
  return Status::OK();
}

/// Folds filtered delta-tail rows into the grouped partial the hash kernel
/// produced for the sealed chunks. Grouping treats NULL = NULL (Value::
/// Equals), matching both the kernel and the row-path executor; groups the
/// delta introduces append at the tail (shard output group order is
/// unspecified — the CN final aggregation and tests canonicalize).
Status MergeDeltaIntoGroupedAgg(Table* partial,
                                const std::vector<std::string>& group_by,
                                const std::vector<AggSpec>& specs,
                                const sql::Schema& schema,
                                const std::vector<Row>& delta_rows) {
  if (delta_rows.empty()) return Status::OK();
  std::vector<size_t> key_idx;
  key_idx.reserve(group_by.size());
  for (const auto& g : group_by) {
    OFI_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(g));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(specs.size(), 0);
  for (size_t j = 0; j < specs.size(); ++j) {
    if (specs[j].arg == nullptr) continue;
    OFI_ASSIGN_OR_RETURN(size_t idx,
                         schema.IndexOf(specs[j].arg->column_name()));
    agg_idx[j] = idx;
  }
  const size_t nk = key_idx.size();
  auto& rows = partial->mutable_rows();
  for (const Row& r : delta_rows) {
    size_t gi = rows.size();
    for (size_t t = 0; t < rows.size(); ++t) {
      bool match = true;
      for (size_t k = 0; k < nk; ++k) {
        if (!rows[t][k].Equals(r[key_idx[k]])) {
          match = false;
          break;
        }
      }
      if (match) {
        gi = t;
        break;
      }
    }
    if (gi == rows.size()) {
      Row fresh;
      fresh.reserve(nk + specs.size());
      for (size_t k = 0; k < nk; ++k) fresh.push_back(r[key_idx[k]]);
      for (const auto& spec : specs) {
        const bool count_like = spec.func == AggFunc::kCount;
        fresh.push_back(count_like ? Value(static_cast<int64_t>(0))
                                   : Value::Null());
      }
      rows.push_back(std::move(fresh));
    }
    Row& out = rows[gi];
    for (size_t j = 0; j < specs.size(); ++j) {
      Value& cell = out[nk + j];
      if (specs[j].arg == nullptr) {  // COUNT(*)
        cell = Value(cell.AsInt() + 1);
        continue;
      }
      const Value& v = r[agg_idx[j]];
      if (v.is_null()) continue;
      const int64_t x = v.AsInt();
      switch (specs[j].func) {
        case AggFunc::kCount:
          cell = Value(cell.AsInt() + 1);
          break;
        case AggFunc::kSum:
          cell = cell.is_null() ? Value(x) : Value(WrapAdd(cell.AsInt(), x));
          break;
        case AggFunc::kMin:
          cell = cell.is_null() ? Value(x) : Value(std::min(cell.AsInt(), x));
          break;
        case AggFunc::kMax:
          cell = cell.is_null() ? Value(x) : Value(std::max(cell.AsInt(), x));
          break;
        default:
          return Status::Internal("non-decomposed aggregate in kernel path");
      }
    }
  }
  return Status::OK();
}

/// Dispatches fn(0..n-1) per the parallel/pool options (shared contract
/// across every fragment: execution mode never changes results).
void RunScatter(bool parallel, common::ThreadPool* pool, int n,
                const std::function<void(int)>& fn) {
  if (parallel) {
    (pool ? pool : &common::ThreadPool::Shared())->ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

std::string AggListToString(const std::vector<std::string>& group_by,
                            const std::vector<DistributedAgg>& aggs) {
  std::string s = "groups=[";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i > 0) s += ", ";
    s += group_by[i];
  }
  s += "] aggs=[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFuncName(aggs[i].func);
    s += "(";
    s += aggs[i].column.empty() ? "*" : aggs[i].column;
    s += ") AS ";
    s += aggs[i].name;
  }
  s += "]";
  return s;
}

/// \brief Executes one distributed physical plan inside one multi-shard
/// snapshot, replaying the exact simulated charge sequence of the old
/// monolithic entry points.
///
/// Latency model: `frontier_[i]` tracks when serving node i finishes its
/// last charged statement (starting at scatter_start). Fragments advance
/// the frontier — prepare, scan statement(s), exchange, join statement —
/// and the run completes at max over frontiers plus the CN gather cost,
/// while the comparison serial model sums the per-DN frontiers. Because
/// the SimScheduler's gap-fitting Charge is order-independent across
/// distinct resources, decomposing one monolithic loop into per-fragment
/// loops leaves every per-DN completion time bit-identical as long as the
/// per-resource charge order is preserved — which the frontier guarantees.
class DistPlanExecutor {
 public:
  DistPlanExecutor(Cluster* cluster, const DistExecOptions& opts)
      : cluster_(cluster),
        opts_(opts),
        batch_rows_(opts.batch_rows == 0 ? 1 : opts.batch_rows) {}

  Result<DistPlanResult> Run(const DistOpPtr& root);

 private:
  Status ExecScanFragment(const DistOp& scan, bool fused, bool count_naive,
                          std::vector<FragSlot>* slots_out);
  Status ExecIndexScanFragment(const DistOp& scan, bool fused,
                               std::vector<FragSlot>* slots_out);
  Status ExecJoinFragment(const DistOp& join, const DistOp& left_scan,
                          const DistOp& right_scan, bool fused,
                          std::vector<FragSlot>* slots_out);
  Result<Table> FinalAggregate(Table partial_union);

  exchange::ExchangeLatencyParams ExchangeParams() const {
    return exchange::ExchangeLatencyParams{
        cluster_->latency().network_hop_us,
        cluster_->latency().exchange_batch_service_us,
        cluster_->latency().exchange_kb_service_us,
        cluster_->latency().spill_write_kb_service_us,
        cluster_->latency().spill_read_kb_service_us};
  }

  Cluster* cluster_;
  DistExecOptions opts_;
  size_t batch_rows_;
  // Pipelined fragment execution is in effect (requested and not voided by
  // strict_channel_limit, whose deny-vs-succeed outcome would otherwise
  // depend on how far the consumer happened to drain the window).
  bool pipeline_on_ = false;

  std::vector<int> serving_;
  int n_ = 0;
  Txn* reader_ = nullptr;  // the Run-local multi-shard snapshot
  SimTime scatter_start_ = 0;
  // Per-serving-DN completion time of its latest charged statement.
  std::vector<SimTime> frontier_;

  // Aggregate decomposition (set when the plan has PartialAgg/FinalAgg).
  std::vector<PartialPlan> plans_;
  std::vector<std::string> group_names_;
  std::vector<std::string> agg_group_;
  std::vector<DistributedAgg> agg_specs_;

  // Join context (set when the core is a DistHashJoin).
  sql::Schema left_schema_, right_schema_;
  size_t left_key_idx_ = 0, right_key_idx_ = 0;

  DistExecStats stats_;
  // Metrics the old entry points only emitted after Commit; recorded during
  // fragment execution and replayed in Run() at the same point.
  std::vector<std::pair<std::string, int64_t>> pending_metrics_;
};

Result<DistPlanResult> DistPlanExecutor::Run(const DistOpPtr& root) {
  if (opts_.parallel && opts_.columnar_morsel_parallel) {
    return Status::InvalidArgument(
        "columnar_morsel_parallel requires parallel == false: pool workers "
        "must not nest ParallelFor (disable the scatter parallelism to "
        "morsel-parallelize within shards)");
  }
  pipeline_on_ = opts_.pipeline && !opts_.strict_channel_limit;
  stats_.pipelined = pipeline_on_;

  // Shape: FinalAgg? -> Gather -> PartialAgg? -> (DistScan | DistHashJoin
  // over two (optionally exchange-wrapped) DistScans).
  const DistOp* node = root.get();
  if (node == nullptr) {
    return Status::InvalidArgument("empty distributed plan");
  }
  const DistOp* final_agg = nullptr;
  if (node->kind == DistOpKind::kDistFinalAgg) {
    if (node->children.size() != 1) {
      return Status::InvalidArgument("DistFinalAgg must have one child");
    }
    final_agg = node;
    node = node->children[0].get();
  }
  if (node == nullptr || node->kind != DistOpKind::kGather ||
      node->children.size() != 1) {
    return Status::InvalidArgument(
        "distributed plan root must be Gather (optionally under DistFinalAgg)");
  }
  node = node->children[0].get();
  const DistOp* partial_agg = nullptr;
  if (node != nullptr && node->kind == DistOpKind::kDistPartialAgg) {
    if (node->children.size() != 1) {
      return Status::InvalidArgument("DistPartialAgg must have one child");
    }
    partial_agg = node;
    node = node->children[0].get();
  }
  if ((partial_agg == nullptr) != (final_agg == nullptr)) {
    return Status::InvalidArgument(
        "DistPartialAgg and DistFinalAgg must appear together");
  }
  const bool fused = partial_agg != nullptr;
  const bool rows_gather = !fused;

  const DistOp* core = node;
  const DistOp* left_scan = nullptr;
  const DistOp* right_scan = nullptr;
  if (core == nullptr) {
    return Status::InvalidArgument("distributed plan has no core operator");
  }
  if (core->kind == DistOpKind::kDistHashJoin) {
    if (core->children.size() != 2) {
      return Status::InvalidArgument("DistHashJoin must have two children");
    }
    auto unwrap = [](const DistOp* c) -> const DistOp* {
      if (c != nullptr && c->kind == DistOpKind::kDistExchange &&
          c->children.size() == 1) {
        return c->children[0].get();
      }
      return c;
    };
    left_scan = unwrap(core->children[0].get());
    right_scan = unwrap(core->children[1].get());
    if (left_scan == nullptr || left_scan->kind != DistOpKind::kDistScan ||
        right_scan == nullptr || right_scan->kind != DistOpKind::kDistScan) {
      return Status::InvalidArgument(
          "DistHashJoin inputs must be DistScans (optionally exchange-wrapped)");
    }
  } else if (core->kind != DistOpKind::kDistScan &&
             core->kind != DistOpKind::kDistIndexScan) {
    return Status::InvalidArgument("unsupported distributed core operator");
  }
  const DistOp* index_scan =
      core->kind == DistOpKind::kDistIndexScan ? core : nullptr;

  // Aggregate decomposition before any transaction begins (same order as
  // the old entry point: plan validation errors surface first).
  if (final_agg != nullptr) {
    agg_group_ = final_agg->group_by;
    agg_specs_ = final_agg->aggs;
    plans_.reserve(agg_specs_.size());
    for (const auto& a : agg_specs_) plans_.push_back(DecomposeAgg(a));
    OFI_ASSIGN_OR_RETURN(group_names_, GroupOutputNames(agg_group_, agg_specs_));
  }

  serving_ = ServingDns(cluster_);
  // A point probe whose key is the shard key can only match on one shard:
  // route to that DN alone, under the cheap single-shard snapshot (no GTM
  // round trip in GTM-lite) — the core of the index fast path's 5x win.
  const bool single_shard_probe =
      index_scan != nullptr && index_scan->probe_shard >= 0;
  if (single_shard_probe) {
    serving_ = {cluster_->EffectiveDn(index_scan->probe_shard)};
  }
  n_ = static_cast<int>(serving_.size());
  stats_.num_serving = n_;

  // Opt-in auto-refresh: force-merge the delta tails of the scanned tables
  // before the snapshot opens, so the scan runs against freshly sealed
  // chunks instead of paying the row-path union over a long tail. Purely a
  // latency knob — results are identical either way — and a quiescent
  // cluster pays nothing (merging an empty tail is a no-op).
  if (opts_.auto_refresh_columnar) {
    const DistOp* scans[2] = {left_scan != nullptr ? left_scan : core,
                              right_scan};
    for (const DistOp* s : scans) {
      if (s == nullptr || s->kind != DistOpKind::kDistScan) continue;
      if (s->path != ScanPath::kColumnar || !cluster_->IsColumnar(s->table)) {
        continue;
      }
      OFI_ASSIGN_OR_RETURN(size_t merged, cluster_->RefreshColumnar(s->table));
      if (merged > 0) {
        cluster_->metrics().Add("columnar.auto_refreshes",
                                static_cast<int64_t>(merged));
      }
    }
  }

  // Join key resolution happens before Begin (as the old DistributedJoin
  // did); schemas are identical on every DN, so the first serving node is
  // authoritative.
  if (left_scan != nullptr) {
    OFI_ASSIGN_OR_RETURN(storage::MvccTable * left0,
                         cluster_->dn(serving_[0])->GetTable(left_scan->table));
    OFI_ASSIGN_OR_RETURN(
        storage::MvccTable * right0,
        cluster_->dn(serving_[0])->GetTable(right_scan->table));
    left_schema_ = left0->schema();
    right_schema_ = right0->schema();
    OFI_ASSIGN_OR_RETURN(left_key_idx_, left_schema_.IndexOf(core->left_key));
    OFI_ASSIGN_OR_RETURN(right_key_idx_, right_schema_.IndexOf(core->right_key));
  }

  // One consistent snapshot across every shard (single-shard scope when an
  // index probe pinned the plan to one DN).
  Txn reader = cluster_->Begin(single_shard_probe ? TxnScope::kSingleShard
                                                  : TxnScope::kMultiShard);
  reader_ = &reader;
  scatter_start_ = reader.now();
  frontier_.assign(static_cast<size_t>(n_), scatter_start_);

  std::vector<FragSlot> slots(static_cast<size_t>(n_));
  if (left_scan != nullptr) {
    OFI_RETURN_NOT_OK(
        ExecJoinFragment(*core, *left_scan, *right_scan, fused, &slots));
  } else if (index_scan != nullptr) {
    OFI_RETURN_NOT_OK(ExecIndexScanFragment(*core, fused, &slots));
  } else {
    OFI_RETURN_NOT_OK(
        ExecScanFragment(*core, fused, /*count_naive=*/true, &slots));
  }

  // Gather: merge per-DN outputs deterministically in DN order.
  Table gathered;
  std::vector<size_t> slot_result_bytes(slots.size(), 0);
  if (rows_gather) {
    gathered = Table(slots[0].table.schema());
    size_t slot_idx = 0;
    for (auto& slot : slots) {
      OFI_RETURN_NOT_OK(slot.status);
      slot_result_bytes[slot_idx++] =
          exchange::EncodedBytes(slot.table.rows(), batch_rows_);
      stats_.result_bytes +=
          exchange::EncodedBytes(slot.table.rows(), batch_rows_);
      stats_.partial_bytes += slot.partial_bytes;
      stats_.naive_bytes += slot.naive_bytes;
      if (slot.columnar) {
        ++stats_.columnar_shards;
        stats_.scan_stats.MergeFrom(slot.stats);
      }
      for (auto& row : slot.table.mutable_rows()) {
        OFI_RETURN_NOT_OK(gathered.Append(std::move(row)));
      }
    }
  } else {
    bool first_shard = true;
    for (auto& slot : slots) {
      OFI_RETURN_NOT_OK(slot.status);
      stats_.partial_bytes += slot.partial_bytes;
      stats_.naive_bytes += slot.naive_bytes;
      if (slot.columnar) {
        ++stats_.columnar_shards;
        stats_.scan_stats.MergeFrom(slot.stats);
      }
      if (first_shard) {
        gathered = std::move(slot.table);
        first_shard = false;
      } else {
        for (auto& row : slot.table.mutable_rows()) {
          OFI_RETURN_NOT_OK(gathered.Append(std::move(row)));
        }
      }
    }
  }
  if (stats_.columnar_shards > 0) {
    auto& m = cluster_->metrics();
    m.Add("columnar.scans", static_cast<int64_t>(stats_.columnar_shards));
    m.Add("columnar.chunks_scanned",
          static_cast<int64_t>(stats_.scan_stats.chunks_scanned));
    m.Add("columnar.chunks_pruned",
          static_cast<int64_t>(stats_.scan_stats.chunks_pruned));
    m.Add("columnar.rows_filtered",
          static_cast<int64_t>(stats_.scan_stats.rows_matched));
    m.Add("columnar.morsels", static_cast<int64_t>(stats_.scan_stats.morsels));
    m.Add("columnar.delta_rows",
          static_cast<int64_t>(stats_.scan_stats.delta_rows));
  }

  SimTime parallel_done = scatter_start_;
  SimTime serial_sum = 0;
  for (SimTime f : frontier_) {
    parallel_done = std::max(parallel_done, f);
    serial_sum += f - scatter_start_;
  }
  // The CN pays the per-partial merge, plus a size-aware receive when the
  // gathered state is row-shaped (joins and plain scans, unlike aggregates,
  // gather row-sized state).
  const SimTime per_slot_gather = cluster_->latency().cn_gather_service_us;
  SimTime gather_cost = static_cast<SimTime>(n_) * per_slot_gather;
  if (rows_gather) {
    gather_cost +=
        exchange::ExchangeServiceTime(stats_.result_bytes, 0, ExchangeParams());
  }
  SimTime cn_done;
  if (pipeline_on_) {
    // Pipelined gather: the CN merges DN i's output the moment that DN is
    // done (still in DN order — results are gathered identically), instead
    // of waiting behind the slowest DN. Telescoped cumulative KiB keeps the
    // total byte service equal to the barrier's one-lump charge, so only
    // the start times change.
    const SimTime kb_us = ExchangeParams().kb_service_us;
    auto kib = [](size_t b) { return static_cast<SimTime>((b + 1023) / 1024); };
    SimTime cursor = scatter_start_;
    SimTime first_merge = -1;
    size_t cum = 0;
    for (int i = 0; i < n_; ++i) {
      SimTime begin = std::max(cursor, frontier_[static_cast<size_t>(i)]);
      if (first_merge < 0) first_merge = begin;
      SimTime service = per_slot_gather;
      if (rows_gather) {
        size_t b = slot_result_bytes[static_cast<size_t>(i)];
        service += (kib(cum + b) - kib(cum)) * kb_us;
        cum += b;
      }
      cursor = begin + service;
    }
    cn_done = cursor;
    if (first_merge >= 0) {
      stats_.pipeline_overlap_us +=
          std::max<SimTime>(0, parallel_done - first_merge);
    }
  } else {
    cn_done = parallel_done + gather_cost;
  }
  stats_.sim_latency_us = cn_done - scatter_start_;
  stats_.sim_latency_serial_us = serial_sum + gather_cost;
  // The CN resumes once the last partial has been gathered.
  reader.AdvanceTo(cn_done);
  OFI_RETURN_NOT_OK(reader.Commit());
  reader_ = nullptr;
  if (pipeline_on_) {
    pending_metrics_.emplace_back(
        "pipeline.overlap_us",
        static_cast<int64_t>(stats_.pipeline_overlap_us));
    if (stats_.batches_streamed > 0) {
      pending_metrics_.emplace_back(
          "exchange.batches_streamed",
          static_cast<int64_t>(stats_.batches_streamed));
    }
  }
  for (const auto& [name, delta] : pending_metrics_) {
    cluster_->metrics().Add(name, delta);
  }

  DistPlanResult out;
  if (final_agg != nullptr) {
    OFI_ASSIGN_OR_RETURN(out.table, FinalAggregate(std::move(gathered)));
  } else {
    out.table = std::move(gathered);
  }
  out.stats = std::move(stats_);
  return out;
}

Status DistPlanExecutor::ExecScanFragment(const DistOp& scan, bool fused,
                                          bool count_naive,
                                          std::vector<FragSlot>* slots_out) {
  const std::string& table = scan.table;
  std::vector<storage::MvccTable*> shard_tables(serving_.size(), nullptr);
  for (int i = 0; i < n_; ++i) {
    OFI_ASSIGN_OR_RETURN(shard_tables[static_cast<size_t>(i)],
                         cluster_->dn(serving_[i])->GetTable(table));
  }

  // Columnar eligibility. The filter must be kernel-recognizable (checked
  // once for the fragment). Freshness is never a reason to fall back: every
  // delta shard unions its sealed chunks with the row-format tail the heap
  // listener feeds, evaluated under this transaction's own snapshot, so the
  // columnar result is bit-identical to the row path at any point in time.
  std::optional<ColumnarPredicate> pred;
  if (scan.path == ScanPath::kColumnar && cluster_->IsColumnar(table)) {
    pred = RecognizeFilter(scan.filter);
    if (!pred.has_value()) {
      cluster_->metrics().Add("columnar.fallback_filter");
    }
  }
  std::vector<std::shared_ptr<storage::DeltaShard>> col_shards(
      serving_.size());
  bool kernel_path = false;
  bool forced_materialize = false;
  KernelSupport support = KernelSupport::kOk;
  if (pred.has_value()) {
    if (fused) {
      support = ClassifyKernelSupport(agg_group_, plans_,
                                      shard_tables[0]->schema());
      kernel_path = support == KernelSupport::kOk;
      if (support == KernelSupport::kUnsupportedAgg) {
        cluster_->metrics().Add("columnar.fallback_agg");
      } else if (support == KernelSupport::kUnsupportedGroupBy) {
        cluster_->metrics().Add("columnar.fallback_groupby_type");
      }
      if (kernel_path && opts_.columnar_force_materialize) {
        kernel_path = false;
        forced_materialize = true;
      }
    }
    for (int i = 0; i < n_; ++i) {
      col_shards[static_cast<size_t>(i)] =
          cluster_->dn(serving_[i])->GetColumnarShard(table);
    }
  }

  // Phase 1 (coordinator thread): open every shard context and charge the
  // simulated fan-out. Opening an already-open shard is free — the second
  // scan fragment of a join chains its statement right after the first
  // fragment's, exactly as the old single-loop code did. Both scan flavors
  // charge by work actually done (chunks scanned / heap rows walked), so
  // their statement cost is only known after phase 2 — record the prepare
  // completion now and charge the scan afterwards (each DN's resource is
  // independent, so the deferred charge stays deterministic).
  for (int i = 0; i < n_; ++i) {
    const int dn = serving_[i];
    OFI_ASSIGN_OR_RETURN(frontier_[static_cast<size_t>(i)],
                         reader_->PrepareShard(dn, frontier_[static_cast<size_t>(i)]));
  }

  // Phase 2 (thread pool): per-DN scan (+ fused partial aggregation). Row
  // shards scan the MVCC heap; columnar shards run the filter/aggregate
  // kernels over their chunk copy (pure kernels for global int64
  // aggregates, else filter + Gather + executor). Workers touch only read
  // paths plus their own slot; expression trees are cloned per worker
  // because Bind() caches column indices in place. Morsel parallelism
  // inside a shard is only enabled for inline scatters — pool workers must
  // not nest ParallelFor.
  storage::ScanOptions sopts;
  sopts.parallel = opts_.columnar_morsel_parallel && !opts_.parallel;
  sopts.pool = opts_.pool;
  std::vector<FragSlot>& slots = *slots_out;
  auto run_shard = [&](int i) {
    const int dn = serving_[i];
    FragSlot& slot = slots[static_cast<size_t>(i)];

    std::vector<AggSpec> partial_specs;
    if (fused) {
      for (const auto& p : plans_) {
        for (const auto& spec : p.partial) {
          partial_specs.push_back(AggSpec{
              spec.func, spec.arg ? spec.arg->Clone() : nullptr, spec.name});
        }
      }
    }

    if (col_shards[static_cast<size_t>(i)] != nullptr) {
      // Snapshot the delta shard under this transaction's own visibility:
      // a pinned sealed table, the sealed rows whose delete is visible, and
      // the visible row-format tail. The union below reproduces the row
      // path bit for bit at this snapshot.
      auto vis = reader_->VisibilityForPrepared(dn);
      if (!vis.ok()) {
        slot.status = vis.status();
        return;
      }
      storage::DeltaShard::View view =
          col_shards[static_cast<size_t>(i)]->Snapshot(*vis);
      const storage::ColumnTable& ct = *view.sealed;
      slot.columnar = true;
      slot.stats.delta_rows += view.delta_examined;
      if (count_naive) {
        slot.naive_bytes = ct.PlainBytes();
        for (const auto& row : view.delta_rows) {
          slot.naive_bytes += sql::RowByteSize(row);
        }
      }
      auto sel = RunColumnarFilter(ct, *pred, sopts, &slot.stats);
      if (!sel.ok()) {
        slot.status = sel.status();
        return;
      }
      // Fold snapshot exclusions into the selection so every downstream
      // consumer sees one sorted selection (kernel filter output is
      // ascending; View::excluded is sorted).
      if (!view.excluded.empty()) {
        std::vector<uint32_t> kept;
        if (sel->has_value()) {
          kept.reserve((*sel)->size());
          std::set_difference((*sel)->begin(), (*sel)->end(),
                              view.excluded.begin(), view.excluded.end(),
                              std::back_inserter(kept));
        } else {
          kept.reserve(ct.sealed_rows() - view.excluded.size());
          size_t e = 0;
          for (uint32_t r = 0; r < ct.sealed_rows(); ++r) {
            if (e < view.excluded.size() && view.excluded[e] == r) {
              ++e;
              continue;
            }
            kept.push_back(r);
          }
        }
        *sel = std::move(kept);
      }
      // The delta half of the union: visible tail rows, filtered exactly as
      // the kernels filter the sealed half.
      std::vector<Row> delta_matched;
      delta_matched.reserve(view.delta_rows.size());
      for (auto& row : view.delta_rows) {
        if (DeltaRowMatches(*pred, ct.schema(), row)) {
          delta_matched.push_back(std::move(row));
        }
      }
      auto materialize = [&](const std::vector<uint32_t>& s)
          -> Result<std::vector<Row>> {
        // Chunk-on-demand materialization: only chunks holding selected rows
        // are decoded (and charged), matching the kernels' accounting units
        // of one column-chunk each.
        return ct.MaterializeRows(s, &slot.stats);
      };
      auto all_rows = [&]() {
        std::vector<uint32_t> all;
        if (!sel->has_value()) {
          all.resize(ct.sealed_rows());
          for (uint32_t k = 0; k < all.size(); ++k) all[k] = k;
        }
        return all;
      };
      if (fused) {
        auto compute = [&]() -> Result<Table> {
          if (kernel_path && agg_group_.empty()) {
            OFI_ASSIGN_OR_RETURN(
                Table partial,
                RunColumnarKernelAgg(ct, sel->has_value() ? &**sel : nullptr,
                                     pred->never, partial_specs, sopts,
                                     &slot.stats));
            OFI_RETURN_NOT_OK(MergeDeltaIntoKernelAgg(
                &partial, partial_specs, ct.schema(), delta_matched));
            return partial;
          }
          if (kernel_path) {
            // Grouped kernel. An unsatisfiable predicate arrives as an
            // empty selection; no filter at all means the whole table.
            OFI_ASSIGN_OR_RETURN(
                Table partial,
                RunColumnarGroupedAgg(ct, agg_group_,
                                      sel->has_value() ? &**sel : nullptr,
                                      partial_specs, sopts, &slot.stats));
            OFI_RETURN_NOT_OK(MergeDeltaIntoGroupedAgg(
                &partial, agg_group_, partial_specs, ct.schema(),
                delta_matched));
            return partial;
          }
          // Materialize path: decode the selection into rows, append the
          // matching delta-tail rows, and run the ordinary partial
          // aggregate (unsupported agg/group-key types).
          std::vector<uint32_t> all = all_rows();
          OFI_ASSIGN_OR_RETURN(
              std::vector<Row> rows,
              materialize(sel->has_value() ? **sel : all));
          for (auto& row : delta_matched) rows.push_back(std::move(row));
          sql::Catalog shard_catalog;
          shard_catalog.Register("shard", Table(ct.schema(), std::move(rows)));
          // Filter already applied by the kernel — scan without it.
          sql::PlanPtr agg_plan = sql::MakeAggregate(sql::MakeScan("shard"),
                                                     agg_group_, partial_specs);
          sql::Executor exec(&shard_catalog);
          return exec.Execute(agg_plan);
        };
        Result<Table> partial = compute();
        if (!partial.ok()) {
          slot.status = partial.status();
          return;
        }
        slot.partial_bytes = TableBytes(*partial);
        slot.table = std::move(*partial);
        return;
      }
      // Plain columnar scan: materialize the (filtered) selection and
      // append the matching delta-tail rows. Note the row order is the
      // columnar clustering order with the tail last, not the MVCC heap
      // order; consumers treat shard output as unordered.
      std::vector<uint32_t> all = all_rows();
      auto rows = materialize(sel->has_value() ? **sel : all);
      if (!rows.ok()) {
        slot.status = rows.status();
        return;
      }
      for (auto& row : delta_matched) rows->push_back(std::move(row));
      slot.table = Table(ct.schema(), std::move(*rows));
      return;
    }

    auto rows = reader_->ScanShardPrepared(table, dn);
    if (!rows.ok()) {
      slot.status = rows.status();
      return;
    }
    slot.rows_examined = rows->size();
    if (count_naive) {
      for (const auto& row : *rows) slot.naive_bytes += sql::RowByteSize(row);
    }

    if (fused) {
      sql::Catalog shard_catalog;
      shard_catalog.Register(
          "shard", Table(shard_tables[static_cast<size_t>(i)]->schema(),
                         std::move(*rows)));
      sql::PlanPtr scan_plan =
          sql::MakeScan("shard", scan.filter ? scan.filter->Clone() : nullptr);
      sql::PlanPtr agg_plan =
          sql::MakeAggregate(scan_plan, agg_group_, partial_specs);
      sql::Executor exec(&shard_catalog);
      auto partial = exec.Execute(agg_plan);
      if (!partial.ok()) {
        slot.status = partial.status();
        return;
      }
      slot.partial_bytes = TableBytes(*partial);
      slot.table = std::move(*partial);
      return;
    }

    // Plain row scan: apply the pushed-down filter in place.
    if (scan.filter) {
      // Cloned per worker: Bind() caches column indices in place.
      sql::ExprPtr f = scan.filter->Clone();
      Status bind = f->Bind(shard_tables[static_cast<size_t>(i)]->schema());
      if (!bind.ok()) {
        slot.status = bind;
        return;
      }
      std::vector<Row> kept;
      kept.reserve(rows->size());
      for (auto& row : *rows) {
        Value v = f->Eval(row);
        if (!v.is_null() && v.AsBool()) kept.push_back(std::move(row));
      }
      *rows = std::move(kept);
    }
    slot.table = Table(shard_tables[static_cast<size_t>(i)]->schema(),
                       std::move(*rows));
  };
  RunScatter(opts_.parallel, opts_.pool, n_, run_shard);

  // Deferred latency. Columnar shards: fixed setup + per-chunk service for
  // chunks actually scanned + per-block service for delta-tail records
  // examined (zone-map-pruned chunks cost nothing; a long unmerged tail
  // shows up directly in sim_latency_us — the incentive to merge). Row
  // shards: statement setup + per-256-row block service for the heap rows
  // walked, so scan cost scales with shard size — the baseline an index
  // probe beats.
  for (int i = 0; i < n_; ++i) {
    if (col_shards[static_cast<size_t>(i)] != nullptr) {
      frontier_[static_cast<size_t>(i)] = cluster_->ChargeDnColumnarScan(
          serving_[i], frontier_[static_cast<size_t>(i)],
          slots[static_cast<size_t>(i)].stats.chunks_scanned,
          slots[static_cast<size_t>(i)].stats.delta_rows);
    } else {
      frontier_[static_cast<size_t>(i)] = cluster_->ChargeDnRowScan(
          serving_[i], frontier_[static_cast<size_t>(i)],
          slots[static_cast<size_t>(i)].rows_examined);
    }
  }

  // Per-DN realized-path record (EXPLAIN / shell reporting).
  const bool wanted_columnar =
      scan.path == ScanPath::kColumnar && cluster_->IsColumnar(table);
  for (int i = 0; i < n_; ++i) {
    DistExecStats::DnScanInfo info;
    info.dn = serving_[i];
    info.table = table;
    info.stats = slots[static_cast<size_t>(i)].stats;
    if (col_shards[static_cast<size_t>(i)] != nullptr) {
      if (!fused) {
        info.path = "columnar(materialize)";
      } else if (kernel_path) {
        info.path = KernelSupportDetail(!agg_group_.empty(), support);
      } else if (forced_materialize) {
        info.path = "columnar(materialize:forced)";
      } else {
        info.path = KernelSupportDetail(!agg_group_.empty(), support);
      }
    } else if (wanted_columnar && !pred.has_value()) {
      info.path = "row(filter)";
    } else {
      info.path = "row";
    }
    stats_.per_dn.push_back(std::move(info));
  }
  return Status::OK();
}

Status DistPlanExecutor::ExecIndexScanFragment(const DistOp& scan, bool fused,
                                               std::vector<FragSlot>* slots_out) {
  const std::string& table = scan.table;
  std::vector<storage::MvccTable*> shard_tables(serving_.size(), nullptr);
  std::vector<std::shared_ptr<storage::SecondaryIndex>> shard_indexes(
      serving_.size());
  for (int i = 0; i < n_; ++i) {
    OFI_ASSIGN_OR_RETURN(shard_tables[static_cast<size_t>(i)],
                         cluster_->dn(serving_[i])->GetTable(table));
    shard_indexes[static_cast<size_t>(i)] =
        cluster_->IndexOn(serving_[i], table, scan.index_col);
    if (shard_indexes[static_cast<size_t>(i)] == nullptr) {
      // Dropped between lowering and execution; the caller retries via scan.
      return Status::NotFound("index on " + scan.index_column +
                              " no longer exists on dn" +
                              std::to_string(serving_[i]));
    }
  }

  // Phase 1: open every shard context; the probe itself is charged after
  // phase 2, when the returned-row count is known (deferred like the scans:
  // per-DN resources are independent, so order does not change the result).
  for (int i = 0; i < n_; ++i) {
    OFI_ASSIGN_OR_RETURN(
        frontier_[static_cast<size_t>(i)],
        reader_->PrepareShard(serving_[i], frontier_[static_cast<size_t>(i)]));
  }

  // Phase 2: probe each shard's index under this transaction's snapshot,
  // re-apply the FULL original predicate as the residual (the probe only
  // guarantees the indexed conjunct), then optionally fuse the partial
  // aggregate — result rows are bit-identical to the scan this replaced,
  // up to shard-output order, which consumers treat as unordered.
  std::vector<FragSlot>& slots = *slots_out;
  auto run_shard = [&](int i) {
    const int dn = serving_[i];
    FragSlot& slot = slots[static_cast<size_t>(i)];
    auto vis = reader_->VisibilityForPrepared(dn);
    if (!vis.ok()) {
      slot.status = vis.status();
      return;
    }
    std::vector<Row> probed;
    if (scan.probe_is_range) {
      probed = shard_indexes[static_cast<size_t>(i)]->RangeProbe(
          scan.probe_lo, scan.probe_hi, *vis);
    } else {
      probed =
          shard_indexes[static_cast<size_t>(i)]->Probe(scan.probe_eq, *vis);
    }
    slot.stats.index_rows = probed.size();
    for (const auto& row : probed) slot.naive_bytes += sql::RowByteSize(row);

    if (scan.filter) {
      // Cloned per worker: Bind() caches column indices in place.
      sql::ExprPtr f = scan.filter->Clone();
      Status bind = f->Bind(shard_tables[static_cast<size_t>(i)]->schema());
      if (!bind.ok()) {
        slot.status = bind;
        return;
      }
      std::vector<Row> kept;
      kept.reserve(probed.size());
      for (auto& row : probed) {
        Value v = f->Eval(row);
        if (!v.is_null() && v.AsBool()) kept.push_back(std::move(row));
      }
      probed = std::move(kept);
    }

    if (fused) {
      std::vector<AggSpec> partial_specs;
      for (const auto& p : plans_) {
        for (const auto& spec : p.partial) {
          partial_specs.push_back(AggSpec{
              spec.func, spec.arg ? spec.arg->Clone() : nullptr, spec.name});
        }
      }
      sql::Catalog shard_catalog;
      shard_catalog.Register(
          "shard", Table(shard_tables[static_cast<size_t>(i)]->schema(),
                         std::move(probed)));
      // Residual already applied above — aggregate without a filter.
      sql::PlanPtr agg_plan = sql::MakeAggregate(sql::MakeScan("shard"),
                                                 agg_group_, partial_specs);
      sql::Executor exec(&shard_catalog);
      auto partial = exec.Execute(agg_plan);
      if (!partial.ok()) {
        slot.status = partial.status();
        return;
      }
      slot.partial_bytes = TableBytes(*partial);
      slot.table = std::move(*partial);
      return;
    }
    slot.table = Table(shard_tables[static_cast<size_t>(i)]->schema(),
                       std::move(probed));
  };
  RunScatter(opts_.parallel, opts_.pool, n_, run_shard);

  // Deferred probe charge: fixed probe setup + per-returned-row copy-out.
  // No heap walk, no per-block scan service — this asymmetry is the whole
  // point-lookup win the optimizer's crossover banks on.
  for (int i = 0; i < n_; ++i) {
    frontier_[static_cast<size_t>(i)] = cluster_->ChargeDnIndexProbe(
        serving_[i], frontier_[static_cast<size_t>(i)],
        slots[static_cast<size_t>(i)].stats.index_rows);
  }

  for (int i = 0; i < n_; ++i) {
    DistExecStats::DnScanInfo info;
    info.dn = serving_[i];
    info.table = table;
    info.path = "index(" + BareName(scan.index_column) + ")";
    info.stats = slots[static_cast<size_t>(i)].stats;
    stats_.scan_stats.index_rows +=
        slots[static_cast<size_t>(i)].stats.index_rows;
    stats_.per_dn.push_back(std::move(info));
  }
  return Status::OK();
}

Status DistPlanExecutor::ExecJoinFragment(const DistOp& join,
                                          const DistOp& left_scan,
                                          const DistOp& right_scan, bool fused,
                                          std::vector<FragSlot>* slots_out) {
  // Scan both sides as child fragments. The per-DN frontier chains the
  // right scan's statement directly after the left's, reproducing the old
  // "prepare once, then one scan statement per side" loop.
  std::vector<FragSlot> left_slots(serving_.size());
  std::vector<FragSlot> right_slots(serving_.size());
  OFI_RETURN_NOT_OK(ExecScanFragment(left_scan, /*fused=*/false,
                                     /*count_naive=*/false, &left_slots));
  for (const auto& slot : left_slots) OFI_RETURN_NOT_OK(slot.status);
  OFI_RETURN_NOT_OK(ExecScanFragment(right_scan, /*fused=*/false,
                                     /*count_naive=*/false, &right_slots));
  for (const auto& slot : right_slots) OFI_RETURN_NOT_OK(slot.status);

  size_t actual_left_bytes = 0, actual_right_bytes = 0;
  for (int i = 0; i < n_; ++i) {
    actual_left_bytes += exchange::EncodedBytes(
        left_slots[static_cast<size_t>(i)].table.rows(), batch_rows_);
    actual_right_bytes += exchange::EncodedBytes(
        right_slots[static_cast<size_t>(i)].table.rows(), batch_rows_);
  }
  stats_.naive_bytes = actual_left_bytes + actual_right_bytes;

  // Strategy decision. Estimated relation sizes come from optimizer stats
  // when a registry was wired through; otherwise from the actual scanned
  // encoded sizes (exact, but unavailable to a real planner — that is
  // precisely what the stats path models). A caller override wins, then a
  // plan-time choice, then the cost formula.
  double est_left = static_cast<double>(actual_left_bytes);
  double est_right = static_cast<double>(actual_right_bytes);
  if (opts_.stats != nullptr) {
    if (const auto* ts = opts_.stats->Get(left_scan.table)) {
      est_left = ts->EstimatedBytes();
    }
    if (const auto* ts = opts_.stats->Get(right_scan.table)) {
      est_right = ts->EstimatedBytes();
    }
  }
  stats_.broadcast_left = est_left <= est_right;
  JoinStrategy strategy = opts_.strategy_override;
  if (strategy == JoinStrategy::kAuto) strategy = join.strategy;
  if (strategy == JoinStrategy::kAuto) {
    // Broadcast ships the small side to the N-1 other nodes; repartition
    // ships the (N-1)/N fraction of both sides that hashes off-node.
    double cost_broadcast = std::min(est_left, est_right) * (n_ - 1);
    double cost_repartition =
        (est_left + est_right) * static_cast<double>(n_ - 1) / std::max(n_, 1);
    strategy = cost_broadcast <= cost_repartition ? JoinStrategy::kBroadcast
                                                  : JoinStrategy::kRepartition;
  }
  stats_.strategy = strategy;

  // Data movement: move rows through the exchange. Each worker only writes
  // channels whose source is its own node, so sends are race-free by
  // construction (channels are mutex-guarded regardless). A channel byte
  // limit bounds the in-memory window; overflow spills to per-channel temp
  // files (or is denied under strict_channel_limit / an exhausted spill
  // budget). One budget spans both relations' networks and the build side.
  exchange::SpillBudget spill_budget(opts_.max_spill_bytes);
  exchange::ExchangeSpillConfig spill_cfg{
      opts_.spill_dir, opts_.strict_channel_limit, &spill_budget};
  exchange::ExchangeNetwork left_net(n_, batch_rows_, opts_.max_channel_bytes,
                                     spill_cfg);
  exchange::ExchangeNetwork right_net(n_, batch_rows_, opts_.max_channel_bytes,
                                      spill_cfg);
  std::vector<Status> send_status(serving_.size(), Status::OK());
  // Pipelined bookkeeping. send_logs[i] records producer i's flushed batches
  // in send order (net 0 = left relation, 1 = right) for the deterministic
  // latency replay; streamed[j] counts the batches consumer j popped through
  // the blocking path. Each worker writes only its own entry.
  std::vector<std::vector<exchange::PipelinedSendRec>> send_logs(
      serving_.size());
  std::vector<size_t> streamed(serving_.size(), 0);
  constexpr int64_t kPipelinePopTimeoutMs = 60'000;

  // Per-DN join (+ fused partial aggregation): each DN assembles its slice
  // (local rows for the side that did not move, exchange-delivered rows for
  // the one that did) and runs the ordinary hash join from src/sql on it.
  // Under max_build_bytes the build partition (the smaller side — the one
  // broadcast would ship) is spooled through a capped local spill channel
  // and re-read before the join: encode/decode is lossless, so the result
  // is bit-identical and the overflow only costs simulated spill I/O.
  exchange::ExchangeSpillConfig build_cfg{opts_.spill_dir, /*strict=*/false,
                                          &spill_budget};
  std::vector<FragSlot>& slots = *slots_out;
  auto consume_at = [&](int j, bool wait) {
    FragSlot& slot = slots[static_cast<size_t>(j)];
    auto side_rows = [&](bool is_left) -> Result<std::vector<Row>> {
      const bool moved = strategy == JoinStrategy::kRepartition ||
                         (is_left == stats_.broadcast_left);
      if (!moved) {
        return std::move((is_left ? left_slots : right_slots)[
            static_cast<size_t>(j)].table.mutable_rows());
      }
      if (wait) {
        // Pipelined: block until each batch (or the producer's close)
        // arrives, so decoding overlaps the still-running scatters.
        return (is_left ? left_net : right_net)
            .ReceiveRowsWait(j, kPipelinePopTimeoutMs,
                             &streamed[static_cast<size_t>(j)]);
      }
      return (is_left ? left_net : right_net).ReceiveRows(j);
    };
    auto spool_build = [&](std::vector<Row>* rows) -> Status {
      if (opts_.max_build_bytes == 0 ||
          exchange::EncodedBytes(*rows, batch_rows_) <=
              opts_.max_build_bytes) {
        return Status::OK();  // fits in memory, no round trip
      }
      exchange::ExchangeChannel ch;
      exchange::ExchangeChannel::SendLimits limits{opts_.max_build_bytes,
                                                   &build_cfg};
      for (size_t b = 0; b < rows->size(); b += batch_rows_) {
        size_t e = std::min(b + batch_rows_, rows->size());
        OFI_RETURN_NOT_OK(ch.Send(exchange::EncodeBatch(*rows, b, e), limits));
      }
      std::vector<Row> out;
      out.reserve(rows->size());
      while (true) {
        OFI_ASSIGN_OR_RETURN(std::optional<std::string> batch, ch.PopBatch());
        if (!batch.has_value()) break;
        OFI_ASSIGN_OR_RETURN(std::vector<Row> decoded,
                             exchange::DecodeBatch(*batch));
        for (auto& r : decoded) out.push_back(std::move(r));
      }
      slot.build_spill_bytes = ch.spilled_bytes();
      *rows = std::move(out);
      return Status::OK();
    };
    auto lrows = side_rows(true);
    if (!lrows.ok()) {
      slot.status = lrows.status();
      return;
    }
    auto rrows = side_rows(false);
    if (!rrows.ok()) {
      slot.status = rrows.status();
      return;
    }
    slot.status = spool_build(stats_.broadcast_left ? &*lrows : &*rrows);
    if (!slot.status.ok()) return;
    sql::ExprPtr pred = Expr::EqCols(join.left_key, join.right_key);
    if (join.residual) pred = Expr::And(pred, join.residual->Clone());
    sql::PlanPtr plan = sql::MakeJoin(
        sql::MakeValues(Table(left_schema_, std::move(*lrows))),
        sql::MakeValues(Table(right_schema_, std::move(*rrows))), pred);
    if (fused) {
      std::vector<AggSpec> partial_specs;
      for (const auto& p : plans_) {
        for (const auto& spec : p.partial) {
          partial_specs.push_back(AggSpec{
              spec.func, spec.arg ? spec.arg->Clone() : nullptr, spec.name});
        }
      }
      plan = sql::MakeAggregate(plan, agg_group_, partial_specs);
    }
    sql::Catalog catalog;  // Values plans read no tables
    sql::Executor exec(&catalog);
    auto joined = exec.Execute(plan);
    if (!joined.ok()) {
      slot.status = joined.status();
      return;
    }
    if (fused) slot.partial_bytes = TableBytes(*joined);
    slot.table = std::move(*joined);
  };

  // Hard-limit denials and rolled-back partial sends are emitted
  // immediately (not via pending_metrics_): they describe a query that is
  // about to fail, and pending metrics only replay after a commit.
  auto emit_exchange_failures = [&] {
    const size_t denied = left_net.DeniedBytes() + right_net.DeniedBytes();
    if (denied > 0) {
      cluster_->metrics().Add("exchange.bytes_denied",
                              static_cast<int64_t>(denied));
    }
    const size_t aborted = left_net.AbortedBytes() + right_net.AbortedBytes();
    if (aborted > 0) {
      cluster_->metrics().Add("exchange.bytes_aborted",
                              static_cast<int64_t>(aborted));
    }
  };

  if (!pipeline_on_) {
    // Barrier mode: every producer fully scatters, then every consumer
    // joins. The scatter and join phases each fan out on the shared pool.
    if (strategy == JoinStrategy::kBroadcast) {
      RunScatter(opts_.parallel, opts_.pool, n_, [&](int i) {
        if (stats_.broadcast_left) {
          send_status[static_cast<size_t>(i)] = exchange::BroadcastRows(
              &left_net, i, left_slots[static_cast<size_t>(i)].table.rows());
        } else {
          send_status[static_cast<size_t>(i)] = exchange::BroadcastRows(
              &right_net, i, right_slots[static_cast<size_t>(i)].table.rows());
        }
      });
    } else {
      RunScatter(opts_.parallel, opts_.pool, n_, [&](int i) {
        Status st = exchange::ShufflePartition(
            &left_net, i, left_slots[static_cast<size_t>(i)].table.rows(),
            left_key_idx_);
        if (st.ok()) {
          st = exchange::ShufflePartition(
              &right_net, i, right_slots[static_cast<size_t>(i)].table.rows(),
              right_key_idx_);
        }
        send_status[static_cast<size_t>(i)] = st;
      });
    }
    emit_exchange_failures();
    for (const auto& st : send_status) OFI_RETURN_NOT_OK(st);
    RunScatter(opts_.parallel, opts_.pool, n_,
               [&](int j) { consume_at(j, /*wait=*/false); });
  } else {
    // Pipelined mode: all N producers and all N consumers run together on
    // a dedicated pool so DistHashJoin's probe assembly starts while the
    // upstream scatters are still streaming batches. The pool is sized to
    // at least one thread per fragment (2N): fewer could park a producer
    // behind consumers blocked in PopBatchWait. The shared fixed-size pool
    // is deliberately not used — its workers must never block on each
    // other (ParallelFor must not nest), and these consumers block by
    // design.
    common::ThreadPool pipe_pool(std::max(2 * n_, opts_.pipeline_workers));
    std::latch all_done(static_cast<std::ptrdiff_t>(2 * n_));
    for (int i = 0; i < n_; ++i) {
      pipe_pool.Submit([&, i] {
        auto scatter_side = [&](exchange::ExchangeNetwork* net, int net_idx,
                                const std::vector<Row>& rows,
                                std::optional<size_t> key) -> Status {
          exchange::ScatterGuard guard(net, i);
          exchange::StreamingScatter scatter(net, i, key);
          for (const Row& row : rows) OFI_RETURN_NOT_OK(scatter.Push(row));
          OFI_RETURN_NOT_OK(scatter.Finish());
          guard.Commit();
          for (const auto& rec : scatter.send_log()) {
            send_logs[static_cast<size_t>(i)].push_back(
                exchange::PipelinedSendRec{net_idx, rec.dst, rec.bytes});
          }
          return Status::OK();
        };
        Status st;
        if (strategy == JoinStrategy::kBroadcast) {
          st = stats_.broadcast_left
                   ? scatter_side(
                         &left_net, 0,
                         left_slots[static_cast<size_t>(i)].table.rows(),
                         std::nullopt)
                   : scatter_side(
                         &right_net, 1,
                         right_slots[static_cast<size_t>(i)].table.rows(),
                         std::nullopt);
        } else {
          st = scatter_side(&left_net, 0,
                            left_slots[static_cast<size_t>(i)].table.rows(),
                            left_key_idx_);
          if (st.ok()) {
            st = scatter_side(&right_net, 1,
                              right_slots[static_cast<size_t>(i)].table.rows(),
                              right_key_idx_);
          }
        }
        send_status[static_cast<size_t>(i)] = st;
        // Success or failure, close every channel this producer owns on
        // both nets: blocked consumers wake immediately, and an error
        // status fails them fast instead of letting them time out.
        left_net.CloseAllFrom(i, st);
        right_net.CloseAllFrom(i, st);
        all_done.count_down();
      });
    }
    for (int j = 0; j < n_; ++j) {
      pipe_pool.Submit([&, j] {
        consume_at(j, /*wait=*/true);
        all_done.count_down();
      });
    }
    all_done.wait();
    emit_exchange_failures();
    for (const auto& st : send_status) OFI_RETURN_NOT_OK(st);
  }

  // Simulated latency: sends start when a node's scans are done; node j can
  // join once the slowest sender shipping to it has finished (+1 hop) and
  // its own decode service completes; then one join statement per DN. The
  // fused partial aggregate rides in that same statement (scan+agg was one
  // statement on the aggregate path too). The pipelined replay instead
  // charges per-batch: consumer decodes start at max(consumer cursor, batch
  // availability + hop), which is where the overlap win shows up.
  exchange::ExchangeLatencyParams params = ExchangeParams();
  std::vector<int> resources(serving_.size());
  for (int i = 0; i < n_; ++i) {
    resources[static_cast<size_t>(i)] = cluster_->dn_resource(serving_[i]);
  }
  std::vector<SimTime> exchange_done;
  if (pipeline_on_) {
    exchange::PipelinedSimResult sim = exchange::SimulatePipelinedExchange(
        &cluster_->scheduler(), resources, {&left_net, &right_net}, send_logs,
        frontier_, params);
    exchange_done = std::move(sim.ready);
    stats_.pipeline_overlap_us += sim.overlap_us;
    for (size_t c : streamed) stats_.batches_streamed += c;
  } else {
    exchange_done = exchange::SimulateExchange(&cluster_->scheduler(),
                                               resources,
                                               {&left_net, &right_net},
                                               frontier_, params);
  }
  for (int j = 0; j < n_; ++j) {
    // A spooled build partition pays its disk write + read on the owning
    // DN before the join statement can start.
    SimTime arrival = exchange_done[static_cast<size_t>(j)];
    size_t build_spill = slots[static_cast<size_t>(j)].build_spill_bytes;
    if (build_spill > 0) {
      arrival = cluster_->scheduler().Charge(
          resources[static_cast<size_t>(j)], arrival,
          exchange::SpillServiceTime(build_spill, params));
    }
    frontier_[static_cast<size_t>(j)] =
        cluster_->ChargeDnStmt(serving_[j], arrival);
  }

  // Accounting + metrics: cross-DN bytes per strategy, per-channel stats
  // with exchange-node indices mapped back to real DN ids. The old code
  // emitted these metrics only after Commit, so they are queued here and
  // replayed by Run() at that same point.
  stats_.shuffle_bytes =
      strategy == JoinStrategy::kRepartition
          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
          : 0;
  stats_.broadcast_bytes =
      strategy == JoinStrategy::kBroadcast
          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
          : 0;
  stats_.exchange_batches =
      left_net.CrossNodeBatches() + right_net.CrossNodeBatches();
  stats_.spill_bytes = left_net.SpilledBytes() + right_net.SpilledBytes();
  stats_.spill_segments =
      left_net.SpillSegments() + right_net.SpillSegments();
  for (const auto& slot : slots) {
    stats_.build_spill_bytes += slot.build_spill_bytes;
  }
  if (stats_.spill_bytes + stats_.build_spill_bytes > 0) {
    pending_metrics_.emplace_back(
        "exchange.bytes_spilled",
        static_cast<int64_t>(stats_.spill_bytes + stats_.build_spill_bytes));
    pending_metrics_.emplace_back(
        "exchange.spill_segments",
        static_cast<int64_t>(stats_.spill_segments));
  }
  for (const auto* net : {&left_net, &right_net}) {
    for (exchange::ChannelStats ch : net->Stats()) {
      ch.src = serving_[static_cast<size_t>(ch.src)];
      ch.dst = serving_[static_cast<size_t>(ch.dst)];
      // Merge the two relations' traffic per (src,dst) pair.
      auto it = std::find_if(stats_.channels.begin(), stats_.channels.end(),
                             [&](const exchange::ChannelStats& c) {
                               return c.src == ch.src && c.dst == ch.dst;
                             });
      if (it == stats_.channels.end()) {
        stats_.channels.push_back(ch);
      } else {
        it->bytes += ch.bytes;
        it->batches += ch.batches;
      }
      if (ch.src != ch.dst) {
        pending_metrics_.emplace_back(
            "exchange.bytes.d" + std::to_string(ch.src) + "->d" +
                std::to_string(ch.dst),
            static_cast<int64_t>(ch.bytes));
      }
    }
  }
  pending_metrics_.emplace_back(
      "exchange.bytes",
      static_cast<int64_t>(stats_.shuffle_bytes + stats_.broadcast_bytes));
  pending_metrics_.emplace_back("exchange.batches",
                                static_cast<int64_t>(stats_.exchange_batches));
  pending_metrics_.emplace_back(strategy == JoinStrategy::kBroadcast
                                    ? "join.broadcast"
                                    : "join.repartition",
                                int64_t{1});
  stats_.joined = true;
  // Per-DN join statuses stay in the slots: the gather loop surfaces them
  // (the old code also finished the exchange accounting before checking).
  return Status::OK();
}

Result<Table> DistPlanExecutor::FinalAggregate(Table partial_union) {
  // Final aggregation over the partials at the CN.
  sql::Catalog cn_catalog;
  cn_catalog.Register("partials", std::move(partial_union));
  std::vector<AggSpec> final_specs;
  for (const auto& p : plans_) {
    final_specs.insert(final_specs.end(), p.final_specs.begin(),
                       p.final_specs.end());
  }
  sql::PlanPtr final_plan =
      sql::MakeAggregate(sql::MakeScan("partials"), agg_group_, final_specs);
  sql::Executor cn_exec(&cn_catalog);
  OFI_ASSIGN_OR_RETURN(Table merged, cn_exec.Execute(final_plan));

  // Project to the requested names/order. AVG's post-division is done here
  // in code rather than as a `/` expression so the SQL-standard edge case is
  // explicit: a group whose column was NULL on every shard merges to
  // COUNT 0 (and SUM NULL) and must yield NULL, not divide by zero.
  std::vector<Column> out_cols;
  std::vector<size_t> first_col(agg_specs_.size(), 0);
  for (size_t gi = 0; gi < agg_group_.size(); ++gi) {
    out_cols.push_back(
        Column{group_names_[gi], merged.schema().column(gi).type, ""});
  }
  size_t col = agg_group_.size();
  for (size_t i = 0; i < agg_specs_.size(); ++i) {
    first_col[i] = col;
    if (plans_[i].is_avg) {
      out_cols.push_back(Column{agg_specs_[i].name, TypeId::kDouble, ""});
      col += 2;  // sum + count
    } else {
      out_cols.push_back(
          Column{agg_specs_[i].name, merged.schema().column(col).type, ""});
      col += 1;
    }
  }
  Table result{sql::Schema(std::move(out_cols))};
  for (const auto& row : merged.rows()) {
    Row r;
    r.reserve(agg_group_.size() + agg_specs_.size());
    for (size_t gi = 0; gi < agg_group_.size(); ++gi) r.push_back(row[gi]);
    for (size_t i = 0; i < agg_specs_.size(); ++i) {
      if (plans_[i].is_avg) {
        const Value& sum = row[first_col[i]];
        const Value& count = row[first_col[i] + 1];
        if (sum.is_null() || count.is_null() || count.AsDouble() == 0) {
          r.push_back(Value::Null());
        } else {
          r.push_back(Value(sum.AsDouble() / count.AsDouble()));
        }
      } else {
        r.push_back(row[first_col[i]]);
      }
    }
    OFI_RETURN_NOT_OK(result.Append(std::move(r)));
  }
  return result;
}

}  // namespace

std::vector<int> ServingDns(Cluster* cluster) {
  std::vector<int> serving;
  for (int shard = 0; shard < cluster->num_dns(); ++shard) {
    int dn = cluster->EffectiveDn(shard);
    if (std::find(serving.begin(), serving.end(), dn) == serving.end()) {
      serving.push_back(dn);
    }
  }
  return serving;
}

const char* ToString(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kAuto: return "auto";
    case JoinStrategy::kBroadcast: return "broadcast";
    case JoinStrategy::kRepartition: return "repartition";
  }
  return "?";
}

const char* ToString(ScanPath p) {
  switch (p) {
    case ScanPath::kRow: return "row";
    case ScanPath::kColumnar: return "columnar";
  }
  return "?";
}

DistOpPtr MakeDistScan(std::string table, sql::ExprPtr filter, ScanPath path) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistScan;
  op->table = std::move(table);
  op->filter = std::move(filter);
  op->path = path;
  return op;
}

DistOpPtr MakeDistIndexScan(std::string table, sql::ExprPtr filter,
                            std::string index_column, size_t index_col) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistIndexScan;
  op->table = std::move(table);
  op->filter = std::move(filter);
  op->path = ScanPath::kRow;
  op->index_column = std::move(index_column);
  op->index_col = index_col;
  return op;
}

DistOpPtr MakeDistExchange(DistOpPtr child, ExchangeMode mode,
                           std::string partition_key) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistExchange;
  op->children.push_back(std::move(child));
  op->mode = mode;
  op->partition_key = std::move(partition_key);
  return op;
}

DistOpPtr MakeDistHashJoin(DistOpPtr left, DistOpPtr right,
                           std::string left_key, std::string right_key,
                           sql::ExprPtr residual, JoinStrategy strategy) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistHashJoin;
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  op->left_key = std::move(left_key);
  op->right_key = std::move(right_key);
  op->residual = std::move(residual);
  op->strategy = strategy;
  return op;
}

DistOpPtr MakeDistPartialAgg(DistOpPtr child, std::vector<std::string> group_by,
                             std::vector<DistributedAgg> aggs) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistPartialAgg;
  op->children.push_back(std::move(child));
  op->group_by = std::move(group_by);
  op->aggs = std::move(aggs);
  return op;
}

DistOpPtr MakeDistFinalAgg(DistOpPtr child, std::vector<std::string> group_by,
                           std::vector<DistributedAgg> aggs) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kDistFinalAgg;
  op->children.push_back(std::move(child));
  op->group_by = std::move(group_by);
  op->aggs = std::move(aggs);
  return op;
}

DistOpPtr MakeGather(DistOpPtr child, bool gather_rows) {
  auto op = std::make_shared<DistOp>();
  op->kind = DistOpKind::kGather;
  op->children.push_back(std::move(child));
  op->gather_rows = gather_rows;
  return op;
}

std::string DistOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad;
  switch (kind) {
    case DistOpKind::kDistScan:
      s += "DISTSCAN " + table + " path=";
      s += cluster::ToString(path);
      if (!scan_detail.empty()) s += " scan=" + scan_detail;
      if (filter) s += " pred=[" + filter->ToCanonicalString() + "]";
      if (est_bytes >= 0) {
        s += " est=" + std::to_string(static_cast<long long>(est_bytes)) + "B";
      }
      break;
    case DistOpKind::kDistIndexScan: {
      s += "INDEXSCAN " + table + " index=" + index_column + " probe=";
      if (probe_is_range) {
        s += "range[" + probe_lo.ToString() + ".." + probe_hi.ToString() + "]";
      } else {
        s += "eq(" + probe_eq.ToString() + ")";
      }
      if (probe_shard >= 0) {
        s += " shard=" + std::to_string(probe_shard);
      }
      if (filter) s += " residual=[" + filter->ToCanonicalString() + "]";
      if (est_rows >= 0) {
        s += " est_rows~" + std::to_string(static_cast<long long>(est_rows));
      }
      break;
    }
    case DistOpKind::kDistExchange:
      s += "EXCHANGE ";
      s += mode == ExchangeMode::kBroadcast
               ? "broadcast"
               : (mode == ExchangeMode::kShuffle ? "shuffle" : "local");
      if (mode == ExchangeMode::kShuffle && !partition_key.empty()) {
        s += " key=" + partition_key;
      }
      break;
    case DistOpKind::kDistHashJoin:
      s += "HASHJOIN " + left_key + " = " + right_key + " strategy=";
      s += cluster::ToString(strategy);
      if (residual) s += " residual=[" + residual->ToCanonicalString() + "]";
      break;
    case DistOpKind::kDistPartialAgg:
      s += "PARTIALAGG " + AggListToString(group_by, aggs);
      break;
    case DistOpKind::kDistFinalAgg:
      s += "FINALAGG " + AggListToString(group_by, aggs);
      break;
    case DistOpKind::kGather:
      s += "GATHER ";
      s += gather_rows ? "rows" : "partials";
      break;
  }
  s += "\n";
  for (const auto& c : children) {
    if (c) s += c->ToString(indent + 1);
  }
  return s;
}

Result<DistPlanResult> ExecuteDistPlan(Cluster* cluster, const DistOpPtr& root,
                                       const DistExecOptions& options) {
  DistPlanExecutor exec(cluster, options);
  return exec.Run(root);
}

// --- Lowering ----------------------------------------------------------------

namespace {

/// True when the expression clones and binds cleanly against `schema` —
/// the lowering's proof that a shard (or the CN join) can evaluate it.
bool BindsOn(const sql::ExprPtr& e, const sql::Schema& schema) {
  if (!e) return true;
  sql::ExprPtr c = e->Clone();
  return c->Bind(schema).ok();
}

}  // namespace

DistLowering LowerSelectPlan(const sql::PlanPtr& logical, Cluster* cluster,
                             const optimizer::StatsRegistry* stats,
                             const DistExecOptions& options) {
  DistLowering out;
  const sql::PlanNode* node = logical.get();
  if (node == nullptr) {
    out.fallback_reason = "empty plan";
    return out;
  }

  // Peel the CN-side wrappers (re-executed over the gathered result):
  // Limit / Sort / Project / HAVING filters, outermost first.
  while (node != nullptr) {
    if (node->kind == sql::PlanKind::kLimit ||
        node->kind == sql::PlanKind::kSort ||
        node->kind == sql::PlanKind::kProject ||
        node->kind == sql::PlanKind::kFilter) {
      out.cn_post.push_back(node);
      node = node->children.empty() ? nullptr : node->children[0].get();
      continue;
    }
    break;
  }
  if (node == nullptr) {
    out.fallback_reason = "plan has no input relation";
    return out;
  }
  if (node->kind == sql::PlanKind::kSetOp) {
    out.fallback_reason = "set operations / DISTINCT run single-node";
    return out;
  }
  if (node->kind == sql::PlanKind::kValues) {
    out.fallback_reason = "VALUES input is already local";
    return out;
  }

  const sql::PlanNode* agg_node = nullptr;
  if (node->kind == sql::PlanKind::kAggregate) {
    agg_node = node;
    node = node->children.empty() ? nullptr : node->children[0].get();
    if (node == nullptr) {
      out.fallback_reason = "aggregate has no input";
      return out;
    }
    if (node->kind == sql::PlanKind::kFilter) {
      // A Filter squeezed between Aggregate and the core means the planner
      // could not push every predicate into scans / the join — the shards
      // cannot evaluate it either.
      out.fallback_reason = "predicate not pushable to shards";
      return out;
    }
  }

  std::vector<int> serving = ServingDns(cluster);
  if (serving.empty()) {
    out.fallback_reason = "no serving data nodes";
    return out;
  }
  DataNode* dn0 = cluster->dn(serving[0]);

  // Lower one logical Scan leaf to a DistScan, choosing the scan path from
  // columnar registration + filter recognizability, and stamping the
  // planner's byte estimate for EXPLAIN.
  auto lower_scan = [&](const sql::PlanNode& s,
                        sql::Schema* schema_out) -> Result<DistOpPtr> {
    if (!s.alias.empty()) {
      return Status::InvalidArgument("aliased scans run single-node");
    }
    auto t = dn0->GetTable(s.table_name);
    if (!t.ok()) {
      return Status::InvalidArgument("table not sharded on the cluster: " +
                                     s.table_name);
    }
    *schema_out = (*t)->schema();
    if (s.predicate && !BindsOn(s.predicate, *schema_out)) {
      return Status::InvalidArgument(
          "scan predicate does not bind on the shard schema");
    }
    ScanPath path = ScanPath::kRow;
    std::string detail;
    if (options.use_columnar && cluster->IsColumnar(s.table_name)) {
      if (RecognizeFilter(s.predicate).has_value()) {
        path = ScanPath::kColumnar;
        detail = "columnar(materialize)";
      } else {
        // Pre-demoted to the row path here, so the executor never sees the
        // columnar attempt — count the fallback at lowering time.
        detail = "row(filter not recognized)";
        cluster->metrics().Add("columnar.fallback_filter");
      }
    }
    DistOpPtr scan = MakeDistScan(
        s.table_name, s.predicate ? s.predicate->Clone() : nullptr, path);
    scan->scan_detail = std::move(detail);
    if (stats != nullptr) {
      if (const auto* ts = stats->Get(s.table_name)) {
        scan->est_bytes = ts->EstimatedBytes();
      }
    }
    return scan;
  };

  // Index fast path: when the predicate is a recognizable equality (or, on
  // an ordered index, range) conjunct on an indexed column and the
  // ANALYZE-derived selectivity predicts fewer rows than the scan
  // crossover, the DistScan core is replaced with a DistIndexScan. Only
  // the single-scan core qualifies — join inputs want whole relations, so
  // they keep the scan path.
  auto try_index_scan = [&](const sql::PlanNode& s, const sql::Schema& schema,
                            DistOpPtr core_in) -> DistOpPtr {
    if (!options.use_index || s.predicate == nullptr) return core_in;
    auto pred = RecognizeFilter(s.predicate);
    if (!pred.has_value() || pred->never ||
        pred->kind == ColumnarPredicate::Kind::kAll) {
      return core_in;
    }
    auto col = schema.IndexOf(pred->column);
    if (!col.ok()) return core_in;
    auto index = cluster->IndexOn(serving[0], s.table_name, *col);
    if (index == nullptr) return core_in;
    const bool is_point = pred->kind == ColumnarPredicate::Kind::kStringEq ||
                          pred->lo == pred->hi;
    if (!is_point &&
        index->kind() != storage::SecondaryIndex::Kind::kOrdered) {
      return core_in;  // a hash index cannot serve a range
    }

    // Crossover: per-DN probe cost (setup + copy-out per estimated
    // matching row) against the per-DN heap walk it replaces. Without
    // stats, trust a point probe — the OLTP case CREATE INDEX exists for —
    // but never a blind range.
    const LatencyModel& lat = cluster->latency();
    double est_rows = -1;
    const optimizer::TableStats* ts =
        stats != nullptr ? stats->Get(s.table_name) : nullptr;
    if (ts != nullptr && ts->num_rows > 0) {
      if (const optimizer::ColumnStats* cs = ts->Column(BareName(pred->column))) {
        double sel;
        if (pred->kind == ColumnarPredicate::Kind::kStringEq) {
          sel = cs->EqSelectivity(sql::Value(pred->needle));
        } else if (is_point) {
          sel = cs->EqSelectivity(sql::Value(pred->lo));
        } else {
          const double hi_sel =
              pred->hi == std::numeric_limits<int64_t>::max()
                  ? 1.0
                  : cs->LtSelectivity(sql::Value(pred->hi + 1));
          sel = std::max(0.0, hi_sel - cs->LtSelectivity(sql::Value(pred->lo)));
        }
        est_rows = sel * static_cast<double>(ts->num_rows);
      }
    }
    const double n = static_cast<double>(serving.size());
    if (est_rows >= 0) {
      const double rows_per_dn = static_cast<double>(ts->num_rows) / n;
      const double probe_cost =
          static_cast<double>(lat.index_probe_service_us) +
          (est_rows / n) * static_cast<double>(lat.index_row_service_us);
      const double scan_cost =
          static_cast<double>(lat.dn_stmt_service_us) +
          std::ceil(rows_per_dn / 256.0) *
              static_cast<double>(lat.row_scan_block_service_us);
      if (probe_cost >= scan_cost) return core_in;
    } else if (!is_point) {
      return core_in;
    }

    DistOpPtr idx = MakeDistIndexScan(s.table_name, s.predicate->Clone(),
                                      index->column(), *col);
    if (is_point) {
      idx->probe_eq = pred->kind == ColumnarPredicate::Kind::kStringEq
                          ? sql::Value(pred->needle)
                          : sql::Value(pred->lo);
      // Equality on the shard key (schema column 0 — INSERT routes rows by
      // row[0]) pins every possible match to one shard.
      if (*col == 0) idx->probe_shard = cluster->ShardFor(idx->probe_eq);
    } else {
      idx->probe_is_range = true;
      idx->probe_lo = sql::Value(pred->lo);
      idx->probe_hi = sql::Value(pred->hi);
    }
    idx->est_rows = est_rows;
    idx->est_bytes = core_in->est_bytes;
    idx->scan_detail = "index(" + BareName(pred->column) + ")";
    return idx;
  };

  // Lower the core: a single table scan, or an inner equi-join of two scans.
  DistOpPtr core;
  sql::Schema core_schema;
  if (node->kind == sql::PlanKind::kScan) {
    auto scan = lower_scan(*node, &core_schema);
    if (!scan.ok()) {
      out.fallback_reason = scan.status().message();
      return out;
    }
    core = try_index_scan(*node, core_schema, std::move(*scan));
  } else if (node->kind == sql::PlanKind::kJoin) {
    if (node->join_type != sql::JoinType::kInner) {
      out.fallback_reason = "only inner joins run distributed";
      return out;
    }
    if (node->children.size() != 2 ||
        node->children[0]->kind != sql::PlanKind::kScan ||
        node->children[1]->kind != sql::PlanKind::kScan) {
      out.fallback_reason = "multi-way joins run single-node";
      return out;
    }
    sql::Schema left_schema, right_schema;
    auto left = lower_scan(*node->children[0], &left_schema);
    if (!left.ok()) {
      out.fallback_reason = left.status().message();
      return out;
    }
    auto right = lower_scan(*node->children[1], &right_schema);
    if (!right.ok()) {
      out.fallback_reason = right.status().message();
      return out;
    }
    // Split the join predicate: the first equi conjunct becomes the hash
    // key; everything else is the residual, evaluated on the joined row.
    std::vector<sql::ExprPtr> conjuncts;
    sql::SplitConjuncts(node->predicate, &conjuncts);
    std::string left_key, right_key;
    std::vector<sql::ExprPtr> residual_parts;
    bool found_equi = false;
    for (auto& c : conjuncts) {
      std::string lc, rc;
      if (!found_equi &&
          sql::IsEquiJoinPredicate(*c, left_schema, right_schema, &lc, &rc)) {
        found_equi = true;
        left_key = lc;
        right_key = rc;
      } else {
        residual_parts.push_back(std::move(c));
      }
    }
    if (!found_equi) {
      out.fallback_reason = "join has no equi-join conjunct";
      return out;
    }
    sql::ExprPtr residual = sql::ConjoinAll(residual_parts);
    core_schema = left_schema.Concat(right_schema);
    if (residual && !BindsOn(residual, core_schema)) {
      out.fallback_reason = "join residual does not bind on the joined schema";
      return out;
    }
    // Exchange annotation + join strategy: resolvable at plan time only
    // when both relations have statistics (the executor falls back to the
    // actual scanned sizes otherwise, which EXPLAIN reports as auto).
    JoinStrategy strategy = JoinStrategy::kAuto;
    DistOpPtr left_in = std::move(*left);
    DistOpPtr right_in = std::move(*right);
    const auto* lstats = stats != nullptr ? stats->Get(node->children[0]->table_name) : nullptr;
    const auto* rstats = stats != nullptr ? stats->Get(node->children[1]->table_name) : nullptr;
    if (lstats != nullptr && rstats != nullptr) {
      const double est_l = lstats->EstimatedBytes();
      const double est_r = rstats->EstimatedBytes();
      const int n = static_cast<int>(serving.size());
      const double cost_broadcast = std::min(est_l, est_r) * (n - 1);
      const double cost_repartition =
          (est_l + est_r) * static_cast<double>(n - 1) / std::max(n, 1);
      strategy = cost_broadcast <= cost_repartition ? JoinStrategy::kBroadcast
                                                    : JoinStrategy::kRepartition;
      if (strategy == JoinStrategy::kBroadcast) {
        const bool broadcast_left = est_l <= est_r;
        left_in = broadcast_left
                      ? MakeDistExchange(std::move(left_in),
                                         ExchangeMode::kBroadcast)
                      : MakeDistExchange(std::move(left_in), ExchangeMode::kNone);
        right_in = broadcast_left
                       ? MakeDistExchange(std::move(right_in),
                                          ExchangeMode::kNone)
                       : MakeDistExchange(std::move(right_in),
                                          ExchangeMode::kBroadcast);
      } else {
        left_in = MakeDistExchange(std::move(left_in), ExchangeMode::kShuffle,
                                   left_key);
        right_in = MakeDistExchange(std::move(right_in), ExchangeMode::kShuffle,
                                    right_key);
      }
    }
    core = MakeDistHashJoin(std::move(left_in), std::move(right_in),
                            std::move(left_key), std::move(right_key),
                            residual ? residual->Clone() : nullptr, strategy);
    if (lstats != nullptr || rstats != nullptr) {
      core->est_bytes = (lstats != nullptr ? lstats->EstimatedBytes() : 0) +
                        (rstats != nullptr ? rstats->EstimatedBytes() : 0);
    }
  } else {
    out.fallback_reason = "unsupported plan shape below the aggregate";
    return out;
  }

  // Lower the aggregate, if any. The shards compute partials and the CN
  // merges them, so every aggregate argument must be a plain column the
  // shard schema can resolve, and the output names must match what the
  // single-node executor would produce (bare group names).
  if (agg_node != nullptr) {
    std::vector<DistributedAgg> dist_aggs;
    for (const auto& g : agg_node->group_by) {
      if (BareName(g) != g) {
        out.fallback_reason = "qualified GROUP BY keys run single-node";
        return out;
      }
      if (!core_schema.IndexOf(g).ok()) {
        out.fallback_reason = "GROUP BY key not resolvable on shards: " + g;
        return out;
      }
    }
    for (const auto& a : agg_node->aggregates) {
      DistributedAgg da;
      da.func = a.func;
      da.name = a.name;
      if (a.arg == nullptr) {
        if (a.func != sql::AggFunc::kCount) {
          out.fallback_reason = "aggregate with no argument";
          return out;
        }
      } else {
        if (a.arg->kind() != sql::ExprKind::kColumn) {
          out.fallback_reason =
              "aggregate over an expression runs single-node";
          return out;
        }
        da.column = a.arg->column_name();
        if (!core_schema.IndexOf(da.column).ok()) {
          out.fallback_reason =
              "aggregate argument not resolvable on shards: " + da.column;
          return out;
        }
      }
      dist_aggs.push_back(std::move(da));
    }
    auto names = GroupOutputNames(agg_node->group_by, dist_aggs);
    if (!names.ok()) {
      out.fallback_reason = names.status().message();
      return out;
    }
    // Annotate the fused scan with the kernel decision EXPLAIN will show:
    // grouped-kernel / kernel when the partial aggregate runs as pure
    // column kernels on fresh shards, else the materialize reason.
    if (core->kind == DistOpKind::kDistScan &&
        core->path == ScanPath::kColumnar) {
      std::vector<PartialPlan> plans;
      plans.reserve(dist_aggs.size());
      for (const auto& a : dist_aggs) plans.push_back(DecomposeAgg(a));
      core->scan_detail = KernelSupportDetail(
          !agg_node->group_by.empty(),
          ClassifyKernelSupport(agg_node->group_by, plans, core_schema));
    }
    out.root = MakeDistFinalAgg(
        MakeGather(MakeDistPartialAgg(std::move(core), agg_node->group_by,
                                      dist_aggs),
                   /*gather_rows=*/false),
        agg_node->group_by, dist_aggs);
    out.cut = agg_node;
  } else {
    out.root = MakeGather(std::move(core), /*gather_rows=*/true);
    out.cut = node;
  }
  return out;
}

namespace {

void CollectScans(const DistOpPtr& op, std::vector<const DistOp*>* out) {
  if (op == nullptr) return;
  if (op->kind == DistOpKind::kDistScan ||
      op->kind == DistOpKind::kDistIndexScan) {
    out->push_back(op.get());
  }
  for (const auto& c : op->children) CollectScans(c, out);
}

}  // namespace

std::string ExplainScanPaths(Cluster* cluster, const DistOpPtr& root) {
  std::vector<const DistOp*> scans;
  CollectScans(root, &scans);
  if (scans.empty()) return "";
  std::string s;
  const std::vector<int> serving = ServingDns(cluster);
  for (const DistOp* scan : scans) {
    if (scan->kind == DistOpKind::kDistIndexScan) {
      // Index probes: one line per DN the probe will touch (a shard-key
      // equality pins the plan to one DN), with the ANALYZE estimate the
      // crossover was decided on. Realized rows land in the post-run scan
      // report (DistExecStats::per_dn) for the estimated-vs-actual check.
      std::vector<int> probed = serving;
      if (scan->probe_shard >= 0) {
        probed = {cluster->EffectiveDn(scan->probe_shard)};
      }
      for (int dn : probed) {
        s += "  dn" + std::to_string(dn) + " " + scan->table +
             ": access=index(" + BareName(scan->index_column) + ")";
        if (scan->probe_is_range) {
          s += " probe=range[" + scan->probe_lo.ToString() + ".." +
               scan->probe_hi.ToString() + "]";
        } else {
          s += " probe=eq(" + scan->probe_eq.ToString() + ")";
        }
        if (scan->est_rows >= 0) {
          s += " est_rows~" +
               std::to_string(static_cast<long long>(scan->est_rows));
        }
        s += "\n";
      }
      continue;
    }
    for (int dn : serving) {
      s += "  dn" + std::to_string(dn) + " " + scan->table + ": ";
      if (scan->path != ScanPath::kColumnar ||
          !cluster->IsColumnar(scan->table)) {
        s += scan->scan_detail.empty() ? "row" : scan->scan_detail;
        s += " access=scan\n";
        continue;
      }
      auto pred = RecognizeFilter(scan->filter);
      if (!pred.has_value()) {
        s += "row(filter not recognized) access=scan\n";
        continue;
      }
      std::shared_ptr<storage::DeltaShard> shard =
          cluster->dn(dn)->GetColumnarShard(scan->table);
      if (shard == nullptr) {
        s += "row access=scan\n";
        continue;
      }
      // Forecast against a fresh local snapshot: sealed chunk counts, prune
      // estimates, and the delta-tail rows a scan issued now would union in.
      txn::Snapshot snap = cluster->dn(dn)->txn_mgr().TakeSnapshot();
      txn::VisibilityChecker vis(&snap, &cluster->dn(dn)->txn_mgr().clog(),
                                 txn::kInvalidXid);
      storage::DeltaShard::View view = shard->Snapshot(vis);
      const storage::ColumnTable& ct = *view.sealed;
      s += scan->scan_detail.empty() ? "columnar" : scan->scan_detail;
      s += " chunks=" + std::to_string(ct.num_chunks());
      s += " delta=" + std::to_string(view.delta_examined);
      storage::PruneEstimate est;
      bool have_est = false;
      if (pred->kind == ColumnarPredicate::Kind::kIntRange) {
        auto e = ct.EstimatePruningInt64(pred->column, pred->lo, pred->hi);
        if (e.ok()) {
          est = *e;
          have_est = true;
        }
      } else if (pred->kind == ColumnarPredicate::Kind::kStringEq) {
        auto e = ct.EstimatePruningStringEq(pred->column, pred->needle);
        if (e.ok()) {
          est = *e;
          have_est = true;
        }
      }
      if (pred->never) {
        s += " prune=all(never-true predicate)";
      } else if (have_est) {
        s += " prune~" + std::to_string(est.chunks_prunable) + "/" +
             std::to_string(est.chunks_total);
      }
      s += " access=scan\n";
    }
  }
  return s;
}

}  // namespace ofi::cluster
