/// \file distributed_sql.h
/// \brief SQL on the cluster: the paper's CN role ("the CN plans SQL and
/// executes it across data nodes"). Statements come in as text; DDL/DML
/// maintain both a CN-side catalog mirror (for planning, statistics and
/// single-node fallback) and the sharded cluster tables; SELECTs are
/// parsed and planned by the ordinary src/sql front-end, then lowered onto
/// the cluster by LowerSelectPlan and executed by the distributed
/// physical-operator layer. Shapes the cluster cannot run (outer joins,
/// set ops, expression aggregates, ...) transparently execute single-node
/// on the mirror — same rows either way, so callers only notice in the
/// reported execution info.
#pragma once

#include <string>

#include "cluster/distributed_plan.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace ofi::cluster {

/// \brief A stateful SQL session whose tables are hash-sharded across a
/// simulated MPP cluster.
///
/// The CN keeps a full row mirror of every table. That is not a cheat —
/// the mirror is only read for planning metadata, ANALYZE statistics and
/// the single-node fallback path; distributed SELECTs read the DN shards
/// through a multi-shard snapshot. (It also makes the randomized
/// equivalence suite honest: the reference answer comes from the mirror
/// through the ordinary executor.)
class DistributedSqlSession {
 public:
  explicit DistributedSqlSession(int num_dns = 3,
                                 Protocol protocol = Protocol::kGtmLite);

  /// Executes one statement. SELECTs return their result table; DDL/DML
  /// return an empty table on success. INSERT rows are sharded by their
  /// first column (the cluster's key convention).
  Result<sql::Table> Execute(const std::string& statement);

  /// EXPLAIN: parse + plan + lower, render the distributed physical tree
  /// (plus the CN-side post steps) without executing — or the single-node
  /// logical plan with the fallback reason.
  Result<std::string> Explain(const std::string& query);

  /// Re-ANALYZEs every table on the CN mirror, feeding the broadcast /
  /// repartition decision in subsequent lowered joins.
  void Analyze() { stats_.AnalyzeAll(catalog_); }

  /// Cluster columnar-copy management (see Cluster::RegisterColumnar /
  /// RefreshColumnar); lowered scans pick the columnar path automatically.
  Status RegisterColumnar(const std::string& table) {
    return cluster_.RegisterColumnar(table);
  }
  Result<size_t> RefreshColumnar(const std::string& table) {
    return cluster_.RefreshColumnar(table);
  }

  /// How the last SELECT actually executed.
  struct QueryInfo {
    bool select = false;
    bool distributed = false;
    std::string fallback_reason;  // set when !distributed
    DistExecStats stats;          // valid when distributed
  };
  const QueryInfo& last() const { return last_; }

  /// Human-readable per-DN scan breakdown of the last distributed SELECT
  /// (realized path + chunk/row counters per shard), e.g.
  ///   dn0 sales: columnar(grouped-kernel) chunks=3/5 pruned=2 rows=1200
  /// Empty when the last statement was not a distributed SELECT or its plan
  /// scanned nothing.
  std::string LastScanReport() const;

  Cluster& cluster() { return cluster_; }
  sql::Catalog& catalog() { return catalog_; }
  const optimizer::StatsRegistry& stats() const { return stats_; }
  /// Execution knobs for lowered plans (columnar use, parallelism, channel
  /// byte limits, ...), applied to every subsequent distributed SELECT.
  DistExecOptions& exec_options() { return exec_options_; }

 private:
  Result<sql::PlanPtr> PlanQuery(const sql::SelectStatement& stmt);
  Result<sql::Table> ExecuteSelect(const sql::SelectStatement& stmt);

  Cluster cluster_;
  sql::Catalog catalog_;  // CN mirror: planning, stats, fallback
  optimizer::StatsRegistry stats_;
  DistExecOptions exec_options_;
  QueryInfo last_;
};

}  // namespace ofi::cluster
