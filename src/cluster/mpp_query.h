/// \file mpp_query.h
/// \brief MPP query execution over the sharded cluster (paper Fig. 1:
/// "query planning and execution are optimized for large scale parallel
/// processing... they exchange data on-demand and execute the query in
/// parallel"). The classic scatter-gather pattern: each data node runs the
/// filter and a PARTIAL aggregate over its shard inside one consistent
/// multi-shard snapshot; the coordinator merges partials with the FINAL
/// aggregation (COUNT→sum of counts, AVG→sum/count pair, ...), so only
/// group-sized partial states — not rows — cross the network.
///
/// The scatter phase is genuinely parallel: per-DN scans + partial
/// aggregation run as tasks on a shared fixed-size thread pool
/// (common/thread_pool.h), reading through the storage/txn shared-mutex
/// read path, and partials are gathered deterministically in DN order. The
/// simulated latency model matches: every DN receives the scatter request
/// at the same instant and works concurrently on its own serialized
/// resource, so the CN-observed latency is the max over DNs plus a small
/// per-partial gather cost — not the serial sum of round trips (which is
/// still reported for comparison).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/exchange/exchange.h"
#include "common/thread_pool.h"
#include "optimizer/stats.h"
#include "sql/plan.h"

namespace ofi::cluster {

/// One requested aggregate.
struct DistributedAgg {
  sql::AggFunc func = sql::AggFunc::kCount;
  std::string column;  // ignored for COUNT(*)
  std::string name;
};

/// Execution knobs for DistributedAggregate.
struct DistributedOptions {
  /// Run per-DN partial scans/aggregation on the shared thread pool. When
  /// false the scatter executes inline on the caller thread (the pre-pool
  /// behaviour, kept for speedup measurements). Results are identical —
  /// partials are always merged in DN order.
  bool parallel = true;
  /// Pool override; nullptr uses common::ThreadPool::Shared().
  common::ThreadPool* pool = nullptr;
  /// Serve partial scans from the table's columnar copy when one is
  /// registered (Cluster::RegisterColumnar) and the filter is a
  /// recognizable column-vs-literal predicate. Columnar shards are always
  /// fresh — sealed chunks union with the delta tail the heap listener
  /// feeds — so only unsupported filters fall back to the row store;
  /// results are identical either way.
  bool use_columnar = true;
  /// Run each columnar shard scan morsel-parallel on the pool. Only valid
  /// when `parallel` is false (inline scatter): pool workers must not nest
  /// ParallelFor. Setting both flags is rejected with InvalidArgument —
  /// historically the combination silently disabled morsel parallelism,
  /// which read as "morsel-parallel" while measuring nothing of the sort.
  bool columnar_morsel_parallel = false;
};

/// Result of a distributed aggregate, with the data-movement accounting the
/// pattern exists to minimize.
struct DistributedResult {
  sql::Table table;
  /// Bytes of partial state shipped DN -> CN.
  size_t partial_bytes = 0;
  /// Bytes that a naive ship-all-rows plan would have moved.
  size_t naive_bytes = 0;
  /// Simulated CN-observed scatter-gather latency under the parallel model:
  /// max over DNs of (merge + partial scan on that DN's serialized
  /// resource) plus one cn_gather_service_us per gathered partial.
  SimTime sim_latency_us = 0;
  /// The old serial model for comparison: the same per-DN round trips
  /// chained back-to-back, so N shards cost ~N times one shard.
  SimTime sim_latency_serial_us = 0;
  /// Shards served from the columnar store (0 = pure row path).
  size_t columnar_shards = 0;
  /// Merged scan counters across columnar shards: chunks pruned by zone
  /// maps never contribute to sim_latency_us, and rows_decoded is the
  /// machine-independent work metric EXPERIMENTS.md E15 reports.
  storage::ScanStats scan_stats;
};

/// Runs `SELECT group_by..., aggs... FROM table [WHERE filter] GROUP BY
/// group_by` across every shard with partial/final aggregation. The scan
/// runs under one multi-shard transaction, so the answer is a consistent
/// snapshot of the whole cluster. With replication enabled, shards whose
/// primary is down are served (exactly once) by the promoted backup.
Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options = DistributedOptions{});

// --- Cross-shard joins over the exchange (cluster/exchange) ------------------

/// How the two sides of a distributed join are moved so matching keys meet.
enum class JoinStrategy {
  /// Choose from estimated side sizes: broadcast the smaller side when
  /// |small| x (N-1) < (|L|+|R|) x (N-1)/N, repartition otherwise. Estimates
  /// come from optimizer stats when provided, else from the actual scanned
  /// encoded sizes.
  kAuto,
  /// Ship the (smaller) build side, whole, to every DN; the probe side
  /// never moves. Bytes ~ |build| x (N-1).
  kBroadcast,
  /// Hash-partition BOTH sides on the join key; row with key k goes to DN
  /// hash(k) % N. Bytes ~ (|L|+|R|) x (N-1)/N.
  kRepartition,
};

/// One cross-shard equi-join request. Filters are pushed below the exchange
/// (each DN filters its shard before any row moves); `residual` is evaluated
/// on the joined row. Inner joins only — the merge of per-DN partials is a
/// plain union exactly because no side needs unmatched-row bookkeeping.
struct DistributedJoinSpec {
  std::string left_table;
  std::string right_table;
  std::string left_key;   // column in left_table's schema
  std::string right_key;  // column in right_table's schema
  sql::ExprPtr left_filter;
  sql::ExprPtr right_filter;
  sql::ExprPtr residual;
};

/// Execution knobs for DistributedJoin.
struct DistributedJoinOptions {
  JoinStrategy strategy = JoinStrategy::kAuto;
  /// Run per-DN scan/partition/join tasks on the shared thread pool (same
  /// contract as DistributedOptions::parallel: results and simulated
  /// latencies are identical either way).
  bool parallel = true;
  common::ThreadPool* pool = nullptr;
  /// Optimizer statistics for the kAuto strategy decision (keyed by table
  /// name). Null falls back to actual scanned sizes.
  const optimizer::StatsRegistry* stats = nullptr;
  /// Rows per serialized exchange batch.
  size_t batch_rows = 64;
  /// Per-exchange-channel in-memory queued-byte cap; 0 = unbounded. An
  /// over-cap Send transparently spills the batch to a per-channel temp
  /// file — the join completes bit-identical to the uncapped run, charged
  /// extra spill I/O in simulated time and counted in the
  /// exchange.bytes_spilled metric. Set strict_channel_limit to get the
  /// old deny-with-ResourceExhausted behavior instead.
  size_t max_channel_bytes = 0;
  /// Opt-in hard admission control: deny over-cap sends (counted in
  /// exchange.bytes_denied) rather than spilling.
  bool strict_channel_limit = false;
  /// Directory for spill segment files; empty = the system temp directory.
  std::string spill_dir;
  /// Cap on the query's total live on-disk spill bytes; 0 = unbounded.
  size_t max_spill_bytes = 0;
  /// Per-DN cap on the in-memory join build partition; overflow spools
  /// through a spill file. 0 = never spill the build side.
  size_t max_build_bytes = 0;
};

/// Result of a distributed join, with the data-movement accounting the
/// broadcast/repartition choice trades.
struct DistributedJoinResult {
  sql::Table table;
  /// Strategy actually executed (kAuto resolved).
  JoinStrategy strategy = JoinStrategy::kBroadcast;
  /// Broadcast only: true if the left side was the broadcast (build) side.
  bool broadcast_left = false;
  /// Cross-DN bytes moved by hash repartitioning (0 under broadcast).
  size_t shuffle_bytes = 0;
  /// Cross-DN bytes moved by broadcasting (0 under repartition).
  size_t broadcast_bytes = 0;
  /// Bytes a naive plan — ship every (filtered) row of both sides to one
  /// node — would have moved. The baseline both strategies beat.
  size_t naive_bytes = 0;
  /// Encoded bytes of joined rows gathered DN -> CN.
  size_t result_bytes = 0;
  /// Cross-DN exchange batches sent.
  size_t exchange_batches = 0;
  /// Exchange payload spilled to temp files by capped channels (loopback
  /// included — the disk write is real even for the local partition).
  size_t spill_bytes = 0;
  /// Join build partitions spooled to disk under max_build_bytes.
  size_t build_spill_bytes = 0;
  /// Per-(src DN, dst DN) byte/batch accounting, loopback included.
  std::vector<exchange::ChannelStats> channels;
  /// Parallel latency model: max over DNs of (prepare + scan + exchange +
  /// local join) plus the per-partial, size-aware gather.
  SimTime sim_latency_us = 0;
  /// The chained-round-trips model for comparison (grows ~linearly in DNs).
  SimTime sim_latency_serial_us = 0;
};

/// Runs `SELECT * FROM left JOIN right ON left_key = right_key [AND
/// residual] [WHERE filters]` across every shard: both sides are scanned
/// inside ONE multi-shard snapshot, rows move through the exchange per the
/// chosen strategy, each DN runs the ordinary src/sql hash join on its
/// slice, and partials are gathered deterministically in DN order — so the
/// result is bit-identical (after canonical ordering) to the single-node
/// reference plan. Output schema is left ++ right, as in the local executor.
Result<DistributedJoinResult> DistributedJoin(
    Cluster* cluster, const DistributedJoinSpec& spec,
    const DistributedJoinOptions& options = DistributedJoinOptions{});

}  // namespace ofi::cluster
