/// \file mpp_query.h
/// \brief MPP query execution over the sharded cluster (paper Fig. 1:
/// "query planning and execution are optimized for large scale parallel
/// processing... they exchange data on-demand and execute the query in
/// parallel"). The classic scatter-gather pattern: each data node runs the
/// filter and a PARTIAL aggregate over its shard inside one consistent
/// multi-shard snapshot; the coordinator merges partials with the FINAL
/// aggregation (COUNT→sum of counts, AVG→sum/count pair, ...), so only
/// group-sized partial states — not rows — cross the network.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sql/plan.h"

namespace ofi::cluster {

/// One requested aggregate.
struct DistributedAgg {
  sql::AggFunc func = sql::AggFunc::kCount;
  std::string column;  // ignored for COUNT(*)
  std::string name;
};

/// Result of a distributed aggregate, with the data-movement accounting the
/// pattern exists to minimize.
struct DistributedResult {
  sql::Table table;
  /// Bytes of partial state shipped DN -> CN.
  size_t partial_bytes = 0;
  /// Bytes that a naive ship-all-rows plan would have moved.
  size_t naive_bytes = 0;
  SimTime sim_latency_us = 0;
};

/// Runs `SELECT group_by..., aggs... FROM table [WHERE filter] GROUP BY
/// group_by` across every shard with partial/final aggregation. The scan
/// runs under one multi-shard transaction, so the answer is a consistent
/// snapshot of the whole cluster.
Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs);

}  // namespace ofi::cluster
