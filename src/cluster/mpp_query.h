/// \file mpp_query.h
/// \brief MPP query execution over the sharded cluster (paper Fig. 1:
/// "query planning and execution are optimized for large scale parallel
/// processing... they exchange data on-demand and execute the query in
/// parallel"). The classic scatter-gather pattern: each data node runs the
/// filter and a PARTIAL aggregate over its shard inside one consistent
/// multi-shard snapshot; the coordinator merges partials with the FINAL
/// aggregation (COUNT→sum of counts, AVG→sum/count pair, ...), so only
/// group-sized partial states — not rows — cross the network.
///
/// The scatter phase is genuinely parallel: per-DN scans + partial
/// aggregation run as tasks on a shared fixed-size thread pool
/// (common/thread_pool.h), reading through the storage/txn shared-mutex
/// read path, and partials are gathered deterministically in DN order. The
/// simulated latency model matches: every DN receives the scatter request
/// at the same instant and works concurrently on its own serialized
/// resource, so the CN-observed latency is the max over DNs plus a small
/// per-partial gather cost — not the serial sum of round trips (which is
/// still reported for comparison).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/thread_pool.h"
#include "sql/plan.h"

namespace ofi::cluster {

/// One requested aggregate.
struct DistributedAgg {
  sql::AggFunc func = sql::AggFunc::kCount;
  std::string column;  // ignored for COUNT(*)
  std::string name;
};

/// Execution knobs for DistributedAggregate.
struct DistributedOptions {
  /// Run per-DN partial scans/aggregation on the shared thread pool. When
  /// false the scatter executes inline on the caller thread (the pre-pool
  /// behaviour, kept for speedup measurements). Results are identical —
  /// partials are always merged in DN order.
  bool parallel = true;
  /// Pool override; nullptr uses common::ThreadPool::Shared().
  common::ThreadPool* pool = nullptr;
};

/// Result of a distributed aggregate, with the data-movement accounting the
/// pattern exists to minimize.
struct DistributedResult {
  sql::Table table;
  /// Bytes of partial state shipped DN -> CN.
  size_t partial_bytes = 0;
  /// Bytes that a naive ship-all-rows plan would have moved.
  size_t naive_bytes = 0;
  /// Simulated CN-observed scatter-gather latency under the parallel model:
  /// max over DNs of (merge + partial scan on that DN's serialized
  /// resource) plus one cn_gather_service_us per gathered partial.
  SimTime sim_latency_us = 0;
  /// The old serial model for comparison: the same per-DN round trips
  /// chained back-to-back, so N shards cost ~N times one shard.
  SimTime sim_latency_serial_us = 0;
};

/// Runs `SELECT group_by..., aggs... FROM table [WHERE filter] GROUP BY
/// group_by` across every shard with partial/final aggregation. The scan
/// runs under one multi-shard transaction, so the answer is a consistent
/// snapshot of the whole cluster. With replication enabled, shards whose
/// primary is down are served (exactly once) by the promoted backup.
Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options = DistributedOptions{});

}  // namespace ofi::cluster
