/// \file replication.h
/// \brief High availability for the MPP cluster (paper §I: "FI-MPPDB
/// provides high availability through smart replication scheme").
///
/// Each data node's shard has a backup on another node. Committed write
/// sets ship to the backup as logical log records, maintaining a shadow
/// copy of the latest committed row per key. When a primary fails, the
/// backup PROMOTES: the shadow materializes into a fresh MVCC table under a
/// recovery transaction and routing fails over. Committed transactions
/// survive; in-flight ones are lost (they never reached the log).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/schema.h"

namespace ofi::cluster {

/// One logical log record: the committed image of a key (or a delete).
struct ReplicationRecord {
  std::string table;
  sql::Value key;
  sql::Row row;          // ignored when deleted
  bool deleted = false;

  size_t ByteSize() const {
    return table.size() + key.ByteSize() + (deleted ? 0 : sql::RowByteSize(row)) + 2;
  }
};

/// \brief The backup-side shadow of one primary's shard: latest committed
/// row per (table, key).
class ShadowShard {
 public:
  /// Applies one committed record.
  void Apply(const ReplicationRecord& record);

  /// All live rows of one table (promotion source).
  const std::map<std::string, std::map<std::string, ReplicationRecord>>& tables()
      const {
    return tables_;
  }

  uint64_t records_applied() const { return records_applied_; }
  uint64_t bytes_received() const { return bytes_received_; }
  size_t live_rows() const;

 private:
  // table -> key.ToString() -> latest record (tombstones retained).
  std::map<std::string, std::map<std::string, ReplicationRecord>> tables_;
  uint64_t records_applied_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace ofi::cluster
