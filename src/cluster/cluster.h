/// \file cluster.h
/// \brief The sharded OLTP cluster (paper Fig. 1): a coordinator routing
/// statements to hash-sharded data nodes, a GTM, and two transaction
/// protocols:
///
/// * kBaselineGtm — Postgres-XC style: every transaction takes a GXID and a
///   global snapshot from the GTM and commits through it; GXIDs double as
///   each DN's local xid.
/// * kGtmLite — the paper's contribution: single-shard transactions never
///   talk to the GTM (local xid + local snapshot + local commit); only
///   multi-shard transactions take a GXID/global snapshot and use merged
///   snapshots (Algorithm 1) for visibility, committing via 2PC.
///
/// Every GTM request, DN statement and commit message charges simulated
/// time against serialized resources (see latency_model.h), which is what
/// the Fig. 3 scalability bench measures.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/data_node.h"
#include "cluster/latency_model.h"
#include "cluster/replication.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "txn/gtm.h"
#include "txn/merge_snapshot.h"

namespace ofi::cluster {

enum class Protocol { kBaselineGtm, kGtmLite };

/// Per-transaction outcome of a batched group commit (Cluster::CommitBatch).
struct GroupCommitOutcome {
  Status status;
  /// Simulated time the commit ack reached the coordinator (valid when
  /// status is OK).
  SimTime done = 0;
};

/// Declared scope of a transaction. Applications shard by design (paper:
/// "database is designed with application sharding in mind"), so the CN
/// knows upfront whether a transaction is single-shard.
enum class TxnScope { kSingleShard, kMultiShard };

class Cluster;

/// \brief A coordinator-side transaction handle. Obtain from
/// Cluster::Begin(); every operation routes by shard key, charges simulated
/// time, and enforces the declared scope.
class Txn {
 public:
  /// Point read of `key` in `table` on its owning shard.
  Result<sql::Row> Read(const std::string& table, const sql::Value& key);
  /// Visible-row scan of one shard (tests / examples).
  Result<std::vector<sql::Row>> ScanShard(const std::string& table, int dn);

  // --- Parallel MPP scatter support (see cluster/mpp_query.cc) --------------
  /// Opens this transaction's context on `dn` (local xid + local snapshot +
  /// Algorithm-1 merge for multi-shard GTM-lite), charging the merge work as
  /// an independent request arriving at `arrival` on that DN instead of
  /// chaining this transaction's serial clock — the scatter fans out to all
  /// DNs at once. Returns the simulated completion time of the context setup
  /// (== `arrival` if the shard was already open). Not thread-safe; call
  /// from the coordinator thread before any concurrent scans.
  Result<SimTime> PrepareShard(int dn, SimTime arrival);

  /// Visible-row scan of a shard previously opened via PrepareShard() (or
  /// any statement). Charges no simulated time and mutates nothing on this
  /// transaction, so distinct DNs may be scanned concurrently from thread
  /// pool workers while writers run under the storage/txn shared locks.
  Result<std::vector<sql::Row>> ScanShardPrepared(const std::string& table,
                                                  int dn) const;

  /// This transaction's MVCC visibility checker on a shard previously opened
  /// via PrepareShard(). The checker holds pointers into the transaction's
  /// own context storage (stable until commit/abort), so columnar scans can
  /// evaluate the delta tail at exactly the snapshot the row path would use.
  Result<txn::VisibilityChecker> VisibilityForPrepared(int dn) const;

  /// Advances this transaction's serial clock to at least `t` (the CN
  /// resumes once the last gathered partial has arrived).
  void AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

  Status Insert(const std::string& table, const sql::Value& key, sql::Row row);
  Status Update(const std::string& table, const sql::Value& key, sql::Row row);
  Status Delete(const std::string& table, const sql::Value& key);

  /// Commits: local commit for single-shard GTM-lite; 2PC + GTM otherwise.
  Status Commit();
  Status Abort();

  /// Simulated time consumed so far by this transaction (its critical path
  /// through network hops and serialized resources).
  SimTime now() const { return now_; }
  TxnScope scope() const { return scope_; }
  bool finished() const { return finished_; }
  txn::Gxid gxid() const { return gxid_; }

  /// Merge statistics accumulated across DN first-touches (multi-shard
  /// GTM-lite only).
  int upgrades() const { return upgrades_; }
  int downgrades() const { return downgrades_; }

 private:
  friend class Cluster;
  Txn(Cluster* cluster, TxnScope scope, SimTime start);

  struct WriteRecord {
    std::string table;
    sql::Value key;
    sql::Row row;       // committed image (empty for deletes)
    bool deleted = false;
  };
  struct DnContext {
    txn::Xid xid = txn::kInvalidXid;
    std::optional<txn::Snapshot> local_snapshot;
    std::optional<txn::MergedSnapshot> merged;
    // Write set: targeted rollback on abort, replication log on commit.
    std::vector<WriteRecord> writes;
  };

  /// Lazily opens this transaction's context on DN `dn` (local xid, local
  /// snapshot, snapshot merge for multi-shard GTM-lite), chaining the
  /// simulated merge work onto `*clock`.
  Result<DnContext*> OpenContext(int dn, SimTime* clock);
  /// OpenContext chained on this transaction's serial clock.
  Result<DnContext*> Touch(int dn);
  txn::VisibilityChecker CheckerFor(int dn, const DnContext& ctx) const;
  Status CommitSingleShard();
  Status CommitTwoPhase();

  Cluster* cluster_;
  TxnScope scope_;
  txn::Gxid gxid_ = txn::kNoGxid;
  std::optional<txn::Snapshot> global_snapshot_;
  std::unordered_map<int, DnContext> dns_;
  SimTime now_ = 0;
  bool finished_ = false;
  bool committed_ = false;
  int upgrades_ = 0;
  int downgrades_ = 0;
};

/// \brief The cluster: GTM + N data nodes + routing + simulated resources.
class Cluster {
 public:
  Cluster(int num_dns, Protocol protocol, LatencyModel latency = LatencyModel{});

  /// Creates `name` on every DN; rows are hash-sharded by their key.
  Status CreateTable(const std::string& name, const sql::Schema& schema);

  /// Builds a columnar delta-store copy of `name` on every DN (see
  /// storage/delta_store.h): universally visible versions seal into
  /// clustered chunks, everything newer lands in a row-format delta tail
  /// that the heap's change listener keeps current from then on. Scans
  /// union sealed kernels with the tail, so the copy never goes stale —
  /// there is no freshness fallback. Re-registering rebuilds from scratch.
  Status RegisterColumnar(const std::string& name);
  /// Synchronously force-merges every shard of `name` — folds the delta
  /// tail into sealed chunks up to the current visibility horizons — and
  /// returns how many shards changed (counted in the columnar.refreshes
  /// metric). NotFound when no columnar copy is registered. With auto
  /// merge on, background merges already bound tail growth; this is the
  /// deterministic "make the tail short now" hook.
  Result<size_t> RefreshColumnar(const std::string& name);

  // --- Delta-merge policy (see storage/delta_store.h) ------------------------
  /// Tail size at which a write schedules a background merge of that shard
  /// on the shared thread pool.
  void set_delta_merge_threshold(size_t rows) { delta_merge_threshold_ = rows; }
  size_t delta_merge_threshold() const { return delta_merge_threshold_; }
  /// When false, writes never schedule background merges (tails grow until
  /// RefreshColumnar is called) — the knob the HTAP bench sweeps.
  void set_auto_merge(bool v) { auto_merge_ = v; }
  bool auto_merge() const { return auto_merge_; }
  /// Write-path hook: called after a successful Insert/Update/Delete on a
  /// columnar table's shard. Schedules at most one background merge task
  /// per shard at a time once the tail passes the threshold.
  void NoteColumnarWrite(int dn, const std::string& table, SimTime now);
  /// Blocks until every scheduled background merge has completed (tests,
  /// benches, and the destructor).
  void WaitForMerges();

  ~Cluster();
  /// True when `name` has a columnar copy registered (on DN 0, which implies
  /// all DNs — registration is all-or-nothing).
  bool IsColumnar(const std::string& name) const;
  void DropColumnar(const std::string& name);

  // --- Secondary indexes (storage/secondary_index.h) -------------------------
  /// Builds a secondary index on `table`(`column`) on every DN: each shard
  /// attaches a heap-change listener (atomic dump + install, the same
  /// contract as the columnar delta store) so postings stay transactionally
  /// current from then on. `ordered` selects the std::map variant that also
  /// serves range probes. Fails with AlreadyExists when the (table, column)
  /// pair is already indexed.
  Status CreateIndex(const std::string& table, const std::string& column,
                     bool ordered = false);
  /// Detaches and drops every index on `table` on every DN.
  void DropIndexes(const std::string& table);
  /// True when (table, column) is indexed (checked on DN 0 — index DDL is
  /// all-or-nothing across DNs, like columnar registration).
  bool HasIndex(const std::string& table, const std::string& column) const;
  /// The index shard serving (table, column-position) on `dn`, or nullptr.
  std::shared_ptr<storage::SecondaryIndex> IndexOn(int dn,
                                                   const std::string& table,
                                                   size_t col) const;

  /// Starts a transaction whose simulated clock begins at `start_time`
  /// (closed-loop clients pass their own current time).
  Txn Begin(TxnScope scope, SimTime start_time = 0);

  /// Group commit: commits every transaction in `txns` through ONE batched
  /// 2PC round per data node departing at `flush_time` — one prepare message
  /// per DN carrying every participant record, one GTM round trip carrying
  /// every global commit, one apply message per DN that stages the whole
  /// window into the commit log and forces it with a single log write.
  /// Visibility order matches the per-commit path (GTM-lite: GTM first,
  /// then DNs; baseline: DNs first, then GTM dequeue), and the applied
  /// state is bit-identical to committing each transaction individually.
  /// Transactions whose prepare fails are aborted; the rest proceed.
  std::vector<GroupCommitOutcome> CommitBatch(const std::vector<Txn*>& txns,
                                              SimTime flush_time);

  int ShardFor(const sql::Value& key) const {
    if (sharder_) return sharder_(key) % static_cast<int>(dns_.size());
    return static_cast<int>(key.Hash() % dns_.size());
  }

  /// Overrides hash sharding with an application sharding function (the
  /// paper assumes databases "designed with application sharding in mind",
  /// e.g. TPC-C keys co-located by warehouse).
  void set_sharder(std::function<int(const sql::Value&)> sharder) {
    sharder_ = std::move(sharder);
  }

  int num_dns() const { return static_cast<int>(dns_.size()); }
  Protocol protocol() const { return protocol_; }
  DataNode* dn(int i) { return dns_[i].get(); }
  txn::Gtm& gtm() { return gtm_; }
  const LatencyModel& latency() const { return latency_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// When true, multi-shard commit confirmations queue on DNs instead of
  /// applying immediately — opens the Anomaly1 window for tests.
  void set_delay_commit_confirmations(bool v) { delay_commit_confirm_ = v; }
  bool delay_commit_confirmations() const { return delay_commit_confirm_; }

  // --- High availability (paper: "smart replication scheme") ----------------
  /// Turns on primary/backup replication: DN i's shard is backed up on DN
  /// (i+1) % N. Requires at least 2 DNs. Committed write sets ship to the
  /// backup synchronously at commit time.
  Status EnableReplication();
  bool replication_enabled() const { return replication_enabled_; }

  /// Simulates a data-node crash: the node stops serving, its backup
  /// promotes (shadow rows materialize into the backup's MVCC tables under
  /// a recovery transaction) and routing fails over. In-flight transactions
  /// on the failed node are lost; committed ones survive.
  Status FailDn(int dn);
  bool IsDown(int dn) const { return down_.size() > static_cast<size_t>(dn) && down_[dn]; }
  /// The node currently serving a shard (backup after failover).
  int EffectiveDn(int shard) const;
  int BackupOf(int dn) const { return (dn + 1) % static_cast<int>(dns_.size()); }
  const ShadowShard& shadow(int primary) const { return shadows_[primary]; }
  /// Applies one committed record to `primary`'s backup shadow.
  void ShipToBackup(int primary, const ReplicationRecord& record);

  /// 2PC recovery sweep (run after a coordinator failure): every in-doubt
  /// prepared transaction on every DN consults the GTM for the global
  /// outcome. Returns the number of transactions resolved.
  int RecoverInDoubtTransactions();

  /// Background garbage collection: vacuums dead tuple versions on every
  /// DN below that DN's local visibility horizon (no open local snapshot
  /// can still see them). Returns versions removed across the cluster.
  size_t Vacuum();

  // --- Simulated-resource charging (used by Txn) -----------------------------
  /// One GTM round trip arriving at `arrival`; returns completion time.
  SimTime ChargeGtm(SimTime arrival);
  /// One DN statement round trip.
  SimTime ChargeDnStmt(int dn, SimTime arrival);
  /// One DN prepare/commit/abort message round trip.
  SimTime ChargeDnCommit(int dn, SimTime arrival);
  /// One batched prepare/commit round trip carrying `records` transaction
  /// records: the first record costs dn_commit_service_us, each further one
  /// the marginal dn_batch_record_service_us, plus one log_write_service_us
  /// when `durable` (the whole batch shares a single log force).
  SimTime ChargeDnCommitBatch(int dn, SimTime arrival, size_t records,
                              bool durable);
  /// One columnar partial-scan round trip: fixed statement setup plus a
  /// per-chunk term for chunks actually scanned (zone-map-pruned chunks are
  /// free, so pruning is visible in sim_latency_us) plus a per-256-record
  /// term for delta-tail rows examined by the unioned row-path pass.
  SimTime ChargeDnColumnarScan(int dn, SimTime arrival, size_t chunks_scanned,
                               size_t delta_rows = 0);
  /// DN-internal merge work: per-256-record folding cost, charged on the
  /// DN's serialized resource but without network hops (no CN round trip).
  SimTime ChargeDnMerge(int dn, SimTime arrival, size_t records);
  /// One index-probe round trip: fixed probe setup (bucket lookup +
  /// visibility checks) plus a per-returned-row term — the point-lookup
  /// fast path never pays the full scan's per-block cost. Bumps the
  /// index.lookups / index.rows_returned counters.
  SimTime ChargeDnIndexProbe(int dn, SimTime arrival, size_t rows_returned);
  /// One full-shard row-path scan round trip: statement setup plus a
  /// per-256-row examination term, so scan cost scales with shard size the
  /// way columnar scans already do (and index probes visibly do not).
  SimTime ChargeDnRowScan(int dn, SimTime arrival, size_t rows_examined);

  void ResetSimTime() { scheduler_.Reset(); }

  SimScheduler& scheduler() { return scheduler_; }
  int gtm_resource() const { return gtm_resource_; }
  int dn_resource(int dn) const { return dn_resources_[dn]; }

 private:
  friend class Txn;

  /// Merges one shard's delta tail against the current visibility horizons,
  /// charging the DN and publishing metrics when anything changed.
  storage::DeltaShard::MergeResult RunMerge(
      int dn, const std::shared_ptr<storage::DeltaShard>& shard,
      const std::string& name, SimTime arrival);

  Protocol protocol_;
  LatencyModel latency_;
  txn::Gtm gtm_;
  std::vector<std::unique_ptr<DataNode>> dns_;
  SimScheduler scheduler_;
  int gtm_resource_;
  std::vector<int> dn_resources_;
  MetricsRegistry metrics_;
  bool delay_commit_confirm_ = false;
  std::function<int(const sql::Value&)> sharder_;
  std::atomic<int> begins_since_maintenance_{0};
  /// Bumps index.maintenance_ops once per index on `table` — called by the
  /// Txn write paths after a successful heap mutation (the listener already
  /// applied the change; this is the metrics mirror).
  void NoteIndexWrite(const std::string& table);

  bool replication_enabled_ = false;
  std::set<std::string> columnar_tables_;
  /// table → number of indexes; mirrors DN-side registries so the write
  /// path can bump maintenance metrics without a per-write DN lookup.
  /// Guarded by indexed_tables_mu_: DDL mutates it while writers read it.
  mutable std::mutex indexed_tables_mu_;
  std::unordered_map<std::string, int> indexed_tables_;
  size_t delta_merge_threshold_ = 4096;
  bool auto_merge_ = true;
  std::mutex merge_wait_mu_;
  std::condition_variable merge_cv_;
  int merges_inflight_ = 0;  // guarded by merge_wait_mu_
  std::vector<bool> down_;
  std::vector<ShadowShard> shadows_;  // indexed by primary DN
};

}  // namespace ofi::cluster
