/// \file data_node.h
/// \brief One shard server: hosts MVCC tables and a local transaction
/// manager, and models the commit-confirmation queue whose delivery delay
/// creates the Anomaly1 window.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/column_store.h"
#include "storage/delta_store.h"
#include "storage/mvcc_table.h"
#include "storage/secondary_index.h"
#include "txn/gtm.h"
#include "txn/local_txn_manager.h"

namespace ofi::cluster {

/// \brief A data node (DN).
class DataNode {
 public:
  explicit DataNode(int id) : id_(id) {}

  int id() const { return id_; }

  /// Creates this DN's shard of `name`.
  Status CreateTable(const std::string& name, const sql::Schema& schema);

  Result<storage::MvccTable*> GetTable(const std::string& name);

  txn::LocalTxnManager& txn_mgr() { return txn_mgr_; }
  const txn::LocalTxnManager& txn_mgr() const { return txn_mgr_; }

  /// Registers an externally allocated xid (baseline protocol: the GXID is
  /// used directly as this DN's xid).
  void BeginExternal(txn::Xid xid);

  // --- Commit-confirmation queue (Anomaly1 window) --------------------------
  /// Queues the commit of a prepared transaction instead of applying it.
  void EnqueuePendingCommit(txn::Xid xid, txn::Gxid gxid) {
    pending_commits_.push_back({xid, gxid});
  }
  /// Forces delivery of the pending commit for `xid` (the UPGRADE wait).
  /// Returns the final state (kCommitted, or current state if not pending).
  txn::TxnState FinishPendingCommit(txn::Xid xid);
  /// Delivers every queued confirmation in order.
  void DeliverAllPendingCommits();
  size_t pending_commit_count() const { return pending_commits_.size(); }

  const std::unordered_map<std::string, std::unique_ptr<storage::MvccTable>>&
  tables() const {
    return tables_;
  }
  std::unordered_map<std::string, std::unique_ptr<storage::MvccTable>>&
  mutable_tables() {
    return tables_;
  }

  /// 2PC in-doubt recovery: every prepared transaction asks the GTM for the
  /// global outcome — commit if globally committed, roll back if globally
  /// aborted, stay prepared while the global transaction is still live.
  /// Returns the number of transactions resolved.
  int RecoverInDoubt(const txn::Gtm& gtm);

  // --- Columnar side-store (OLAP scan path, see cluster/mpp_query) ----------
  /// One table's columnar copy on this DN: a storage::DeltaShard of sealed
  /// chunks plus the row-format delta tail the heap's change listener feeds
  /// (see storage/delta_store.h). Scans union sealed kernels with the tail,
  /// so the columnar path never goes stale and never falls back for
  /// freshness. Registration wires the heap listener; DropColumnar detaches
  /// it before releasing the shard.
  void RegisterColumnar(const std::string& name,
                        std::shared_ptr<storage::DeltaShard> shard,
                        storage::ListenerId listener) {
    columnar_[name] = ColumnarEntry{std::move(shard), listener};
  }
  /// nullptr when the table has no columnar copy on this DN. Returned by
  /// value: the shard outlives a scan even if dropped mid-flight.
  std::shared_ptr<storage::DeltaShard> GetColumnarShard(
      const std::string& name) const {
    auto it = columnar_.find(name);
    return it == columnar_.end() ? nullptr : it->second.shard;
  }
  void DropColumnar(const std::string& name) {
    auto it = columnar_.find(name);
    if (it == columnar_.end()) return;
    auto tit = tables_.find(name);
    if (tit != tables_.end()) {
      tit->second->DetachChangeListener(it->second.listener);
    }
    columnar_.erase(it);
  }

  // --- Secondary indexes (OLTP point-lookup path, storage/secondary_index) --
  /// Registers this DN's shard of an index; the heap listener that feeds it
  /// is detached by DropIndex. At most one index per (table, column).
  /// The registry mutex only guards the map — index objects are returned by
  /// shared_ptr so a probe outlives a concurrent drop.
  void RegisterIndex(const std::string& table,
                     std::shared_ptr<storage::SecondaryIndex> index,
                     storage::ListenerId listener) {
    std::lock_guard<std::mutex> lock(indexes_mu_);
    indexes_[table].push_back(IndexEntry{std::move(index), listener});
  }
  /// The index on `table` whose column resolves to position `col`, or
  /// nullptr.
  std::shared_ptr<storage::SecondaryIndex> GetIndex(const std::string& table,
                                                    size_t col) const {
    std::lock_guard<std::mutex> lock(indexes_mu_);
    auto it = indexes_.find(table);
    if (it == indexes_.end()) return nullptr;
    for (const auto& e : it->second) {
      if (e.index->column_index() == col) return e.index;
    }
    return nullptr;
  }
  /// Any index on `table` (first registered) — every index carries covering
  /// heap-key postings, so the Txn::Read fast path can use whichever exists.
  std::shared_ptr<storage::SecondaryIndex> GetAnyIndex(
      const std::string& table) const {
    std::lock_guard<std::mutex> lock(indexes_mu_);
    auto it = indexes_.find(table);
    return it == indexes_.end() || it->second.empty() ? nullptr
                                                      : it->second.front().index;
  }
  std::vector<std::shared_ptr<storage::SecondaryIndex>> Indexes(
      const std::string& table) const {
    std::vector<std::shared_ptr<storage::SecondaryIndex>> out;
    std::lock_guard<std::mutex> lock(indexes_mu_);
    auto it = indexes_.find(table);
    if (it != indexes_.end()) {
      for (const auto& e : it->second) out.push_back(e.index);
    }
    return out;
  }
  void DropIndexes(const std::string& table) {
    // Detach outside the registry lock: DetachChangeListener takes the heap
    // mutex, and heap change notifications may race with registry reads.
    std::vector<IndexEntry> dropped;
    {
      std::lock_guard<std::mutex> lock(indexes_mu_);
      auto it = indexes_.find(table);
      if (it == indexes_.end()) return;
      dropped = std::move(it->second);
      indexes_.erase(it);
    }
    auto tit = tables_.find(table);
    if (tit != tables_.end()) {
      for (const auto& e : dropped) {
        tit->second->DetachChangeListener(e.listener);
      }
    }
  }

 private:
  struct PendingCommit {
    txn::Xid xid;
    txn::Gxid gxid;
  };

  struct ColumnarEntry {
    std::shared_ptr<storage::DeltaShard> shard;
    storage::ListenerId listener = 0;
  };
  struct IndexEntry {
    std::shared_ptr<storage::SecondaryIndex> index;
    storage::ListenerId listener = 0;
  };

  int id_;
  txn::LocalTxnManager txn_mgr_;
  std::unordered_map<std::string, std::unique_ptr<storage::MvccTable>> tables_;
  std::unordered_map<std::string, ColumnarEntry> columnar_;
  mutable std::mutex indexes_mu_;
  std::unordered_map<std::string, std::vector<IndexEntry>> indexes_;
  std::deque<PendingCommit> pending_commits_;
};

}  // namespace ofi::cluster
