#include "cluster/tpcc_workload.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema MoneySchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"ytd", TypeId::kInt64, ""}});
}
Schema CustomerSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"balance", TypeId::kInt64, ""},
                 Column{"payments", TypeId::kInt64, ""}});
}
Schema StockSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"quantity", TypeId::kInt64, ""}});
}
Schema OrderSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"customer", TypeId::kInt64, ""},
                 Column{"lines", TypeId::kInt64, ""},
                 Column{"delivered", TypeId::kInt64, ""}});
}

}  // namespace

Status LoadTpcc(Cluster* cluster, const TpccConfig& config) {
  cluster->set_sharder([](const Value& key) {
    return static_cast<int>(tpcc::WarehouseOf(key.AsInt()));
  });
  OFI_RETURN_NOT_OK(cluster->CreateTable("warehouse", MoneySchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("district", MoneySchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("customer", CustomerSchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("stock", StockSchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("orders", OrderSchema()));

  int total_warehouses = config.warehouses_per_dn * cluster->num_dns();
  for (int64_t w = 0; w < total_warehouses; ++w) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    Value wk(tpcc::WarehouseKey(w));
    OFI_RETURN_NOT_OK(t.Insert("warehouse", wk, {wk, Value(0)}));
    for (int64_t d = 0; d < 10; ++d) {
      Value dk(tpcc::DistrictKey(w, d));
      OFI_RETURN_NOT_OK(t.Insert("district", dk, {dk, Value(0)}));
    }
    for (int64_t c = 0; c < config.customers_per_warehouse; ++c) {
      Value ck(tpcc::CustomerKey(w, c));
      OFI_RETURN_NOT_OK(t.Insert("customer", ck, {ck, Value(1000), Value(0)}));
    }
    for (int64_t i = 0; i < config.stock_per_warehouse; ++i) {
      Value sk(tpcc::StockKey(w, i));
      OFI_RETURN_NOT_OK(t.Insert("stock", sk, {sk, Value(100)}));
    }
    OFI_RETURN_NOT_OK(t.Commit());
  }
  cluster->ResetSimTime();
  return Status::OK();
}

namespace {

/// Per-client state of the closed loop.
struct Client {
  int id = 0;
  int64_t home_warehouse = 0;
  SimTime now = 0;
  Rng rng;
  int64_t next_order_seq = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  std::deque<sql::Value> undelivered;  // this client's open orders
};

/// The warehouse sharding means "another shard" = a warehouse on another DN.
int64_t RemoteWarehouse(const Client& c, Rng* rng, int warehouses_per_dn,
                        int num_dns) {
  if (num_dns <= 1) {
    // Degenerate 1-node cluster: any other warehouse (still one shard; the
    // transaction still runs the multi-shard protocol, as declared).
    int total = warehouses_per_dn;
    if (total <= 1) return c.home_warehouse;
    int64_t w = rng->Uniform(0, total - 1);
    return w == c.home_warehouse ? (w + 1) % total : w;
  }
  int home_dn = static_cast<int>(c.home_warehouse) % num_dns;
  int other_dn = static_cast<int>(rng->Uniform(0, num_dns - 2));
  if (other_dn >= home_dn) ++other_dn;
  int64_t slot = rng->Uniform(0, warehouses_per_dn - 1);
  return slot * num_dns + other_dn;
}

/// Payment: +ytd on warehouse and district, +balance on a customer.
Status RunPayment(Cluster* cluster, Client* c, const TpccConfig& cfg,
                  bool multi_shard, SimTime* out_now) {
  int64_t w = c->home_warehouse;
  int64_t cust_w =
      multi_shard
          ? RemoteWarehouse(*c, &c->rng, cfg.warehouses_per_dn, cluster->num_dns())
          : w;
  int64_t cust =
      c->rng.NURand(1023, 0, cfg.customers_per_warehouse - 1) %
      cfg.customers_per_warehouse;
  Txn t = cluster->Begin(multi_shard ? TxnScope::kMultiShard
                                     : TxnScope::kSingleShard,
                         c->now);
  auto run = [&]() -> Status {
    Value wk(tpcc::WarehouseKey(w));
    OFI_ASSIGN_OR_RETURN(Row wrow, t.Read("warehouse", wk));
    wrow[1] = Value(wrow[1].AsInt() + 10);
    OFI_RETURN_NOT_OK(t.Update("warehouse", wk, wrow));

    Value dk(tpcc::DistrictKey(w, c->rng.Uniform(0, 9)));
    OFI_ASSIGN_OR_RETURN(Row drow, t.Read("district", dk));
    drow[1] = Value(drow[1].AsInt() + 10);
    OFI_RETURN_NOT_OK(t.Update("district", dk, drow));

    Value ck(tpcc::CustomerKey(cust_w, cust));
    OFI_ASSIGN_OR_RETURN(Row crow, t.Read("customer", ck));
    crow[1] = Value(crow[1].AsInt() - 10);
    crow[2] = Value(crow[2].AsInt() + 1);
    OFI_RETURN_NOT_OK(t.Update("customer", ck, crow));
    return t.Commit();
  };
  Status st = run();
  if (!st.ok()) (void)t.Abort();
  *out_now = t.now();
  return st;
}

/// NewOrder: read customer, bump district, insert an order, decrement stock.
Status RunNewOrder(Cluster* cluster, Client* c, const TpccConfig& cfg,
                   bool multi_shard, SimTime* out_now) {
  int64_t w = c->home_warehouse;
  Txn t = cluster->Begin(multi_shard ? TxnScope::kMultiShard
                                     : TxnScope::kSingleShard,
                         c->now);
  auto run = [&]() -> Status {
    int64_t cust = c->rng.NURand(1023, 0, cfg.customers_per_warehouse - 1) %
                   cfg.customers_per_warehouse;
    Value ck(tpcc::CustomerKey(w, cust));
    OFI_ASSIGN_OR_RETURN(Row crow, t.Read("customer", ck));
    (void)crow;

    Value dk(tpcc::DistrictKey(w, c->rng.Uniform(0, 9)));
    OFI_ASSIGN_OR_RETURN(Row drow, t.Read("district", dk));
    drow[1] = Value(drow[1].AsInt() + 1);
    OFI_RETURN_NOT_OK(t.Update("district", dk, drow));

    int64_t lines = c->rng.Uniform(2, 4);
    // Order sequence stays inside the warehouse's key range so the order
    // row co-locates with its warehouse (client id keeps writers disjoint).
    int64_t seq = (c->next_order_seq++ * 1024 + (c->id & 1023)) % 400'000;
    Value ok(tpcc::OrderKey(w, seq));
    OFI_RETURN_NOT_OK(
        t.Insert("orders", ok, {ok, Value(cust), Value(lines), Value(0)}));
    c->undelivered.push_back(ok);

    for (int64_t line = 0; line < lines; ++line) {
      int64_t item_w =
          (multi_shard && line == 0)
              ? RemoteWarehouse(*c, &c->rng, cfg.warehouses_per_dn,
                                cluster->num_dns())
              : w;
      Value sk(tpcc::StockKey(item_w,
                              c->rng.Uniform(0, cfg.stock_per_warehouse - 1)));
      OFI_ASSIGN_OR_RETURN(Row srow, t.Read("stock", sk));
      srow[1] = Value(srow[1].AsInt() <= 10 ? 91 : srow[1].AsInt() - 1);
      OFI_RETURN_NOT_OK(t.Update("stock", sk, srow));
    }
    return t.Commit();
  };
  Status st = run();
  if (!st.ok()) (void)t.Abort();
  *out_now = t.now();
  return st;
}

/// Delivery: marks up to 10 of this client's oldest open orders delivered
/// and credits the customers (the TPC-C batch transaction).
Status RunDelivery(Cluster* cluster, Client* c, const TpccConfig& cfg,
                   SimTime* out_now) {
  int64_t w = c->home_warehouse;
  Txn t = cluster->Begin(TxnScope::kSingleShard, c->now);
  size_t batch = std::min<size_t>(10, c->undelivered.size());
  auto run = [&]() -> Status {
    int64_t credited = 0;
    for (size_t i = 0; i < batch; ++i) {
      const sql::Value& ok = c->undelivered[i];
      OFI_ASSIGN_OR_RETURN(Row orow, t.Read("orders", ok));
      orow[3] = Value(1);
      OFI_RETURN_NOT_OK(t.Update("orders", ok, orow));
      Value ck(tpcc::CustomerKey(w, orow[1].AsInt()));
      OFI_ASSIGN_OR_RETURN(Row crow, t.Read("customer", ck));
      crow[1] = Value(crow[1].AsInt() + 1);
      OFI_RETURN_NOT_OK(t.Update("customer", ck, crow));
      ++credited;
    }
    // The credit comes out of the warehouse's collected ytd: money moves,
    // it is never minted (the conservation invariant the tests check).
    if (credited > 0) {
      Value wk(tpcc::WarehouseKey(w));
      OFI_ASSIGN_OR_RETURN(Row wrow, t.Read("warehouse", wk));
      wrow[1] = Value(wrow[1].AsInt() - credited);
      OFI_RETURN_NOT_OK(t.Update("warehouse", wk, wrow));
    }
    return t.Commit();
  };
  Status st = run();
  if (st.ok()) {
    c->undelivered.erase(c->undelivered.begin(),
                         c->undelivered.begin() + static_cast<ptrdiff_t>(batch));
  } else {
    (void)t.Abort();
  }
  *out_now = t.now();
  return st;
}

/// StockLevel: read-only — count low-stock items behind a district
/// (the TPC-C consistency-heavy read).
Status RunStockLevel(Cluster* cluster, Client* c, const TpccConfig& cfg,
                     SimTime* out_now) {
  int64_t w = c->home_warehouse;
  Txn t = cluster->Begin(TxnScope::kSingleShard, c->now);
  auto run = [&]() -> Status {
    OFI_RETURN_NOT_OK(
        t.Read("district", Value(tpcc::DistrictKey(w, c->rng.Uniform(0, 9))))
            .status());
    int low = 0;
    for (int i = 0; i < 20; ++i) {
      Value sk(tpcc::StockKey(w, c->rng.Uniform(0, cfg.stock_per_warehouse - 1)));
      OFI_ASSIGN_OR_RETURN(Row srow, t.Read("stock", sk));
      if (srow[1].AsInt() < 15) ++low;
    }
    (void)low;
    return t.Commit();
  };
  Status st = run();
  if (!st.ok()) (void)t.Abort();
  *out_now = t.now();
  return st;
}

/// OrderStatus: read-only customer + district probe.
Status RunOrderStatus(Cluster* cluster, Client* c, const TpccConfig& cfg,
                      SimTime* out_now) {
  int64_t w = c->home_warehouse;
  Txn t = cluster->Begin(TxnScope::kSingleShard, c->now);
  auto run = [&]() -> Status {
    int64_t cust = c->rng.NURand(1023, 0, cfg.customers_per_warehouse - 1) %
                   cfg.customers_per_warehouse;
    OFI_RETURN_NOT_OK(
        t.Read("customer", Value(tpcc::CustomerKey(w, cust))).status());
    OFI_RETURN_NOT_OK(
        t.Read("district", Value(tpcc::DistrictKey(w, c->rng.Uniform(0, 9))))
            .status());
    return t.Commit();
  };
  Status st = run();
  if (!st.ok()) (void)t.Abort();
  *out_now = t.now();
  return st;
}

}  // namespace

TpccResult RunTpcc(Cluster* cluster, const TpccConfig& config) {
  int num_clients = config.clients_per_dn * cluster->num_dns();
  int total_warehouses = config.warehouses_per_dn * cluster->num_dns();
  std::vector<Client> clients(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    clients[i].id = i;
    // Spread clients over warehouses; warehouse w lives on DN (w % num_dns),
    // so consecutive clients land on different DNs.
    clients[i].home_warehouse = i % total_warehouses;
    clients[i].rng = Rng(config.seed * 7919 + i);
  }

  uint64_t gtm_before = cluster->gtm().requests_served();
  int64_t upgrades_before = cluster->metrics().Get("merge.upgrades");
  int64_t downgrades_before = cluster->metrics().Get("merge.downgrades");

  // Smallest-sim-time-first closed loop.
  auto cmp = [&](int a, int b) { return clients[a].now > clients[b].now; };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int i = 0; i < num_clients; ++i) heap.push(i);

  TpccResult result;
  uint64_t txns_run = 0;
  while (!heap.empty()) {
    int ci = heap.top();
    heap.pop();
    Client& c = clients[ci];
    if (c.now >= config.duration_us) continue;  // this client is done
    // The heap top is the global minimum arrival: older busy intervals can
    // be dropped from the simulated resources.
    if (++txns_run % 512 == 0) cluster->scheduler().Trim(c.now);

    bool multi_shard = c.rng.Chance(config.multi_shard_fraction);
    double mix = c.rng.NextDouble();
    SimTime now_after = c.now;
    Status st;
    if (mix < 0.44) {
      st = RunNewOrder(cluster, &c, config, multi_shard, &now_after);
    } else if (mix < 0.86) {
      st = RunPayment(cluster, &c, config, multi_shard, &now_after);
    } else if (mix < 0.90) {
      st = RunOrderStatus(cluster, &c, config, &now_after);
    } else if (mix < 0.95 && !c.undelivered.empty()) {
      st = RunDelivery(cluster, &c, config, &now_after);
    } else {
      st = RunStockLevel(cluster, &c, config, &now_after);
    }
    c.now = std::max(now_after, c.now + 1);
    if (st.ok()) {
      ++c.committed;
    } else {
      ++c.aborted;
    }
    heap.push(ci);
  }

  for (const Client& c : clients) {
    result.committed += c.committed;
    result.aborted += c.aborted;
  }
  result.throughput_tps = static_cast<double>(result.committed) /
                          (static_cast<double>(config.duration_us) / 1e6);
  result.gtm_requests = cluster->gtm().requests_served() - gtm_before;
  result.upgrades = cluster->metrics().Get("merge.upgrades") - upgrades_before;
  result.downgrades =
      cluster->metrics().Get("merge.downgrades") - downgrades_before;
  return result;
}

}  // namespace ofi::cluster
