#include "cluster/tpcc_workload.h"

#include "cluster/traffic/traffic.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema MoneySchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"ytd", TypeId::kInt64, ""}});
}
Schema CustomerSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"balance", TypeId::kInt64, ""},
                 Column{"payments", TypeId::kInt64, ""}});
}
Schema StockSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"quantity", TypeId::kInt64, ""}});
}
Schema OrderSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"customer", TypeId::kInt64, ""},
                 Column{"lines", TypeId::kInt64, ""},
                 Column{"delivered", TypeId::kInt64, ""}});
}

}  // namespace

Status LoadTpcc(Cluster* cluster, const TpccConfig& config) {
  if (config.warehouses_per_dn <= 0)
    return Status::InvalidArgument("tpcc: warehouses_per_dn must be positive");
  if (config.clients_per_dn <= 0)
    return Status::InvalidArgument("tpcc: clients_per_dn must be positive");
  if (config.duration_us <= 0)
    return Status::InvalidArgument("tpcc: duration_us must be positive");
  if (config.customers_per_warehouse <= 0 || config.stock_per_warehouse <= 0)
    return Status::InvalidArgument("tpcc: per-warehouse sizes must be positive");
  if (config.multi_shard_fraction < 0.0 || config.multi_shard_fraction > 1.0)
    return Status::InvalidArgument("tpcc: multi_shard_fraction must be in [0, 1]");

  cluster->set_sharder([](const Value& key) {
    return static_cast<int>(tpcc::WarehouseOf(key.AsInt()));
  });
  OFI_RETURN_NOT_OK(cluster->CreateTable("warehouse", MoneySchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("district", MoneySchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("customer", CustomerSchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("stock", StockSchema()));
  OFI_RETURN_NOT_OK(cluster->CreateTable("orders", OrderSchema()));
  // Hash indexes on every key column: session point reads go through the
  // covering-posting probe (Txn::Read fast path) instead of a heap lookup
  // statement, cutting per-statement simulated DN service.
  for (const char* t : {"warehouse", "district", "customer", "stock", "orders"}) {
    OFI_RETURN_NOT_OK(cluster->CreateIndex(t, "k"));
  }

  int total_warehouses = config.warehouses_per_dn * cluster->num_dns();
  for (int64_t w = 0; w < total_warehouses; ++w) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    Value wk(tpcc::WarehouseKey(w));
    OFI_RETURN_NOT_OK(t.Insert("warehouse", wk, {wk, Value(0)}));
    for (int64_t d = 0; d < 10; ++d) {
      Value dk(tpcc::DistrictKey(w, d));
      OFI_RETURN_NOT_OK(t.Insert("district", dk, {dk, Value(0)}));
    }
    for (int64_t c = 0; c < config.customers_per_warehouse; ++c) {
      Value ck(tpcc::CustomerKey(w, c));
      OFI_RETURN_NOT_OK(t.Insert("customer", ck, {ck, Value(1000), Value(0)}));
    }
    for (int64_t i = 0; i < config.stock_per_warehouse; ++i) {
      Value sk(tpcc::StockKey(w, i));
      OFI_RETURN_NOT_OK(t.Insert("stock", sk, {sk, Value(100)}));
    }
    OFI_RETURN_NOT_OK(t.Commit());
  }
  cluster->ResetSimTime();
  return Status::OK();
}

TpccResult RunTpcc(Cluster* cluster, const TpccConfig& config) {
  traffic::TrafficOptions options;
  options.sessions = config.clients_per_dn * cluster->num_dns();
  options.think_time_us = 0;
  // Group commit and admission control stay off: this entry point keeps the
  // legacy closed-loop semantics (every commit forces the log on its own).
  options.group_commit.enabled = false;
  options.admission.max_in_flight = 0;

  TpccResult result;
  Result<traffic::TrafficResult> run =
      traffic::RunTraffic(cluster, config, options);
  if (!run.ok()) return result;
  result.committed = run->committed;
  result.aborted = run->aborted;
  result.throughput_tps = run->throughput_tps;
  result.latency_p50_us = run->latency_p50_us;
  result.latency_p95_us = run->latency_p95_us;
  result.latency_p99_us = run->latency_p99_us;
  result.gtm_requests = run->gtm_requests;
  result.upgrades = run->upgrades;
  result.downgrades = run->downgrades;
  return result;
}

}  // namespace ofi::cluster
