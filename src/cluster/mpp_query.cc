#include "cluster/mpp_query.h"

#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::AggSpec;
using sql::Expr;
using sql::Row;
using sql::Table;

/// The partial aggregates one requested aggregate decomposes into, and how
/// the final stage merges them.
struct PartialPlan {
  std::vector<AggSpec> partial;  // computed per shard
  // Final-stage spec over the unioned partials; AVG needs a post-division.
  std::vector<AggSpec> final_specs;
  bool is_avg = false;
  std::string sum_name, count_name;  // for AVG
};

PartialPlan DecomposeAgg(const DistributedAgg& agg) {
  PartialPlan plan;
  switch (agg.func) {
    case AggFunc::kCount:
      plan.partial = {AggSpec{AggFunc::kCount,
                              agg.column.empty() ? nullptr
                                                 : Expr::ColumnRef(agg.column),
                              agg.name}};
      // Final: COUNT partials SUM together.
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      plan.partial = {AggSpec{agg.func, Expr::ColumnRef(agg.column), agg.name}};
      plan.final_specs = {
          AggSpec{agg.func == AggFunc::kSum ? AggFunc::kSum : agg.func,
                  Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kAvg:
      // AVG decomposes into (SUM, COUNT); the CN divides at the end.
      plan.is_avg = true;
      plan.sum_name = agg.name + "$sum";
      plan.count_name = agg.name + "$cnt";
      plan.partial = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.column), plan.sum_name},
          AggSpec{AggFunc::kCount, Expr::ColumnRef(agg.column), plan.count_name}};
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.sum_name), plan.sum_name},
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.count_name),
                  plan.count_name}};
      break;
  }
  return plan;
}

size_t TableBytes(const Table& t) {
  size_t n = 0;
  for (const auto& row : t.rows()) n += sql::RowByteSize(row);
  return n;
}

}  // namespace

Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs) {
  DistributedResult out;

  std::vector<PartialPlan> plans;
  plans.reserve(aggs.size());
  for (const auto& a : aggs) plans.push_back(DecomposeAgg(a));

  // One consistent snapshot across every shard.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  // Scatter: per-shard partial aggregation.
  Table partial_union;
  bool first_shard = true;
  for (int dn = 0; dn < cluster->num_dns(); ++dn) {
    OFI_ASSIGN_OR_RETURN(storage::MvccTable * shard_table,
                         cluster->dn(dn)->GetTable(table));
    OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, reader.ScanShard(table, dn));
    out.naive_bytes += TableBytes(Table(shard_table->schema(), rows));

    sql::Catalog shard_catalog;
    shard_catalog.Register("shard",
                           Table(shard_table->schema(), std::move(rows)));
    sql::PlanPtr scan = sql::MakeScan("shard", filter);
    std::vector<AggSpec> partial_specs;
    for (const auto& p : plans) {
      partial_specs.insert(partial_specs.end(), p.partial.begin(),
                           p.partial.end());
    }
    sql::PlanPtr agg_plan = sql::MakeAggregate(scan, group_by, partial_specs);
    sql::Executor exec(&shard_catalog);
    OFI_ASSIGN_OR_RETURN(Table partial, exec.Execute(agg_plan));
    out.partial_bytes += TableBytes(partial);
    // Shipping the partial state costs one DN round trip.
    out.sim_latency_us = cluster->ChargeDnStmt(dn, out.sim_latency_us);

    if (first_shard) {
      partial_union = std::move(partial);
      first_shard = false;
    } else {
      for (auto& row : partial.mutable_rows()) {
        OFI_RETURN_NOT_OK(partial_union.Append(std::move(row)));
      }
    }
  }
  OFI_RETURN_NOT_OK(reader.Commit());

  // Gather: final aggregation over the partials at the CN.
  sql::Catalog cn_catalog;
  cn_catalog.Register("partials", std::move(partial_union));
  std::vector<AggSpec> final_specs;
  for (const auto& p : plans) {
    final_specs.insert(final_specs.end(), p.final_specs.begin(),
                       p.final_specs.end());
  }
  sql::PlanPtr final_plan =
      sql::MakeAggregate(sql::MakeScan("partials"), group_by, final_specs);

  // AVG post-processing: divide the merged sum by the merged count, and
  // project the outputs back to the requested names/order.
  std::vector<sql::ExprPtr> projections;
  std::vector<std::string> names;
  for (const auto& g : group_by) {
    projections.push_back(Expr::ColumnRef(g));
    std::string bare = g;
    auto dot = bare.rfind('.');
    if (dot != std::string::npos) bare = bare.substr(dot + 1);
    names.push_back(bare);
  }
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (plans[i].is_avg) {
      projections.push_back(Expr::Arith(sql::ArithOp::kDiv,
                                        Expr::ColumnRef(plans[i].sum_name),
                                        Expr::ColumnRef(plans[i].count_name)));
    } else {
      projections.push_back(Expr::ColumnRef(aggs[i].name));
    }
    names.push_back(aggs[i].name);
  }
  sql::PlanPtr projected =
      sql::MakeProject(final_plan, std::move(projections), std::move(names));
  sql::Executor cn_exec(&cn_catalog);
  OFI_ASSIGN_OR_RETURN(out.table, cn_exec.Execute(projected));
  return out;
}

}  // namespace ofi::cluster
