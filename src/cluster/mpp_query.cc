#include "cluster/mpp_query.h"

#include <algorithm>
#include <map>

#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::AggSpec;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Table;
using sql::TypeId;
using sql::Value;

/// The partial aggregates one requested aggregate decomposes into, and how
/// the final stage merges them.
struct PartialPlan {
  std::vector<AggSpec> partial;  // computed per shard
  // Final-stage spec over the unioned partials; AVG needs a post-division.
  std::vector<AggSpec> final_specs;
  bool is_avg = false;
  std::string sum_name, count_name;  // for AVG
};

PartialPlan DecomposeAgg(const DistributedAgg& agg) {
  PartialPlan plan;
  switch (agg.func) {
    case AggFunc::kCount:
      plan.partial = {AggSpec{AggFunc::kCount,
                              agg.column.empty() ? nullptr
                                                 : Expr::ColumnRef(agg.column),
                              agg.name}};
      // Final: COUNT partials SUM together.
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      plan.partial = {AggSpec{agg.func, Expr::ColumnRef(agg.column), agg.name}};
      plan.final_specs = {
          AggSpec{agg.func == AggFunc::kSum ? AggFunc::kSum : agg.func,
                  Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kAvg:
      // AVG decomposes into (SUM, COUNT); the CN divides at the end.
      plan.is_avg = true;
      plan.sum_name = agg.name + "$sum";
      plan.count_name = agg.name + "$cnt";
      plan.partial = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.column), plan.sum_name},
          AggSpec{AggFunc::kCount, Expr::ColumnRef(agg.column), plan.count_name}};
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.sum_name), plan.sum_name},
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.count_name),
                  plan.count_name}};
      break;
  }
  return plan;
}

size_t TableBytes(const Table& t) {
  size_t n = 0;
  for (const auto& row : t.rows()) n += sql::RowByteSize(row);
  return n;
}

std::string BareName(const std::string& qualified) {
  auto dot = qualified.rfind('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

/// Output column names for the group-by keys. A bare name is used only when
/// it stays unambiguous across every output column; `GROUP BY a.x, b.x`
/// keeps the qualified names (both stripping to `x` would collide in the
/// projected schema). Returns InvalidArgument if names collide even
/// qualified.
Result<std::vector<std::string>> GroupOutputNames(
    const std::vector<std::string>& group_by,
    const std::vector<DistributedAgg>& aggs) {
  std::map<std::string, int> bare_uses;
  for (const auto& g : group_by) ++bare_uses[BareName(g)];
  for (const auto& a : aggs) ++bare_uses[a.name];

  std::vector<std::string> names;
  names.reserve(group_by.size());
  for (const auto& g : group_by) {
    const std::string bare = BareName(g);
    names.push_back(bare_uses[bare] > 1 ? g : bare);
  }

  std::map<std::string, int> final_uses;
  for (const auto& n : names) ++final_uses[n];
  for (const auto& a : aggs) ++final_uses[a.name];
  for (const auto& [name, uses] : final_uses) {
    if (uses > 1) {
      return Status::InvalidArgument("ambiguous output column: " + name);
    }
  }
  return names;
}

/// One shard's scatter output, filled in by a pool worker.
struct ShardPartial {
  Status status = Status::OK();
  Table partial;
  size_t partial_bytes = 0;
  size_t naive_bytes = 0;
};

/// The nodes serving data, one entry per live serving node (after failover
/// the promoted backup hosts the failed primary's rows in its own MVCC
/// tables, so scanning each serving node once covers every shard once).
std::vector<int> ServingDns(Cluster* cluster) {
  std::vector<int> serving;
  for (int shard = 0; shard < cluster->num_dns(); ++shard) {
    int dn = cluster->EffectiveDn(shard);
    if (std::find(serving.begin(), serving.end(), dn) == serving.end()) {
      serving.push_back(dn);
    }
  }
  return serving;
}

/// Dispatches fn(0..n-1) per the parallel/pool options (shared contract
/// with DistributedAggregate: execution mode never changes results).
void RunScatter(bool parallel, common::ThreadPool* pool, int n,
                const std::function<void(int)>& fn) {
  if (parallel) {
    (pool ? pool : &common::ThreadPool::Shared())->ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options) {
  DistributedResult out;

  std::vector<PartialPlan> plans;
  plans.reserve(aggs.size());
  for (const auto& a : aggs) plans.push_back(DecomposeAgg(a));

  OFI_ASSIGN_OR_RETURN(std::vector<std::string> group_names,
                       GroupOutputNames(group_by, aggs));

  std::vector<int> serving = ServingDns(cluster);
  const int num_serving = static_cast<int>(serving.size());

  // One consistent snapshot across every shard.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  // Scatter, phase 1 (coordinator thread): open every shard context and
  // charge the simulated fan-out. Every DN receives the request at
  // scatter_start and performs snapshot-merge + partial scan serialized on
  // its own resource, so the parallel critical path is the slowest DN; the
  // old serial model (round trips chained back-to-back) is kept alongside
  // for comparison.
  const SimTime scatter_start = reader.now();
  SimTime parallel_done = scatter_start;
  SimTime serial_sum = 0;
  std::vector<storage::MvccTable*> shard_tables(serving.size(), nullptr);
  for (int i = 0; i < num_serving; ++i) {
    const int dn = serving[i];
    OFI_ASSIGN_OR_RETURN(shard_tables[i], cluster->dn(dn)->GetTable(table));
    OFI_ASSIGN_OR_RETURN(SimTime merged_at,
                         reader.PrepareShard(dn, scatter_start));
    // The partial scan+aggregate statement, shipping group-sized state back.
    SimTime done = cluster->ChargeDnStmt(dn, merged_at);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }
  const SimTime gather_cost =
      static_cast<SimTime>(num_serving) * cluster->latency().cn_gather_service_us;
  out.sim_latency_us = (parallel_done - scatter_start) + gather_cost;
  out.sim_latency_serial_us = serial_sum + gather_cost;

  // Scatter, phase 2 (thread pool): per-DN visible scan + partial
  // aggregation. Workers touch only read paths (storage/txn shared locks)
  // plus their own slot; expression trees are cloned per worker because
  // Bind() caches column indices in place.
  std::vector<ShardPartial> slots(serving.size());
  auto run_shard = [&](int i) {
    const int dn = serving[i];
    ShardPartial& slot = slots[static_cast<size_t>(i)];
    auto rows = reader.ScanShardPrepared(table, dn);
    if (!rows.ok()) {
      slot.status = rows.status();
      return;
    }
    for (const auto& row : *rows) slot.naive_bytes += sql::RowByteSize(row);

    sql::Catalog shard_catalog;
    shard_catalog.Register(
        "shard", Table(shard_tables[static_cast<size_t>(i)]->schema(),
                       std::move(*rows)));
    std::vector<AggSpec> partial_specs;
    for (const auto& p : plans) {
      for (const auto& spec : p.partial) {
        partial_specs.push_back(
            AggSpec{spec.func, spec.arg ? spec.arg->Clone() : nullptr,
                    spec.name});
      }
    }
    sql::PlanPtr scan =
        sql::MakeScan("shard", filter ? filter->Clone() : nullptr);
    sql::PlanPtr agg_plan = sql::MakeAggregate(scan, group_by, partial_specs);
    sql::Executor exec(&shard_catalog);
    auto partial = exec.Execute(agg_plan);
    if (!partial.ok()) {
      slot.status = partial.status();
      return;
    }
    slot.partial_bytes = TableBytes(*partial);
    slot.partial = std::move(*partial);
  };
  RunScatter(options.parallel, options.pool, num_serving, run_shard);

  // Gather: merge partials deterministically in DN order.
  Table partial_union;
  bool first_shard = true;
  for (auto& slot : slots) {
    OFI_RETURN_NOT_OK(slot.status);
    out.partial_bytes += slot.partial_bytes;
    out.naive_bytes += slot.naive_bytes;
    if (first_shard) {
      partial_union = std::move(slot.partial);
      first_shard = false;
    } else {
      for (auto& row : slot.partial.mutable_rows()) {
        OFI_RETURN_NOT_OK(partial_union.Append(std::move(row)));
      }
    }
  }
  // The CN resumes once the last partial has been gathered.
  reader.AdvanceTo(parallel_done + gather_cost);
  OFI_RETURN_NOT_OK(reader.Commit());

  // Final aggregation over the partials at the CN.
  sql::Catalog cn_catalog;
  cn_catalog.Register("partials", std::move(partial_union));
  std::vector<AggSpec> final_specs;
  for (const auto& p : plans) {
    final_specs.insert(final_specs.end(), p.final_specs.begin(),
                       p.final_specs.end());
  }
  sql::PlanPtr final_plan =
      sql::MakeAggregate(sql::MakeScan("partials"), group_by, final_specs);
  sql::Executor cn_exec(&cn_catalog);
  OFI_ASSIGN_OR_RETURN(Table merged, cn_exec.Execute(final_plan));

  // Project to the requested names/order. AVG's post-division is done here
  // in code rather than as a `/` expression so the SQL-standard edge case is
  // explicit: a group whose column was NULL on every shard merges to
  // COUNT 0 (and SUM NULL) and must yield NULL, not divide by zero.
  std::vector<Column> out_cols;
  std::vector<size_t> first_col(aggs.size(), 0);
  for (size_t gi = 0; gi < group_by.size(); ++gi) {
    out_cols.push_back(
        Column{group_names[gi], merged.schema().column(gi).type, ""});
  }
  size_t col = group_by.size();
  for (size_t i = 0; i < aggs.size(); ++i) {
    first_col[i] = col;
    if (plans[i].is_avg) {
      out_cols.push_back(Column{aggs[i].name, TypeId::kDouble, ""});
      col += 2;  // sum + count
    } else {
      out_cols.push_back(
          Column{aggs[i].name, merged.schema().column(col).type, ""});
      col += 1;
    }
  }
  Table result{sql::Schema(std::move(out_cols))};
  for (const auto& row : merged.rows()) {
    Row r;
    r.reserve(group_by.size() + aggs.size());
    for (size_t gi = 0; gi < group_by.size(); ++gi) r.push_back(row[gi]);
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (plans[i].is_avg) {
        const Value& sum = row[first_col[i]];
        const Value& count = row[first_col[i] + 1];
        if (sum.is_null() || count.is_null() || count.AsDouble() == 0) {
          r.push_back(Value::Null());
        } else {
          r.push_back(Value(sum.AsDouble() / count.AsDouble()));
        }
      } else {
        r.push_back(row[first_col[i]]);
      }
    }
    OFI_RETURN_NOT_OK(result.Append(std::move(r)));
  }
  out.table = std::move(result);
  return out;
}

Result<DistributedJoinResult> DistributedJoin(
    Cluster* cluster, const DistributedJoinSpec& spec,
    const DistributedJoinOptions& options) {
  DistributedJoinResult out;

  std::vector<int> serving = ServingDns(cluster);
  const int n = static_cast<int>(serving.size());
  const size_t batch_rows = options.batch_rows == 0 ? 1 : options.batch_rows;

  // Schemas are identical on every DN; resolve them (and the key columns)
  // once from the first serving node.
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * left0,
                       cluster->dn(serving[0])->GetTable(spec.left_table));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * right0,
                       cluster->dn(serving[0])->GetTable(spec.right_table));
  const sql::Schema left_schema = left0->schema();
  const sql::Schema right_schema = right0->schema();
  OFI_ASSIGN_OR_RETURN(size_t left_key_idx, left_schema.IndexOf(spec.left_key));
  OFI_ASSIGN_OR_RETURN(size_t right_key_idx,
                       right_schema.IndexOf(spec.right_key));

  // One consistent snapshot across every shard for BOTH sides of the join.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  // Phase 1 (coordinator): open every shard context and charge the fan-out —
  // snapshot merge plus one scan statement per side. Every DN receives the
  // request at scatter_start and works on its own serialized resource.
  const SimTime scatter_start = reader.now();
  std::vector<SimTime> scan_done(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int dn = serving[i];
    OFI_ASSIGN_OR_RETURN(SimTime merged_at,
                         reader.PrepareShard(dn, scatter_start));
    SimTime t = cluster->ChargeDnStmt(dn, merged_at);   // scan left shard
    scan_done[static_cast<size_t>(i)] = cluster->ChargeDnStmt(dn, t);  // right
  }

  // Phase 2 (thread pool): per-DN visible scan + filter of both sides.
  struct ShardInput {
    Status status = Status::OK();
    std::vector<Row> left, right;
  };
  std::vector<ShardInput> inputs(static_cast<size_t>(n));
  auto scan_side = [&](int dn, const std::string& table,
                       const sql::ExprPtr& filter, const sql::Schema& schema,
                       std::vector<Row>* rows_out) -> Status {
    OFI_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         reader.ScanShardPrepared(table, dn));
    if (filter) {
      // Cloned per worker: Bind() caches column indices in place.
      sql::ExprPtr f = filter->Clone();
      OFI_RETURN_NOT_OK(f->Bind(schema));
      std::vector<Row> kept;
      kept.reserve(rows.size());
      for (auto& row : rows) {
        Value v = f->Eval(row);
        if (!v.is_null() && v.AsBool()) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
    *rows_out = std::move(rows);
    return Status::OK();
  };
  RunScatter(options.parallel, options.pool, n, [&](int i) {
    ShardInput& slot = inputs[static_cast<size_t>(i)];
    slot.status = scan_side(serving[i], spec.left_table, spec.left_filter,
                            left_schema, &slot.left);
    if (slot.status.ok()) {
      slot.status = scan_side(serving[i], spec.right_table, spec.right_filter,
                              right_schema, &slot.right);
    }
  });
  size_t actual_left_bytes = 0, actual_right_bytes = 0;
  for (const auto& slot : inputs) {
    OFI_RETURN_NOT_OK(slot.status);
    actual_left_bytes += exchange::EncodedBytes(slot.left, batch_rows);
    actual_right_bytes += exchange::EncodedBytes(slot.right, batch_rows);
  }
  out.naive_bytes = actual_left_bytes + actual_right_bytes;

  // Strategy decision. Estimated relation sizes come from optimizer stats
  // when the caller wired a registry through; otherwise from the actual
  // scanned encoded sizes (exact, but unavailable to a real planner —
  // that is precisely what the stats path models).
  double est_left = static_cast<double>(actual_left_bytes);
  double est_right = static_cast<double>(actual_right_bytes);
  if (options.stats != nullptr) {
    if (const auto* ts = options.stats->Get(spec.left_table)) {
      est_left = ts->EstimatedBytes();
    }
    if (const auto* ts = options.stats->Get(spec.right_table)) {
      est_right = ts->EstimatedBytes();
    }
  }
  out.broadcast_left = est_left <= est_right;
  JoinStrategy strategy = options.strategy;
  if (strategy == JoinStrategy::kAuto) {
    // Broadcast ships the small side to the N-1 other nodes; repartition
    // ships the (N-1)/N fraction of both sides that hashes off-node.
    double cost_broadcast = std::min(est_left, est_right) * (n - 1);
    double cost_repartition =
        (est_left + est_right) * static_cast<double>(n - 1) / std::max(n, 1);
    strategy = cost_broadcast <= cost_repartition ? JoinStrategy::kBroadcast
                                                  : JoinStrategy::kRepartition;
  }
  out.strategy = strategy;

  // Phase 3 (thread pool): move rows through the exchange. Each worker only
  // writes channels whose source is its own node, so sends are race-free by
  // construction (channels are mutex-guarded regardless).
  exchange::ExchangeNetwork left_net(n, batch_rows);
  exchange::ExchangeNetwork right_net(n, batch_rows);
  if (strategy == JoinStrategy::kBroadcast) {
    RunScatter(options.parallel, options.pool, n, [&](int i) {
      if (out.broadcast_left) {
        exchange::BroadcastRows(&left_net, i, inputs[static_cast<size_t>(i)].left);
      } else {
        exchange::BroadcastRows(&right_net, i,
                                inputs[static_cast<size_t>(i)].right);
      }
    });
  } else {
    RunScatter(options.parallel, options.pool, n, [&](int i) {
      exchange::ShufflePartition(&left_net, i,
                                 inputs[static_cast<size_t>(i)].left,
                                 left_key_idx);
      exchange::ShufflePartition(&right_net, i,
                                 inputs[static_cast<size_t>(i)].right,
                                 right_key_idx);
    });
  }

  // Phase 4 (thread pool): each DN assembles its slice (local rows for the
  // side that did not move, exchange-delivered rows for the one that did)
  // and runs the ordinary hash join from src/sql on it.
  struct ShardJoin {
    Status status = Status::OK();
    Table result;
  };
  std::vector<ShardJoin> joins(static_cast<size_t>(n));
  RunScatter(options.parallel, options.pool, n, [&](int j) {
    ShardJoin& slot = joins[static_cast<size_t>(j)];
    ShardInput& in = inputs[static_cast<size_t>(j)];
    auto side_rows = [&](bool is_left) -> Result<std::vector<Row>> {
      const bool moved = strategy == JoinStrategy::kRepartition ||
                         (is_left == out.broadcast_left);
      if (!moved) return std::move(is_left ? in.left : in.right);
      return (is_left ? left_net : right_net).ReceiveRows(j);
    };
    auto lrows = side_rows(true);
    if (!lrows.ok()) {
      slot.status = lrows.status();
      return;
    }
    auto rrows = side_rows(false);
    if (!rrows.ok()) {
      slot.status = rrows.status();
      return;
    }
    sql::ExprPtr pred = Expr::EqCols(spec.left_key, spec.right_key);
    if (spec.residual) pred = Expr::And(pred, spec.residual->Clone());
    sql::PlanPtr plan = sql::MakeJoin(
        sql::MakeValues(Table(left_schema, std::move(*lrows))),
        sql::MakeValues(Table(right_schema, std::move(*rrows))), pred);
    sql::Catalog catalog;  // Values plans read no tables
    sql::Executor exec(&catalog);
    auto joined = exec.Execute(plan);
    if (!joined.ok()) {
      slot.status = joined.status();
      return;
    }
    slot.result = std::move(*joined);
  });

  // Simulated latency: sends start when a node's scans are done; node j can
  // join once the slowest sender shipping to it has finished (+1 hop) and
  // its own decode service completes; then one join statement per DN.
  exchange::ExchangeLatencyParams params{
      cluster->latency().network_hop_us,
      cluster->latency().exchange_batch_service_us,
      cluster->latency().exchange_kb_service_us};
  std::vector<int> resources(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    resources[static_cast<size_t>(i)] = cluster->dn_resource(serving[i]);
  }
  std::vector<SimTime> exchange_done = exchange::SimulateExchange(
      &cluster->scheduler(), resources,
      {&left_net, &right_net}, scan_done, params);
  SimTime parallel_done = scatter_start;
  SimTime serial_sum = 0;
  for (int j = 0; j < n; ++j) {
    SimTime done =
        cluster->ChargeDnStmt(serving[j], exchange_done[static_cast<size_t>(j)]);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }

  // Gather: concatenate per-DN partial results deterministically in DN
  // order. The CN pays the per-partial merge plus a size-aware receive for
  // the joined rows (joins, unlike aggregates, gather row-sized state).
  Table result(left_schema.Concat(right_schema));
  for (auto& slot : joins) {
    OFI_RETURN_NOT_OK(slot.status);
    out.result_bytes += exchange::EncodedBytes(slot.result.rows(), batch_rows);
    for (auto& row : slot.result.mutable_rows()) {
      OFI_RETURN_NOT_OK(result.Append(std::move(row)));
    }
  }
  const SimTime gather_cost =
      static_cast<SimTime>(n) * cluster->latency().cn_gather_service_us +
      exchange::ExchangeServiceTime(out.result_bytes, 0, params);
  out.sim_latency_us = (parallel_done - scatter_start) + gather_cost;
  out.sim_latency_serial_us = serial_sum + gather_cost;
  reader.AdvanceTo(parallel_done + gather_cost);
  OFI_RETURN_NOT_OK(reader.Commit());

  // Accounting + metrics: cross-DN bytes per strategy, per-channel stats
  // with exchange-node indices mapped back to real DN ids.
  out.shuffle_bytes = strategy == JoinStrategy::kRepartition
                          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
                          : 0;
  out.broadcast_bytes =
      strategy == JoinStrategy::kBroadcast
          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
          : 0;
  out.exchange_batches =
      left_net.CrossNodeBatches() + right_net.CrossNodeBatches();
  for (const auto* net : {&left_net, &right_net}) {
    for (exchange::ChannelStats ch : net->Stats()) {
      ch.src = serving[ch.src];
      ch.dst = serving[ch.dst];
      // Merge the two relations' traffic per (src,dst) pair.
      auto it = std::find_if(out.channels.begin(), out.channels.end(),
                             [&](const exchange::ChannelStats& c) {
                               return c.src == ch.src && c.dst == ch.dst;
                             });
      if (it == out.channels.end()) {
        out.channels.push_back(ch);
      } else {
        it->bytes += ch.bytes;
        it->batches += ch.batches;
      }
      if (ch.src != ch.dst) {
        const std::string pair = "exchange.bytes.d" + std::to_string(ch.src) +
                                 "->d" + std::to_string(ch.dst);
        cluster->metrics().Add(pair, static_cast<int64_t>(ch.bytes));
      }
    }
  }
  cluster->metrics().Add("exchange.bytes",
                         static_cast<int64_t>(out.shuffle_bytes +
                                              out.broadcast_bytes));
  cluster->metrics().Add("exchange.batches",
                         static_cast<int64_t>(out.exchange_batches));
  cluster->metrics().Add(strategy == JoinStrategy::kBroadcast
                             ? "join.broadcast"
                             : "join.repartition");
  out.table = std::move(result);
  return out;
}

}  // namespace ofi::cluster
