/// \file mpp_query.cc
/// \brief Compatibility shims: the historical DistributedAggregate /
/// DistributedJoin entry points, now expressed as tiny distributed physical
/// plans executed by cluster/distributed_plan. The operator layer replays
/// the monoliths' exact simulated charge sequences, so every number these
/// shims return (latencies included) is bit-identical to the old inline
/// implementations.
#include "cluster/mpp_query.h"

#include "cluster/distributed_plan.h"

namespace ofi::cluster {

Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options) {
  // Scan -> fused partial agg -> gather partials -> final agg at the CN.
  // The scan path records the caller's intent; the executor still falls
  // back per shard on staleness or an unrecognizable filter.
  DistOpPtr plan = MakeDistFinalAgg(
      MakeGather(MakeDistPartialAgg(
                     MakeDistScan(table, std::move(filter),
                                  options.use_columnar ? ScanPath::kColumnar
                                                       : ScanPath::kRow),
                     group_by, aggs),
                 /*gather_rows=*/false),
      group_by, aggs);

  DistExecOptions eopts;
  eopts.parallel = options.parallel;
  eopts.pool = options.pool;
  eopts.use_columnar = options.use_columnar;
  eopts.columnar_morsel_parallel = options.columnar_morsel_parallel;
  OFI_ASSIGN_OR_RETURN(DistPlanResult r, ExecuteDistPlan(cluster, plan, eopts));

  DistributedResult out;
  out.table = std::move(r.table);
  out.partial_bytes = r.stats.partial_bytes;
  out.naive_bytes = r.stats.naive_bytes;
  out.sim_latency_us = r.stats.sim_latency_us;
  out.sim_latency_serial_us = r.stats.sim_latency_serial_us;
  out.columnar_shards = r.stats.columnar_shards;
  out.scan_stats = r.stats.scan_stats;
  return out;
}

Result<DistributedJoinResult> DistributedJoin(
    Cluster* cluster, const DistributedJoinSpec& spec,
    const DistributedJoinOptions& options) {
  // Two row scans feeding a hash join, gathered as rows. The strategy
  // stays kAuto in the plan; the caller's choice rides in as the
  // execution-time override so kAuto keeps resolving from runtime sizes
  // (this entry point never had plan-time statistics).
  DistOpPtr plan = MakeGather(
      MakeDistHashJoin(
          MakeDistScan(spec.left_table,
                       spec.left_filter ? spec.left_filter->Clone() : nullptr),
          MakeDistScan(spec.right_table, spec.right_filter
                                             ? spec.right_filter->Clone()
                                             : nullptr),
          spec.left_key, spec.right_key,
          spec.residual ? spec.residual->Clone() : nullptr),
      /*gather_rows=*/true);

  DistExecOptions eopts;
  eopts.parallel = options.parallel;
  eopts.pool = options.pool;
  eopts.batch_rows = options.batch_rows;
  eopts.max_channel_bytes = options.max_channel_bytes;
  eopts.strict_channel_limit = options.strict_channel_limit;
  eopts.spill_dir = options.spill_dir;
  eopts.max_spill_bytes = options.max_spill_bytes;
  eopts.max_build_bytes = options.max_build_bytes;
  eopts.stats = options.stats;
  eopts.strategy_override = options.strategy;
  OFI_ASSIGN_OR_RETURN(DistPlanResult r, ExecuteDistPlan(cluster, plan, eopts));

  DistributedJoinResult out;
  out.table = std::move(r.table);
  out.strategy = r.stats.strategy;
  out.broadcast_left = r.stats.broadcast_left;
  out.shuffle_bytes = r.stats.shuffle_bytes;
  out.broadcast_bytes = r.stats.broadcast_bytes;
  out.naive_bytes = r.stats.naive_bytes;
  out.result_bytes = r.stats.result_bytes;
  out.exchange_batches = r.stats.exchange_batches;
  out.spill_bytes = r.stats.spill_bytes;
  out.build_spill_bytes = r.stats.build_spill_bytes;
  out.channels = std::move(r.stats.channels);
  out.sim_latency_us = r.stats.sim_latency_us;
  out.sim_latency_serial_us = r.stats.sim_latency_serial_us;
  return out;
}

}  // namespace ofi::cluster
