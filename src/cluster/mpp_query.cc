#include "cluster/mpp_query.h"

#include <algorithm>
#include <map>

#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::AggSpec;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Table;
using sql::TypeId;
using sql::Value;

/// The partial aggregates one requested aggregate decomposes into, and how
/// the final stage merges them.
struct PartialPlan {
  std::vector<AggSpec> partial;  // computed per shard
  // Final-stage spec over the unioned partials; AVG needs a post-division.
  std::vector<AggSpec> final_specs;
  bool is_avg = false;
  std::string sum_name, count_name;  // for AVG
};

PartialPlan DecomposeAgg(const DistributedAgg& agg) {
  PartialPlan plan;
  switch (agg.func) {
    case AggFunc::kCount:
      plan.partial = {AggSpec{AggFunc::kCount,
                              agg.column.empty() ? nullptr
                                                 : Expr::ColumnRef(agg.column),
                              agg.name}};
      // Final: COUNT partials SUM together.
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      plan.partial = {AggSpec{agg.func, Expr::ColumnRef(agg.column), agg.name}};
      plan.final_specs = {
          AggSpec{agg.func == AggFunc::kSum ? AggFunc::kSum : agg.func,
                  Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kAvg:
      // AVG decomposes into (SUM, COUNT); the CN divides at the end.
      plan.is_avg = true;
      plan.sum_name = agg.name + "$sum";
      plan.count_name = agg.name + "$cnt";
      plan.partial = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.column), plan.sum_name},
          AggSpec{AggFunc::kCount, Expr::ColumnRef(agg.column), plan.count_name}};
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.sum_name), plan.sum_name},
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.count_name),
                  plan.count_name}};
      break;
  }
  return plan;
}

size_t TableBytes(const Table& t) {
  size_t n = 0;
  for (const auto& row : t.rows()) n += sql::RowByteSize(row);
  return n;
}

std::string BareName(const std::string& qualified) {
  auto dot = qualified.rfind('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

/// Output column names for the group-by keys. A bare name is used only when
/// it stays unambiguous across every output column; `GROUP BY a.x, b.x`
/// keeps the qualified names (both stripping to `x` would collide in the
/// projected schema). Returns InvalidArgument if names collide even
/// qualified.
Result<std::vector<std::string>> GroupOutputNames(
    const std::vector<std::string>& group_by,
    const std::vector<DistributedAgg>& aggs) {
  std::map<std::string, int> bare_uses;
  for (const auto& g : group_by) ++bare_uses[BareName(g)];
  for (const auto& a : aggs) ++bare_uses[a.name];

  std::vector<std::string> names;
  names.reserve(group_by.size());
  for (const auto& g : group_by) {
    const std::string bare = BareName(g);
    names.push_back(bare_uses[bare] > 1 ? g : bare);
  }

  std::map<std::string, int> final_uses;
  for (const auto& n : names) ++final_uses[n];
  for (const auto& a : aggs) ++final_uses[a.name];
  for (const auto& [name, uses] : final_uses) {
    if (uses > 1) {
      return Status::InvalidArgument("ambiguous output column: " + name);
    }
  }
  return names;
}

/// One shard's scatter output, filled in by a pool worker.
struct ShardPartial {
  Status status = Status::OK();
  Table partial;
  size_t partial_bytes = 0;
  size_t naive_bytes = 0;
  bool columnar = false;
  storage::ScanStats stats;  // columnar shards only
};

// --- Columnar scan path (storage/column_store) -------------------------------

/// A filter the columnar kernels evaluate natively: TRUE, one inclusive
/// int64 range on a column, or one string equality. Comparison predicates
/// lower onto the range with saturated bounds, and And() of ranges on the
/// same column intersects. Anything else falls back to the row store.
struct ColumnarPredicate {
  enum class Kind { kAll, kIntRange, kStringEq };
  Kind kind = Kind::kAll;
  std::string column;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  std::string needle;
  /// Statically unsatisfiable (x > INT64_MAX, or an empty intersection):
  /// the scan short-circuits to an empty selection.
  bool never = false;
};

std::optional<ColumnarPredicate> RecognizeExpr(const Expr& e) {
  if (e.kind() == sql::ExprKind::kCompare) {
    if (e.children().size() != 2) return std::nullopt;
    const Expr& l = *e.children()[0];
    const Expr& r = *e.children()[1];
    if (l.kind() != sql::ExprKind::kColumn || r.kind() != sql::ExprKind::kLiteral) {
      return std::nullopt;
    }
    const Value& lit = r.literal();
    ColumnarPredicate p;
    p.column = l.column_name();
    if (lit.type() == TypeId::kString && e.compare_op() == sql::CompareOp::kEq) {
      p.kind = ColumnarPredicate::Kind::kStringEq;
      p.needle = lit.AsString();
      return p;
    }
    if (lit.type() != TypeId::kInt64) return std::nullopt;
    const int64_t v = lit.AsInt();
    p.kind = ColumnarPredicate::Kind::kIntRange;
    switch (e.compare_op()) {
      case sql::CompareOp::kEq:
        p.lo = p.hi = v;
        break;
      case sql::CompareOp::kGt:
        if (v == std::numeric_limits<int64_t>::max()) p.never = true;
        else p.lo = v + 1;
        break;
      case sql::CompareOp::kGe:
        p.lo = v;
        break;
      case sql::CompareOp::kLt:
        if (v == std::numeric_limits<int64_t>::min()) p.never = true;
        else p.hi = v - 1;
        break;
      case sql::CompareOp::kLe:
        p.hi = v;
        break;
      default:
        return std::nullopt;  // <> needs NULL-aware decode; not worth it
    }
    return p;
  }
  if (e.kind() == sql::ExprKind::kLogical &&
      e.logical_op() == sql::LogicalOp::kAnd && e.children().size() == 2) {
    auto a = RecognizeExpr(*e.children()[0]);
    auto b = RecognizeExpr(*e.children()[1]);
    if (!a || !b || a->kind != ColumnarPredicate::Kind::kIntRange ||
        b->kind != ColumnarPredicate::Kind::kIntRange || a->column != b->column) {
      return std::nullopt;
    }
    a->lo = std::max(a->lo, b->lo);
    a->hi = std::min(a->hi, b->hi);
    a->never = a->never || b->never || a->lo > a->hi;
    return a;
  }
  return std::nullopt;
}

/// nullopt = filter not columnar-evaluable (row fallback for the query).
std::optional<ColumnarPredicate> RecognizeFilter(const sql::ExprPtr& filter) {
  if (!filter) return ColumnarPredicate{};  // kAll
  return RecognizeExpr(*filter);
}

/// True when every partial aggregate can run as a pure column kernel:
/// global aggregation (no GROUP BY) of COUNT(*)/COUNT/SUM/MIN/MAX over
/// columns typed exactly kInt64 (timestamps/doubles would change the
/// executor's output value types). AVG qualifies via its SUM+COUNT split.
bool KernelAggsSupported(const std::vector<std::string>& group_by,
                         const std::vector<PartialPlan>& plans,
                         const sql::Schema& schema) {
  if (!group_by.empty()) return false;
  for (const auto& p : plans) {
    for (const auto& spec : p.partial) {
      if (spec.arg == nullptr) continue;  // COUNT(*)
      if (spec.arg->kind() != sql::ExprKind::kColumn) return false;
      auto idx = schema.IndexOf(spec.arg->column_name());
      if (!idx.ok() || schema.column(*idx).type != TypeId::kInt64) return false;
    }
  }
  return true;
}

/// Runs the recognized filter, returning the selection (nullopt = all rows,
/// so aggregate kernels can take their zone-map-only fast paths).
Result<std::optional<std::vector<uint32_t>>> RunColumnarFilter(
    const storage::ColumnTable& ct, const ColumnarPredicate& pred,
    const storage::ScanOptions& sopts, storage::ScanStats* stats) {
  if (pred.never) {
    return std::optional<std::vector<uint32_t>>{std::vector<uint32_t>{}};
  }
  switch (pred.kind) {
    case ColumnarPredicate::Kind::kAll:
      return std::optional<std::vector<uint32_t>>{};
    case ColumnarPredicate::Kind::kIntRange: {
      OFI_ASSIGN_OR_RETURN(
          std::vector<uint32_t> sel,
          ct.FilterBetweenInt64(pred.column, pred.lo, pred.hi, sopts, stats));
      return std::optional<std::vector<uint32_t>>{std::move(sel)};
    }
    case ColumnarPredicate::Kind::kStringEq: {
      OFI_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                           ct.FilterEqString(pred.column, pred.needle, sopts, stats));
      return std::optional<std::vector<uint32_t>>{std::move(sel)};
    }
  }
  return Status::Internal("unreachable");
}

/// Pure-kernel partial aggregate: the exact Table the row-path executor
/// would produce for a global aggregate (COUNT -> kInt64 with 0 on empty,
/// SUM/MIN/MAX -> the column's type with NULL when nothing contributes),
/// computed without materializing a single row.
Result<Table> RunColumnarKernelAgg(const storage::ColumnTable& ct,
                                   const std::vector<uint32_t>* sel,
                                   bool never,
                                   const std::vector<AggSpec>& partial_specs,
                                   const storage::ScanOptions& sopts,
                                   storage::ScanStats* stats) {
  std::vector<Column> cols;
  Row r;
  for (const auto& spec : partial_specs) {
    if (spec.arg == nullptr) {
      // COUNT(*): rows in the selection; NULLs count too.
      cols.push_back(Column{spec.name, TypeId::kInt64, ""});
      int64_t c = sel ? static_cast<int64_t>(sel->size())
                      : (never ? 0 : static_cast<int64_t>(ct.sealed_rows()));
      r.push_back(Value(c));
      continue;
    }
    const std::string& col = spec.arg->column_name();
    switch (spec.func) {
      case AggFunc::kCount: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(int64_t c, ct.CountInt64(col, sel, sopts, stats));
        r.push_back(Value(c));
        break;
      }
      case AggFunc::kSum: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> s,
                             ct.SumInt64(col, sel, sopts, stats));
        r.push_back(s ? Value(*s) : Value::Null());
        break;
      }
      case AggFunc::kMin: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> m,
                             ct.MinInt64(col, sel, sopts, stats));
        r.push_back(m ? Value(*m) : Value::Null());
        break;
      }
      case AggFunc::kMax: {
        cols.push_back(Column{spec.name, TypeId::kInt64, ""});
        OFI_ASSIGN_OR_RETURN(std::optional<int64_t> m,
                             ct.MaxInt64(col, sel, sopts, stats));
        r.push_back(m ? Value(*m) : Value::Null());
        break;
      }
      default:
        return Status::Internal("non-decomposed aggregate in kernel path");
    }
  }
  Table out{sql::Schema(std::move(cols))};
  out.mutable_rows().push_back(std::move(r));
  return out;
}

/// Distinct chunks containing selected rows — the chunk cost the gather
/// (materializing) path charges, since it decodes those chunks.
size_t ChunksTouched(const std::vector<uint32_t>& sel) {
  size_t touched = 0;
  size_t last = SIZE_MAX;
  for (uint32_t r : sel) {
    size_t c = r / storage::ColumnTable::kChunkRows;
    if (c != last) {
      ++touched;
      last = c;
    }
  }
  return touched;
}

/// The nodes serving data, one entry per live serving node (after failover
/// the promoted backup hosts the failed primary's rows in its own MVCC
/// tables, so scanning each serving node once covers every shard once).
std::vector<int> ServingDns(Cluster* cluster) {
  std::vector<int> serving;
  for (int shard = 0; shard < cluster->num_dns(); ++shard) {
    int dn = cluster->EffectiveDn(shard);
    if (std::find(serving.begin(), serving.end(), dn) == serving.end()) {
      serving.push_back(dn);
    }
  }
  return serving;
}

/// Dispatches fn(0..n-1) per the parallel/pool options (shared contract
/// with DistributedAggregate: execution mode never changes results).
void RunScatter(bool parallel, common::ThreadPool* pool, int n,
                const std::function<void(int)>& fn) {
  if (parallel) {
    (pool ? pool : &common::ThreadPool::Shared())->ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options) {
  DistributedResult out;

  std::vector<PartialPlan> plans;
  plans.reserve(aggs.size());
  for (const auto& a : aggs) plans.push_back(DecomposeAgg(a));

  OFI_ASSIGN_OR_RETURN(std::vector<std::string> group_names,
                       GroupOutputNames(group_by, aggs));

  std::vector<int> serving = ServingDns(cluster);
  const int num_serving = static_cast<int>(serving.size());

  // One consistent snapshot across every shard.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  std::vector<storage::MvccTable*> shard_tables(serving.size(), nullptr);
  for (int i = 0; i < num_serving; ++i) {
    OFI_ASSIGN_OR_RETURN(shard_tables[i],
                         cluster->dn(serving[i])->GetTable(table));
  }

  // Columnar eligibility. The filter must be kernel-recognizable (checked
  // once for the query), and each shard's copy must be fresh: built with no
  // transaction in flight AND no heap mutation since (the mutation epoch
  // detects deletes that version counts cannot). Stale shards fall back to
  // the row store individually — results are identical either way.
  std::optional<ColumnarPredicate> pred;
  if (options.use_columnar && cluster->IsColumnar(table)) {
    pred = RecognizeFilter(filter);
    if (!pred.has_value()) {
      cluster->metrics().Add("columnar.fallback_filter");
    }
  }
  std::vector<const DataNode::ColumnarShard*> col_shards(serving.size(), nullptr);
  bool kernel_path = false;
  if (pred.has_value()) {
    kernel_path =
        KernelAggsSupported(group_by, plans, shard_tables[0]->schema());
    for (int i = 0; i < num_serving; ++i) {
      const DataNode::ColumnarShard* shard =
          cluster->dn(serving[i])->GetColumnarShard(table);
      if (shard != nullptr && shard->table != nullptr && shard->settled &&
          shard->heap_epoch == shard_tables[i]->epoch()) {
        col_shards[i] = shard;
      } else if (shard != nullptr) {
        cluster->metrics().Add("columnar.fallback_stale");
      }
    }
  }

  // Scatter, phase 1 (coordinator thread): open every shard context and
  // charge the simulated fan-out. Every DN receives the request at
  // scatter_start and performs snapshot-merge + partial scan serialized on
  // its own resource, so the parallel critical path is the slowest DN; the
  // old serial model (round trips chained back-to-back) is kept alongside
  // for comparison. Columnar shards charge per chunk actually scanned, so
  // their statement cost is only known after phase 2 — record the merge
  // completion now and charge the scan afterwards (each DN's resource is
  // independent, so the deferred charge stays deterministic).
  const SimTime scatter_start = reader.now();
  SimTime parallel_done = scatter_start;
  SimTime serial_sum = 0;
  std::vector<SimTime> merged_at(serving.size(), scatter_start);
  for (int i = 0; i < num_serving; ++i) {
    const int dn = serving[i];
    OFI_ASSIGN_OR_RETURN(merged_at[i], reader.PrepareShard(dn, scatter_start));
    if (col_shards[i] != nullptr) continue;
    // The row-path partial scan+aggregate statement.
    SimTime done = cluster->ChargeDnStmt(dn, merged_at[i]);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }

  // Scatter, phase 2 (thread pool): per-DN partial aggregation. Row shards
  // scan the MVCC heap through the executor; columnar shards run the
  // filter/aggregate kernels over their chunk copy (pure kernels for global
  // int64 aggregates, else filter + Gather + executor). Workers touch only
  // read paths plus their own slot; expression trees are cloned per worker
  // because Bind() caches column indices in place. Morsel parallelism
  // inside a shard is only enabled for inline scatters — pool workers must
  // not nest ParallelFor.
  storage::ScanOptions sopts;
  sopts.parallel = options.columnar_morsel_parallel && !options.parallel;
  sopts.pool = options.pool;
  std::vector<ShardPartial> slots(serving.size());
  auto run_shard = [&](int i) {
    const int dn = serving[i];
    ShardPartial& slot = slots[static_cast<size_t>(i)];

    std::vector<AggSpec> partial_specs;
    for (const auto& p : plans) {
      for (const auto& spec : p.partial) {
        partial_specs.push_back(AggSpec{
            spec.func, spec.arg ? spec.arg->Clone() : nullptr, spec.name});
      }
    }

    if (col_shards[i] != nullptr) {
      const storage::ColumnTable& ct = *col_shards[i]->table;
      slot.columnar = true;
      slot.naive_bytes = ct.PlainBytes();
      auto sel = RunColumnarFilter(ct, *pred, sopts, &slot.stats);
      if (!sel.ok()) {
        slot.status = sel.status();
        return;
      }
      auto compute = [&]() -> Result<Table> {
        if (kernel_path) {
          return RunColumnarKernelAgg(ct, sel->has_value() ? &**sel : nullptr,
                                      pred->never, partial_specs, sopts,
                                      &slot.stats);
        }
        // Gather path: materialize the selection and run the ordinary
        // partial aggregate (GROUP BY, non-int64 aggregates).
        std::vector<uint32_t> all;
        if (!sel->has_value()) {
          all.resize(ct.sealed_rows());
          for (uint32_t k = 0; k < all.size(); ++k) all[k] = k;
        }
        const std::vector<uint32_t>& s = sel->has_value() ? **sel : all;
        slot.stats.chunks_scanned += ChunksTouched(s);
        OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, ct.Gather(s));
        sql::Catalog shard_catalog;
        shard_catalog.Register("shard", Table(ct.schema(), std::move(rows)));
        // Filter already applied by the kernel — scan without it.
        sql::PlanPtr agg_plan = sql::MakeAggregate(sql::MakeScan("shard"),
                                                   group_by, partial_specs);
        sql::Executor exec(&shard_catalog);
        return exec.Execute(agg_plan);
      };
      Result<Table> partial = compute();
      if (!partial.ok()) {
        slot.status = partial.status();
        return;
      }
      slot.partial_bytes = TableBytes(*partial);
      slot.partial = std::move(*partial);
      return;
    }

    auto rows = reader.ScanShardPrepared(table, dn);
    if (!rows.ok()) {
      slot.status = rows.status();
      return;
    }
    for (const auto& row : *rows) slot.naive_bytes += sql::RowByteSize(row);

    sql::Catalog shard_catalog;
    shard_catalog.Register(
        "shard", Table(shard_tables[static_cast<size_t>(i)]->schema(),
                       std::move(*rows)));
    sql::PlanPtr scan =
        sql::MakeScan("shard", filter ? filter->Clone() : nullptr);
    sql::PlanPtr agg_plan = sql::MakeAggregate(scan, group_by, partial_specs);
    sql::Executor exec(&shard_catalog);
    auto partial = exec.Execute(agg_plan);
    if (!partial.ok()) {
      slot.status = partial.status();
      return;
    }
    slot.partial_bytes = TableBytes(*partial);
    slot.partial = std::move(*partial);
  };
  RunScatter(options.parallel, options.pool, num_serving, run_shard);

  // Deferred latency for columnar shards: fixed setup + per-chunk service
  // for chunks actually scanned. Zone-map-pruned chunks cost nothing.
  for (int i = 0; i < num_serving; ++i) {
    if (col_shards[i] == nullptr) continue;
    SimTime done = cluster->ChargeDnColumnarScan(
        serving[i], merged_at[i], slots[static_cast<size_t>(i)].stats.chunks_scanned);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }
  const SimTime gather_cost =
      static_cast<SimTime>(num_serving) * cluster->latency().cn_gather_service_us;
  out.sim_latency_us = (parallel_done - scatter_start) + gather_cost;
  out.sim_latency_serial_us = serial_sum + gather_cost;

  // Gather: merge partials deterministically in DN order.
  Table partial_union;
  bool first_shard = true;
  for (auto& slot : slots) {
    OFI_RETURN_NOT_OK(slot.status);
    out.partial_bytes += slot.partial_bytes;
    out.naive_bytes += slot.naive_bytes;
    if (slot.columnar) {
      ++out.columnar_shards;
      out.scan_stats.MergeFrom(slot.stats);
    }
    if (first_shard) {
      partial_union = std::move(slot.partial);
      first_shard = false;
    } else {
      for (auto& row : slot.partial.mutable_rows()) {
        OFI_RETURN_NOT_OK(partial_union.Append(std::move(row)));
      }
    }
  }
  if (out.columnar_shards > 0) {
    auto& m = cluster->metrics();
    m.Add("columnar.scans", static_cast<int64_t>(out.columnar_shards));
    m.Add("columnar.chunks_scanned",
          static_cast<int64_t>(out.scan_stats.chunks_scanned));
    m.Add("columnar.chunks_pruned",
          static_cast<int64_t>(out.scan_stats.chunks_pruned));
    m.Add("columnar.rows_filtered",
          static_cast<int64_t>(out.scan_stats.rows_matched));
    m.Add("columnar.morsels", static_cast<int64_t>(out.scan_stats.morsels));
  }
  // The CN resumes once the last partial has been gathered.
  reader.AdvanceTo(parallel_done + gather_cost);
  OFI_RETURN_NOT_OK(reader.Commit());

  // Final aggregation over the partials at the CN.
  sql::Catalog cn_catalog;
  cn_catalog.Register("partials", std::move(partial_union));
  std::vector<AggSpec> final_specs;
  for (const auto& p : plans) {
    final_specs.insert(final_specs.end(), p.final_specs.begin(),
                       p.final_specs.end());
  }
  sql::PlanPtr final_plan =
      sql::MakeAggregate(sql::MakeScan("partials"), group_by, final_specs);
  sql::Executor cn_exec(&cn_catalog);
  OFI_ASSIGN_OR_RETURN(Table merged, cn_exec.Execute(final_plan));

  // Project to the requested names/order. AVG's post-division is done here
  // in code rather than as a `/` expression so the SQL-standard edge case is
  // explicit: a group whose column was NULL on every shard merges to
  // COUNT 0 (and SUM NULL) and must yield NULL, not divide by zero.
  std::vector<Column> out_cols;
  std::vector<size_t> first_col(aggs.size(), 0);
  for (size_t gi = 0; gi < group_by.size(); ++gi) {
    out_cols.push_back(
        Column{group_names[gi], merged.schema().column(gi).type, ""});
  }
  size_t col = group_by.size();
  for (size_t i = 0; i < aggs.size(); ++i) {
    first_col[i] = col;
    if (plans[i].is_avg) {
      out_cols.push_back(Column{aggs[i].name, TypeId::kDouble, ""});
      col += 2;  // sum + count
    } else {
      out_cols.push_back(
          Column{aggs[i].name, merged.schema().column(col).type, ""});
      col += 1;
    }
  }
  Table result{sql::Schema(std::move(out_cols))};
  for (const auto& row : merged.rows()) {
    Row r;
    r.reserve(group_by.size() + aggs.size());
    for (size_t gi = 0; gi < group_by.size(); ++gi) r.push_back(row[gi]);
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (plans[i].is_avg) {
        const Value& sum = row[first_col[i]];
        const Value& count = row[first_col[i] + 1];
        if (sum.is_null() || count.is_null() || count.AsDouble() == 0) {
          r.push_back(Value::Null());
        } else {
          r.push_back(Value(sum.AsDouble() / count.AsDouble()));
        }
      } else {
        r.push_back(row[first_col[i]]);
      }
    }
    OFI_RETURN_NOT_OK(result.Append(std::move(r)));
  }
  out.table = std::move(result);
  return out;
}

Result<DistributedJoinResult> DistributedJoin(
    Cluster* cluster, const DistributedJoinSpec& spec,
    const DistributedJoinOptions& options) {
  DistributedJoinResult out;

  std::vector<int> serving = ServingDns(cluster);
  const int n = static_cast<int>(serving.size());
  const size_t batch_rows = options.batch_rows == 0 ? 1 : options.batch_rows;

  // Schemas are identical on every DN; resolve them (and the key columns)
  // once from the first serving node.
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * left0,
                       cluster->dn(serving[0])->GetTable(spec.left_table));
  OFI_ASSIGN_OR_RETURN(storage::MvccTable * right0,
                       cluster->dn(serving[0])->GetTable(spec.right_table));
  const sql::Schema left_schema = left0->schema();
  const sql::Schema right_schema = right0->schema();
  OFI_ASSIGN_OR_RETURN(size_t left_key_idx, left_schema.IndexOf(spec.left_key));
  OFI_ASSIGN_OR_RETURN(size_t right_key_idx,
                       right_schema.IndexOf(spec.right_key));

  // One consistent snapshot across every shard for BOTH sides of the join.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  // Phase 1 (coordinator): open every shard context and charge the fan-out —
  // snapshot merge plus one scan statement per side. Every DN receives the
  // request at scatter_start and works on its own serialized resource.
  const SimTime scatter_start = reader.now();
  std::vector<SimTime> scan_done(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int dn = serving[i];
    OFI_ASSIGN_OR_RETURN(SimTime merged_at,
                         reader.PrepareShard(dn, scatter_start));
    SimTime t = cluster->ChargeDnStmt(dn, merged_at);   // scan left shard
    scan_done[static_cast<size_t>(i)] = cluster->ChargeDnStmt(dn, t);  // right
  }

  // Phase 2 (thread pool): per-DN visible scan + filter of both sides.
  struct ShardInput {
    Status status = Status::OK();
    std::vector<Row> left, right;
  };
  std::vector<ShardInput> inputs(static_cast<size_t>(n));
  auto scan_side = [&](int dn, const std::string& table,
                       const sql::ExprPtr& filter, const sql::Schema& schema,
                       std::vector<Row>* rows_out) -> Status {
    OFI_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         reader.ScanShardPrepared(table, dn));
    if (filter) {
      // Cloned per worker: Bind() caches column indices in place.
      sql::ExprPtr f = filter->Clone();
      OFI_RETURN_NOT_OK(f->Bind(schema));
      std::vector<Row> kept;
      kept.reserve(rows.size());
      for (auto& row : rows) {
        Value v = f->Eval(row);
        if (!v.is_null() && v.AsBool()) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
    *rows_out = std::move(rows);
    return Status::OK();
  };
  RunScatter(options.parallel, options.pool, n, [&](int i) {
    ShardInput& slot = inputs[static_cast<size_t>(i)];
    slot.status = scan_side(serving[i], spec.left_table, spec.left_filter,
                            left_schema, &slot.left);
    if (slot.status.ok()) {
      slot.status = scan_side(serving[i], spec.right_table, spec.right_filter,
                              right_schema, &slot.right);
    }
  });
  size_t actual_left_bytes = 0, actual_right_bytes = 0;
  for (const auto& slot : inputs) {
    OFI_RETURN_NOT_OK(slot.status);
    actual_left_bytes += exchange::EncodedBytes(slot.left, batch_rows);
    actual_right_bytes += exchange::EncodedBytes(slot.right, batch_rows);
  }
  out.naive_bytes = actual_left_bytes + actual_right_bytes;

  // Strategy decision. Estimated relation sizes come from optimizer stats
  // when the caller wired a registry through; otherwise from the actual
  // scanned encoded sizes (exact, but unavailable to a real planner —
  // that is precisely what the stats path models).
  double est_left = static_cast<double>(actual_left_bytes);
  double est_right = static_cast<double>(actual_right_bytes);
  if (options.stats != nullptr) {
    if (const auto* ts = options.stats->Get(spec.left_table)) {
      est_left = ts->EstimatedBytes();
    }
    if (const auto* ts = options.stats->Get(spec.right_table)) {
      est_right = ts->EstimatedBytes();
    }
  }
  out.broadcast_left = est_left <= est_right;
  JoinStrategy strategy = options.strategy;
  if (strategy == JoinStrategy::kAuto) {
    // Broadcast ships the small side to the N-1 other nodes; repartition
    // ships the (N-1)/N fraction of both sides that hashes off-node.
    double cost_broadcast = std::min(est_left, est_right) * (n - 1);
    double cost_repartition =
        (est_left + est_right) * static_cast<double>(n - 1) / std::max(n, 1);
    strategy = cost_broadcast <= cost_repartition ? JoinStrategy::kBroadcast
                                                  : JoinStrategy::kRepartition;
  }
  out.strategy = strategy;

  // Phase 3 (thread pool): move rows through the exchange. Each worker only
  // writes channels whose source is its own node, so sends are race-free by
  // construction (channels are mutex-guarded regardless).
  exchange::ExchangeNetwork left_net(n, batch_rows);
  exchange::ExchangeNetwork right_net(n, batch_rows);
  if (strategy == JoinStrategy::kBroadcast) {
    RunScatter(options.parallel, options.pool, n, [&](int i) {
      if (out.broadcast_left) {
        exchange::BroadcastRows(&left_net, i, inputs[static_cast<size_t>(i)].left);
      } else {
        exchange::BroadcastRows(&right_net, i,
                                inputs[static_cast<size_t>(i)].right);
      }
    });
  } else {
    RunScatter(options.parallel, options.pool, n, [&](int i) {
      exchange::ShufflePartition(&left_net, i,
                                 inputs[static_cast<size_t>(i)].left,
                                 left_key_idx);
      exchange::ShufflePartition(&right_net, i,
                                 inputs[static_cast<size_t>(i)].right,
                                 right_key_idx);
    });
  }

  // Phase 4 (thread pool): each DN assembles its slice (local rows for the
  // side that did not move, exchange-delivered rows for the one that did)
  // and runs the ordinary hash join from src/sql on it.
  struct ShardJoin {
    Status status = Status::OK();
    Table result;
  };
  std::vector<ShardJoin> joins(static_cast<size_t>(n));
  RunScatter(options.parallel, options.pool, n, [&](int j) {
    ShardJoin& slot = joins[static_cast<size_t>(j)];
    ShardInput& in = inputs[static_cast<size_t>(j)];
    auto side_rows = [&](bool is_left) -> Result<std::vector<Row>> {
      const bool moved = strategy == JoinStrategy::kRepartition ||
                         (is_left == out.broadcast_left);
      if (!moved) return std::move(is_left ? in.left : in.right);
      return (is_left ? left_net : right_net).ReceiveRows(j);
    };
    auto lrows = side_rows(true);
    if (!lrows.ok()) {
      slot.status = lrows.status();
      return;
    }
    auto rrows = side_rows(false);
    if (!rrows.ok()) {
      slot.status = rrows.status();
      return;
    }
    sql::ExprPtr pred = Expr::EqCols(spec.left_key, spec.right_key);
    if (spec.residual) pred = Expr::And(pred, spec.residual->Clone());
    sql::PlanPtr plan = sql::MakeJoin(
        sql::MakeValues(Table(left_schema, std::move(*lrows))),
        sql::MakeValues(Table(right_schema, std::move(*rrows))), pred);
    sql::Catalog catalog;  // Values plans read no tables
    sql::Executor exec(&catalog);
    auto joined = exec.Execute(plan);
    if (!joined.ok()) {
      slot.status = joined.status();
      return;
    }
    slot.result = std::move(*joined);
  });

  // Simulated latency: sends start when a node's scans are done; node j can
  // join once the slowest sender shipping to it has finished (+1 hop) and
  // its own decode service completes; then one join statement per DN.
  exchange::ExchangeLatencyParams params{
      cluster->latency().network_hop_us,
      cluster->latency().exchange_batch_service_us,
      cluster->latency().exchange_kb_service_us};
  std::vector<int> resources(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    resources[static_cast<size_t>(i)] = cluster->dn_resource(serving[i]);
  }
  std::vector<SimTime> exchange_done = exchange::SimulateExchange(
      &cluster->scheduler(), resources,
      {&left_net, &right_net}, scan_done, params);
  SimTime parallel_done = scatter_start;
  SimTime serial_sum = 0;
  for (int j = 0; j < n; ++j) {
    SimTime done =
        cluster->ChargeDnStmt(serving[j], exchange_done[static_cast<size_t>(j)]);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }

  // Gather: concatenate per-DN partial results deterministically in DN
  // order. The CN pays the per-partial merge plus a size-aware receive for
  // the joined rows (joins, unlike aggregates, gather row-sized state).
  Table result(left_schema.Concat(right_schema));
  for (auto& slot : joins) {
    OFI_RETURN_NOT_OK(slot.status);
    out.result_bytes += exchange::EncodedBytes(slot.result.rows(), batch_rows);
    for (auto& row : slot.result.mutable_rows()) {
      OFI_RETURN_NOT_OK(result.Append(std::move(row)));
    }
  }
  const SimTime gather_cost =
      static_cast<SimTime>(n) * cluster->latency().cn_gather_service_us +
      exchange::ExchangeServiceTime(out.result_bytes, 0, params);
  out.sim_latency_us = (parallel_done - scatter_start) + gather_cost;
  out.sim_latency_serial_us = serial_sum + gather_cost;
  reader.AdvanceTo(parallel_done + gather_cost);
  OFI_RETURN_NOT_OK(reader.Commit());

  // Accounting + metrics: cross-DN bytes per strategy, per-channel stats
  // with exchange-node indices mapped back to real DN ids.
  out.shuffle_bytes = strategy == JoinStrategy::kRepartition
                          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
                          : 0;
  out.broadcast_bytes =
      strategy == JoinStrategy::kBroadcast
          ? left_net.CrossNodeBytes() + right_net.CrossNodeBytes()
          : 0;
  out.exchange_batches =
      left_net.CrossNodeBatches() + right_net.CrossNodeBatches();
  for (const auto* net : {&left_net, &right_net}) {
    for (exchange::ChannelStats ch : net->Stats()) {
      ch.src = serving[ch.src];
      ch.dst = serving[ch.dst];
      // Merge the two relations' traffic per (src,dst) pair.
      auto it = std::find_if(out.channels.begin(), out.channels.end(),
                             [&](const exchange::ChannelStats& c) {
                               return c.src == ch.src && c.dst == ch.dst;
                             });
      if (it == out.channels.end()) {
        out.channels.push_back(ch);
      } else {
        it->bytes += ch.bytes;
        it->batches += ch.batches;
      }
      if (ch.src != ch.dst) {
        const std::string pair = "exchange.bytes.d" + std::to_string(ch.src) +
                                 "->d" + std::to_string(ch.dst);
        cluster->metrics().Add(pair, static_cast<int64_t>(ch.bytes));
      }
    }
  }
  cluster->metrics().Add("exchange.bytes",
                         static_cast<int64_t>(out.shuffle_bytes +
                                              out.broadcast_bytes));
  cluster->metrics().Add("exchange.batches",
                         static_cast<int64_t>(out.exchange_batches));
  cluster->metrics().Add(strategy == JoinStrategy::kBroadcast
                             ? "join.broadcast"
                             : "join.repartition");
  out.table = std::move(result);
  return out;
}

}  // namespace ofi::cluster
