#include "cluster/mpp_query.h"

#include <algorithm>
#include <map>

#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::AggSpec;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Table;
using sql::TypeId;
using sql::Value;

/// The partial aggregates one requested aggregate decomposes into, and how
/// the final stage merges them.
struct PartialPlan {
  std::vector<AggSpec> partial;  // computed per shard
  // Final-stage spec over the unioned partials; AVG needs a post-division.
  std::vector<AggSpec> final_specs;
  bool is_avg = false;
  std::string sum_name, count_name;  // for AVG
};

PartialPlan DecomposeAgg(const DistributedAgg& agg) {
  PartialPlan plan;
  switch (agg.func) {
    case AggFunc::kCount:
      plan.partial = {AggSpec{AggFunc::kCount,
                              agg.column.empty() ? nullptr
                                                 : Expr::ColumnRef(agg.column),
                              agg.name}};
      // Final: COUNT partials SUM together.
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      plan.partial = {AggSpec{agg.func, Expr::ColumnRef(agg.column), agg.name}};
      plan.final_specs = {
          AggSpec{agg.func == AggFunc::kSum ? AggFunc::kSum : agg.func,
                  Expr::ColumnRef(agg.name), agg.name}};
      break;
    case AggFunc::kAvg:
      // AVG decomposes into (SUM, COUNT); the CN divides at the end.
      plan.is_avg = true;
      plan.sum_name = agg.name + "$sum";
      plan.count_name = agg.name + "$cnt";
      plan.partial = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(agg.column), plan.sum_name},
          AggSpec{AggFunc::kCount, Expr::ColumnRef(agg.column), plan.count_name}};
      plan.final_specs = {
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.sum_name), plan.sum_name},
          AggSpec{AggFunc::kSum, Expr::ColumnRef(plan.count_name),
                  plan.count_name}};
      break;
  }
  return plan;
}

size_t TableBytes(const Table& t) {
  size_t n = 0;
  for (const auto& row : t.rows()) n += sql::RowByteSize(row);
  return n;
}

std::string BareName(const std::string& qualified) {
  auto dot = qualified.rfind('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

/// Output column names for the group-by keys. A bare name is used only when
/// it stays unambiguous across every output column; `GROUP BY a.x, b.x`
/// keeps the qualified names (both stripping to `x` would collide in the
/// projected schema). Returns InvalidArgument if names collide even
/// qualified.
Result<std::vector<std::string>> GroupOutputNames(
    const std::vector<std::string>& group_by,
    const std::vector<DistributedAgg>& aggs) {
  std::map<std::string, int> bare_uses;
  for (const auto& g : group_by) ++bare_uses[BareName(g)];
  for (const auto& a : aggs) ++bare_uses[a.name];

  std::vector<std::string> names;
  names.reserve(group_by.size());
  for (const auto& g : group_by) {
    const std::string bare = BareName(g);
    names.push_back(bare_uses[bare] > 1 ? g : bare);
  }

  std::map<std::string, int> final_uses;
  for (const auto& n : names) ++final_uses[n];
  for (const auto& a : aggs) ++final_uses[a.name];
  for (const auto& [name, uses] : final_uses) {
    if (uses > 1) {
      return Status::InvalidArgument("ambiguous output column: " + name);
    }
  }
  return names;
}

/// One shard's scatter output, filled in by a pool worker.
struct ShardPartial {
  Status status = Status::OK();
  Table partial;
  size_t partial_bytes = 0;
  size_t naive_bytes = 0;
};

}  // namespace

Result<DistributedResult> DistributedAggregate(
    Cluster* cluster, const std::string& table, sql::ExprPtr filter,
    std::vector<std::string> group_by, std::vector<DistributedAgg> aggs,
    const DistributedOptions& options) {
  DistributedResult out;

  std::vector<PartialPlan> plans;
  plans.reserve(aggs.size());
  for (const auto& a : aggs) plans.push_back(DecomposeAgg(a));

  OFI_ASSIGN_OR_RETURN(std::vector<std::string> group_names,
                       GroupOutputNames(group_by, aggs));

  // The nodes serving data, one entry per live serving node: after a
  // failover the promoted backup hosts the failed primary's rows in the
  // same MVCC tables as its own shard, so scanning each serving node once
  // covers every shard exactly once.
  std::vector<int> serving;
  for (int shard = 0; shard < cluster->num_dns(); ++shard) {
    int dn = cluster->EffectiveDn(shard);
    if (std::find(serving.begin(), serving.end(), dn) == serving.end()) {
      serving.push_back(dn);
    }
  }
  const int num_serving = static_cast<int>(serving.size());

  // One consistent snapshot across every shard.
  Txn reader = cluster->Begin(TxnScope::kMultiShard);

  // Scatter, phase 1 (coordinator thread): open every shard context and
  // charge the simulated fan-out. Every DN receives the request at
  // scatter_start and performs snapshot-merge + partial scan serialized on
  // its own resource, so the parallel critical path is the slowest DN; the
  // old serial model (round trips chained back-to-back) is kept alongside
  // for comparison.
  const SimTime scatter_start = reader.now();
  SimTime parallel_done = scatter_start;
  SimTime serial_sum = 0;
  std::vector<storage::MvccTable*> shard_tables(serving.size(), nullptr);
  for (int i = 0; i < num_serving; ++i) {
    const int dn = serving[i];
    OFI_ASSIGN_OR_RETURN(shard_tables[i], cluster->dn(dn)->GetTable(table));
    OFI_ASSIGN_OR_RETURN(SimTime merged_at,
                         reader.PrepareShard(dn, scatter_start));
    // The partial scan+aggregate statement, shipping group-sized state back.
    SimTime done = cluster->ChargeDnStmt(dn, merged_at);
    parallel_done = std::max(parallel_done, done);
    serial_sum += done - scatter_start;
  }
  const SimTime gather_cost =
      static_cast<SimTime>(num_serving) * cluster->latency().cn_gather_service_us;
  out.sim_latency_us = (parallel_done - scatter_start) + gather_cost;
  out.sim_latency_serial_us = serial_sum + gather_cost;

  // Scatter, phase 2 (thread pool): per-DN visible scan + partial
  // aggregation. Workers touch only read paths (storage/txn shared locks)
  // plus their own slot; expression trees are cloned per worker because
  // Bind() caches column indices in place.
  std::vector<ShardPartial> slots(serving.size());
  auto run_shard = [&](int i) {
    const int dn = serving[i];
    ShardPartial& slot = slots[static_cast<size_t>(i)];
    auto rows = reader.ScanShardPrepared(table, dn);
    if (!rows.ok()) {
      slot.status = rows.status();
      return;
    }
    for (const auto& row : *rows) slot.naive_bytes += sql::RowByteSize(row);

    sql::Catalog shard_catalog;
    shard_catalog.Register(
        "shard", Table(shard_tables[static_cast<size_t>(i)]->schema(),
                       std::move(*rows)));
    std::vector<AggSpec> partial_specs;
    for (const auto& p : plans) {
      for (const auto& spec : p.partial) {
        partial_specs.push_back(
            AggSpec{spec.func, spec.arg ? spec.arg->Clone() : nullptr,
                    spec.name});
      }
    }
    sql::PlanPtr scan =
        sql::MakeScan("shard", filter ? filter->Clone() : nullptr);
    sql::PlanPtr agg_plan = sql::MakeAggregate(scan, group_by, partial_specs);
    sql::Executor exec(&shard_catalog);
    auto partial = exec.Execute(agg_plan);
    if (!partial.ok()) {
      slot.status = partial.status();
      return;
    }
    slot.partial_bytes = TableBytes(*partial);
    slot.partial = std::move(*partial);
  };
  if (options.parallel) {
    common::ThreadPool* pool =
        options.pool ? options.pool : &common::ThreadPool::Shared();
    pool->ParallelFor(num_serving, run_shard);
  } else {
    for (int i = 0; i < num_serving; ++i) run_shard(i);
  }

  // Gather: merge partials deterministically in DN order.
  Table partial_union;
  bool first_shard = true;
  for (auto& slot : slots) {
    OFI_RETURN_NOT_OK(slot.status);
    out.partial_bytes += slot.partial_bytes;
    out.naive_bytes += slot.naive_bytes;
    if (first_shard) {
      partial_union = std::move(slot.partial);
      first_shard = false;
    } else {
      for (auto& row : slot.partial.mutable_rows()) {
        OFI_RETURN_NOT_OK(partial_union.Append(std::move(row)));
      }
    }
  }
  // The CN resumes once the last partial has been gathered.
  reader.AdvanceTo(parallel_done + gather_cost);
  OFI_RETURN_NOT_OK(reader.Commit());

  // Final aggregation over the partials at the CN.
  sql::Catalog cn_catalog;
  cn_catalog.Register("partials", std::move(partial_union));
  std::vector<AggSpec> final_specs;
  for (const auto& p : plans) {
    final_specs.insert(final_specs.end(), p.final_specs.begin(),
                       p.final_specs.end());
  }
  sql::PlanPtr final_plan =
      sql::MakeAggregate(sql::MakeScan("partials"), group_by, final_specs);
  sql::Executor cn_exec(&cn_catalog);
  OFI_ASSIGN_OR_RETURN(Table merged, cn_exec.Execute(final_plan));

  // Project to the requested names/order. AVG's post-division is done here
  // in code rather than as a `/` expression so the SQL-standard edge case is
  // explicit: a group whose column was NULL on every shard merges to
  // COUNT 0 (and SUM NULL) and must yield NULL, not divide by zero.
  std::vector<Column> out_cols;
  std::vector<size_t> first_col(aggs.size(), 0);
  for (size_t gi = 0; gi < group_by.size(); ++gi) {
    out_cols.push_back(
        Column{group_names[gi], merged.schema().column(gi).type, ""});
  }
  size_t col = group_by.size();
  for (size_t i = 0; i < aggs.size(); ++i) {
    first_col[i] = col;
    if (plans[i].is_avg) {
      out_cols.push_back(Column{aggs[i].name, TypeId::kDouble, ""});
      col += 2;  // sum + count
    } else {
      out_cols.push_back(
          Column{aggs[i].name, merged.schema().column(col).type, ""});
      col += 1;
    }
  }
  Table result{sql::Schema(std::move(out_cols))};
  for (const auto& row : merged.rows()) {
    Row r;
    r.reserve(group_by.size() + aggs.size());
    for (size_t gi = 0; gi < group_by.size(); ++gi) r.push_back(row[gi]);
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (plans[i].is_avg) {
        const Value& sum = row[first_col[i]];
        const Value& count = row[first_col[i] + 1];
        if (sum.is_null() || count.is_null() || count.AsDouble() == 0) {
          r.push_back(Value::Null());
        } else {
          r.push_back(Value(sum.AsDouble() / count.AsDouble()));
        }
      } else {
        r.push_back(row[first_col[i]]);
      }
    }
    OFI_RETURN_NOT_OK(result.Append(std::move(r)));
  }
  out.table = std::move(result);
  return out;
}

}  // namespace ofi::cluster
