/// \file exchange.h
/// \brief The distributed exchange subsystem: moving serialized row batches
/// between data nodes (paper Fig. 1: data nodes "exchange data on-demand and
/// execute the query in parallel"). Before this layer the cluster could only
/// scatter-gather aggregate — rows never crossed shards, so every join was
/// single-node. The exchange provides the two classic MPP data-movement
/// operators:
///
/// * ShufflePartition — hash-repartition: every node splits its local rows
///   by a hash of the join key and ships partition j to node j, so rows
///   with equal keys meet on one node regardless of where they started.
/// * BroadcastRows — every node ships its full local row set to every other
///   node, so one (small) side of a join is complete everywhere.
///
/// Rows move as *serialized* batches through per-(src,dst) channels with
/// byte/batch accounting, because bytes moved is the quantity MPP planners
/// optimize (broadcast ~ |small| x (N-1) vs repartition ~ (|L|+|R|) x
/// (N-1)/N). Delivery is deterministic: a receiver drains channels in
/// source-node order and each channel preserves send order, so downstream
/// operators see a platform-independent row order.
///
/// Channels are *streaming* queues with a bounded in-memory window: a Send
/// that would exceed `max_bytes` of queued (sent, not yet received) payload
/// transparently spills the overflow batch to a per-channel temp file
/// instead of failing. Spilled segments are re-read in send order on the
/// receive path, so delivery order — and therefore query results — are
/// bit-identical to the uncapped run; the query just pays disk I/O in
/// simulated time (see ExchangeLatencyParams). The historical deny-on-cap
/// behavior survives behind an opt-in strict mode (ExchangeSpillConfig::
/// strict), and a shared SpillBudget bounds total on-disk bytes per query.
///
/// The simulated latency model is consistent with the max-over-DNs scatter
/// in cluster/mpp_query.h: every node serializes+sends its outgoing traffic
/// and decodes its incoming traffic as work on its own serialized resource
/// (per-batch overhead + per-KiB payload cost, see LatencyModel), and the
/// exchange completes on node j when the slowest contributing sender has
/// finished plus one network hop — not the serial sum over nodes (which
/// callers still report for comparison). Spilled bytes additionally charge
/// a disk write + read per KiB on the receiving node's resource.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "sql/schema.h"

namespace ofi::cluster::exchange {

// --- Row/batch wire format ---------------------------------------------------
// Batch   := u32 row_count, Row*
// Row     := u32 value_count, Value*
// Value   := u8 TypeId tag, payload
// Payload := bool: u8 | int64/timestamp: i64 LE | double: IEEE bits LE
//          | string: u32 LE length + bytes | null: empty
// All integers little-endian, so encoded bytes (and therefore the byte
// accounting) are platform-independent.

/// Appends the encoding of one value to `out`.
void EncodeValue(const sql::Value& v, std::string* out);
/// Appends the encoding of one row to `out`.
void EncodeRow(const sql::Row& row, std::string* out);
/// Encodes `rows[begin, end)` as one batch.
std::string EncodeBatch(const std::vector<sql::Row>& rows, size_t begin,
                        size_t end);

/// Decodes one batch produced by EncodeBatch; InvalidArgument on corrupt or
/// truncated input.
Result<std::vector<sql::Row>> DecodeBatch(const std::string& buf);

/// Encoded size of a value/row without materializing the bytes (used for
/// the ship-all-rows baseline and planner-side cost estimates).
size_t EncodedValueSize(const sql::Value& v);
size_t EncodedRowSize(const sql::Row& row);
/// Total encoded bytes of `rows` framed into batches of `batch_rows`.
size_t EncodedBytes(const std::vector<sql::Row>& rows, size_t batch_rows);

/// Partition hash, consistent with sql::Value::Equals (1, 1.0 and
/// TIMESTAMP(1) hash identically; NULLs hash together) and stable across
/// platforms (FNV-1a over the normalized payload) — so a repartitioned join
/// routes every matching pair to the same partition on any host.
uint64_t HashForPartition(const sql::Value& v);

// --- Spill-to-disk -----------------------------------------------------------

/// Shared cap on the bytes a query may hold spilled on disk at once, across
/// every consumer (both relations' exchange networks and the join build
/// side). max_bytes == 0 means unbounded; `used` tracks live on-disk bytes
/// (reserved on spill, released when the segment is consumed or discarded).
struct SpillBudget {
  explicit SpillBudget(size_t max = 0) : max_bytes(max) {}
  size_t max_bytes = 0;
  std::atomic<size_t> used{0};

  /// Reserves `n` bytes; false when the budget would be exceeded.
  bool Reserve(size_t n) {
    if (max_bytes == 0) {
      used.fetch_add(n, std::memory_order_relaxed);
      return true;
    }
    size_t cur = used.load(std::memory_order_relaxed);
    while (cur + n <= max_bytes) {
      if (used.compare_exchange_weak(cur, cur + n,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  void Release(size_t n) { used.fetch_sub(n, std::memory_order_relaxed); }
};

/// How a channel handles a Send that would exceed its queued-byte cap.
struct ExchangeSpillConfig {
  /// Directory for spill segment files; empty = the system temp directory.
  std::string temp_dir;
  /// Opt-in strict mode: deny with ResourceExhausted instead of spilling
  /// (the historical behavior, kept for hard admission-control setups).
  bool strict = false;
  /// Shared on-disk byte budget; nullptr = unbounded. Exhaustion denies
  /// like strict mode — the one overflow failure mode that remains.
  SpillBudget* budget = nullptr;
};

/// \brief An append-only temp file of spill segments, with random-access
/// reads. Created lazily on first Append, deleted on Remove()/destruction —
/// a failing query can never leak segments because the owning channel (and
/// network) destructors call Remove().
///
/// Not thread-safe on its own; the owning ExchangeChannel serializes access
/// under its mutex.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile() { Remove(); }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `blob` at the logical end, creating the file on first use.
  /// Returns the segment's offset in `*offset_out`.
  Status Append(const std::string& blob, const std::string& dir,
                size_t* offset_out);
  /// Reads `size` bytes at `offset`; Corruption when the file is shorter
  /// than the recorded segment (truncated/corrupt spill).
  Result<std::string> Read(size_t offset, size_t size);
  /// Rolls the logical end back (failed partial send); later Appends
  /// overwrite the abandoned tail.
  void TruncateTo(size_t logical_end) { end_ = logical_end; }
  /// Closes and unlinks the file now (all segments consumed or discarded).
  void Remove();

  bool active() const { return f_ != nullptr; }
  size_t logical_end() const { return end_; }
  const std::string& path() const { return path_; }

 private:
  FILE* f_ = nullptr;
  std::string path_;
  size_t end_ = 0;  // logical append offset (file may be longer after rollback)
};

// --- Channels ----------------------------------------------------------------

/// Byte/batch accounting for one (src,dst) channel.
struct ChannelStats {
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  size_t batches = 0;
};

/// \brief One directed src->dst streaming mailbox carrying serialized
/// batches. Thread-safe: senders run on thread-pool workers. FIFO: receive
/// order is always send order, spilled or not.
///
/// The in-memory queue is bounded by SendLimits::max_queued_bytes
/// (backpressure): an over-cap Send spills the batch to the channel's temp
/// file instead of growing the queue (or being denied — strict mode only).
/// Once any segment is on disk, subsequent sends spill too until the spill
/// is fully consumed, so disk never reorders ahead of memory.
class ExchangeChannel {
 public:
  /// Per-send policy (owned by the network, shared across its channels).
  struct SendLimits {
    /// Cap on in-memory queued (sent, not yet received) bytes; 0 = no cap.
    size_t max_queued_bytes = 0;
    /// Overflow handling; nullptr with a cap = deny (no spill configured).
    const ExchangeSpillConfig* spill = nullptr;
  };

  /// Snapshot of the send-side state, for rolling back a failed multi-
  /// channel operator send (ShufflePartition / BroadcastRows). Every queued
  /// batch and spill segment carries the monotone send sequence number it
  /// was accepted under, so RollbackTo drops exactly the batches sent after
  /// the Mark — even when a concurrent consumer drained some of them in
  /// between (the pipelined producer-fails-mid-stream path).
  struct Checkpoint {
    size_t batches = 0;
    size_t bytes = 0;
    size_t spilled_bytes = 0;
    size_t spill_segments = 0;
    size_t spill_end = 0;
    uint64_t send_seq = 0;
  };

  ExchangeChannel() = default;
  ~ExchangeChannel() { Discard(); }

  /// Queues one batch, spilling or denying per `limits` (see class docs).
  Status Send(std::string batch, const SendLimits& limits);
  /// Uncapped send (no limit, no spill).
  Status Send(std::string batch) { return Send(std::move(batch), SendLimits{}); }

  /// Removes and returns the oldest queued batch (reading it back from the
  /// spill file when the memory queue is empty); nullopt when the channel
  /// is empty. Corruption when a spill segment cannot be read back whole.
  /// Once the channel is closed with an error, every pop fails fast with
  /// that status — a consumer never sees a silently truncated stream.
  Result<std::optional<std::string>> PopBatch();

  /// Blocking pop for pipelined consumers: waits (condition-variable
  /// wakeup on Send/Close — no spinning) until a batch is available, the
  /// channel is closed, or `timeout_ms` elapses. Returns the batch; nullopt
  /// on clean end-of-stream (closed with OK and fully drained); the close
  /// status when the producer failed (even if undelivered batches remain —
  /// fail fast, never hand out a partial stream); TimedOut on deadline.
  Result<std::optional<std::string>> PopBatchWait(int64_t timeout_ms);

  /// Marks the stream complete. Close(OK) lets waiting consumers drain the
  /// remaining payload and then see end-of-stream; Close(error) propagates
  /// the producer's failure to every current and future pop. Idempotent;
  /// the first non-OK status wins (a later OK close never masks it).
  void Close(Status st = Status::OK());

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }
  Status close_status() const {
    std::lock_guard lock(mu_);
    return close_status_;
  }

  /// Removes and returns every queued batch in send order (memory window
  /// first, then spilled segments — which is exactly send order).
  Result<std::vector<std::string>> Drain();

  /// Drops all queued and spilled payload without delivering it, rolling
  /// the lifetime byte/batch totals back so an aborted exchange does not
  /// inflate traffic accounting; the dropped payload moves to
  /// aborted_bytes(). Deletes the spill file.
  void Discard();

  Checkpoint Mark() const;
  /// Restores the send-side state captured by Mark(), discarding batches
  /// sent since (see Discard for the accounting contract).
  void RollbackTo(const Checkpoint& cp);

  size_t bytes() const {
    std::lock_guard lock(mu_);
    return bytes_;
  }
  size_t batches() const {
    std::lock_guard lock(mu_);
    return batches_;
  }
  size_t queued_bytes() const {
    std::lock_guard lock(mu_);
    return queued_bytes_;
  }
  /// Payload refused by strict mode or an exhausted spill budget.
  size_t denied_bytes() const {
    std::lock_guard lock(mu_);
    return denied_bytes_;
  }
  /// Spilled payload delivered or still deliverable (not reduced by
  /// receives; Discard/RollbackTo move undelivered spill to aborted_bytes).
  size_t spilled_bytes() const {
    std::lock_guard lock(mu_);
    return spilled_bytes_;
  }
  size_t spill_segments() const {
    std::lock_guard lock(mu_);
    return spill_segments_;
  }
  /// Payload dropped by Discard/RollbackTo (failed exchanges).
  size_t aborted_bytes() const {
    std::lock_guard lock(mu_);
    return aborted_bytes_;
  }
  /// Path of the live spill file; empty when nothing is spilled (test and
  /// debugging hook — e.g. the truncated-segment error-path test).
  std::string spill_path() const {
    std::lock_guard lock(mu_);
    return spill_.path();
  }

 private:
  struct MemBatch {
    uint64_t seq = 0;
    std::string payload;
  };
  struct Seg {
    uint64_t seq = 0;
    size_t offset = 0;
    size_t size = 0;
  };

  void DiscardLocked();
  // Pops the oldest batch (memory first, then spill) under mu_; the caller
  // has already checked that something is queued.
  Result<std::string> PopLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;     // signaled on Send and Close
  std::deque<MemBatch> queue_;     // in-memory window (oldest first)
  std::deque<Seg> spill_segs_;     // on-disk overflow, newer than everything in queue_
  SpillFile spill_;
  SpillBudget* budget_ = nullptr;  // budget the live spill bytes are held on
  bool closed_ = false;
  Status close_status_;            // non-OK: producer failed mid-stream
  uint64_t send_seq_ = 0;          // monotone id of the last accepted Send
  size_t bytes_ = 0;    // lifetime accepted payload, rolled back on Discard
  size_t batches_ = 0;
  size_t queued_bytes_ = 0;   // currently in queue_; receives decrement
  size_t denied_bytes_ = 0;   // refused by strict mode / budget
  size_t spilled_bytes_ = 0;  // lifetime payload written to disk
  size_t spill_segments_ = 0;
  size_t aborted_bytes_ = 0;  // dropped by Discard / RollbackTo
};

/// \brief The all-to-all mailbox grid for one exchange step: num_nodes^2
/// channels. Loopback (src == dst) traffic still goes through the codec —
/// the receive path is identical for local and remote rows — but is excluded
/// from the cross-node byte/batch accounting and from simulated network
/// latency, matching a real DN keeping its own partition in memory. Spilled
/// loopback bytes DO count (and charge): disk I/O is paid even for the
/// partition that never crosses the wire.
class ExchangeNetwork {
 public:
  /// `max_channel_bytes` caps each channel's in-memory queued bytes (0 =
  /// unbounded); overflow spills per `spill` (see ExchangeChannel).
  explicit ExchangeNetwork(int num_nodes, size_t batch_rows = 64,
                           size_t max_channel_bytes = 0,
                           ExchangeSpillConfig spill = {})
      : n_(num_nodes),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows),
        max_channel_bytes_(max_channel_bytes),
        spill_(std::move(spill)),
        channels_(static_cast<size_t>(num_nodes) * num_nodes) {}

  int num_nodes() const { return n_; }
  size_t batch_rows() const { return batch_rows_; }
  size_t max_channel_bytes() const { return max_channel_bytes_; }
  const ExchangeSpillConfig& spill_config() const { return spill_; }
  ExchangeChannel::SendLimits send_limits() const {
    return ExchangeChannel::SendLimits{max_channel_bytes_, &spill_};
  }

  ExchangeChannel& channel(int src, int dst) {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }
  const ExchangeChannel& channel(int src, int dst) const {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }

  /// Encodes `rows` into batches of at most batch_rows() and sends them
  /// src -> dst. Safe to call concurrently for distinct `src`. Over-cap
  /// batches spill to disk; fails with ResourceExhausted only in strict
  /// mode or when the spill budget is exhausted.
  Status SendRows(int src, int dst, const std::vector<sql::Row>& rows);

  /// Streams and decodes everything addressed to `dst`, one batch at a
  /// time, concatenated in source-node order then send order (deterministic
  /// receive order, spilled or not). Consumed spill segments free their
  /// budget; a channel's spill file is deleted the moment its last segment
  /// is read.
  Result<std::vector<sql::Row>> ReceiveRows(int dst);

  /// Blocking variant for pipelined consumers: drains each source channel
  /// with PopBatchWait until the producer closes it, in the same
  /// deterministic source-node-then-send order as ReceiveRows — so the
  /// decoded rows are bit-identical regardless of producer/consumer thread
  /// interleaving. Fails with the producer's close status, or TimedOut when
  /// a channel stays open past `timeout_ms`. `batches_out` (optional)
  /// accumulates the number of batches streamed.
  Result<std::vector<sql::Row>> ReceiveRowsWait(int dst, int64_t timeout_ms,
                                                size_t* batches_out = nullptr);

  /// Closes every channel out of `src` with `st` (producer completion or
  /// failure — see ExchangeChannel::Close).
  void CloseAllFrom(int src, Status st = Status::OK());

  /// Per-channel accounting for every non-empty channel, in (src,dst) order.
  std::vector<ChannelStats> Stats() const;

  /// Cross-node traffic (loopback excluded) — the bytes a real network moves.
  size_t CrossNodeBytes() const;
  size_t CrossNodeBatches() const;
  /// Cross-node traffic leaving `src` / entering `dst`.
  size_t OutBytes(int src) const;
  size_t OutBatches(int src) const;
  size_t InBytes(int dst) const;
  size_t InBatches(int dst) const;
  /// Total payload denied across every channel (strict mode / spill budget).
  size_t DeniedBytes() const;
  /// Total payload spilled to disk across every channel (loopback included —
  /// the disk write is real even when the network hop is not).
  size_t SpilledBytes() const;
  size_t SpillSegments() const;
  /// Spilled payload entering `dst` (loopback included), the bytes whose
  /// disk write+read charge lands on the receiving node.
  size_t SpilledInBytes(int dst) const;
  /// Total payload dropped by failed sends' rollback across every channel.
  size_t AbortedBytes() const;

 private:
  int n_;
  size_t batch_rows_;
  size_t max_channel_bytes_;
  ExchangeSpillConfig spill_;
  std::vector<ExchangeChannel> channels_;  // row-major [src][dst]
};

// --- Operators ---------------------------------------------------------------

/// \brief RAII rollback of a multi-destination send: marks every channel out
/// of `src` at construction and rolls all of them back unless Commit() is
/// called — a failed scatter leaves no queued payload and no inflated
/// byte/batch accounting behind (the dropped payload lands in
/// AbortedBytes). Safe under concurrent consumers: rollback drops exactly
/// the post-mark batches (by send sequence), and payload a consumer already
/// drained is still subtracted from the lifetime accounting.
class ScatterGuard {
 public:
  ScatterGuard(ExchangeNetwork* net, int src) : net_(net), src_(src) {
    marks_.reserve(static_cast<size_t>(net->num_nodes()));
    for (int dst = 0; dst < net->num_nodes(); ++dst) {
      marks_.push_back(net->channel(src, dst).Mark());
    }
  }
  ~ScatterGuard() {
    if (armed_) {
      for (int dst = 0; dst < net_->num_nodes(); ++dst) {
        net_->channel(src_, dst).RollbackTo(marks_[static_cast<size_t>(dst)]);
      }
    }
  }
  void Commit() { armed_ = false; }

 private:
  ExchangeNetwork* net_;
  int src_;
  bool armed_ = true;
  std::vector<ExchangeChannel::Checkpoint> marks_;
};

/// \brief Incremental scatter for the pipelined executor: rows are routed
/// one at a time and each destination's batch is flushed into its channel
/// the moment batch_rows() have accumulated — consumers start decoding
/// while the producer is still scanning, instead of after one scatter at
/// the end. The per-channel batch boundaries and payload are bit-identical
/// to ShufflePartition / BroadcastRows over the same rows (same relative
/// row order per partition, same batch_rows framing), so downstream results
/// cannot depend on which execution mode produced them.
///
/// Not thread-safe: one StreamingScatter per producer task. The send log
/// records every flushed batch in producer send order for the deterministic
/// post-hoc latency replay (SimulatePipelinedExchange).
class StreamingScatter {
 public:
  /// One flushed batch, in producer send order.
  struct SendRec {
    int dst = 0;
    size_t bytes = 0;
  };

  /// Broadcast when `key_idx` is nullopt, hash-repartition otherwise.
  StreamingScatter(ExchangeNetwork* net, int src,
                   std::optional<size_t> key_idx);

  /// Routes one row; may flush one or more full batches.
  Status Push(const sql::Row& row);
  /// Flushes every destination's partial tail batch.
  Status Finish();

  const std::vector<SendRec>& send_log() const { return log_; }

 private:
  Status FlushDst(int dst);

  ExchangeNetwork* net_;
  int src_;
  std::optional<size_t> key_idx_;  // nullopt = broadcast
  ExchangeChannel::SendLimits limits_;
  std::vector<std::vector<sql::Row>> pending_;  // per dst
  std::vector<SendRec> log_;
};

/// Hash-repartition: splits `rows` by HashForPartition(row[key_idx]) %
/// num_nodes and sends each partition from `src` to its owning node,
/// preserving relative row order within each partition. Rows with NULL keys
/// are routed like any other value (an inner join drops them at the probe).
/// On failure (strict mode / spill budget) every batch this call already
/// queued is rolled back, so a failed shuffle leaves the network's byte and
/// batch accounting untouched (the payload is counted in AbortedBytes).
Status ShufflePartition(ExchangeNetwork* net, int src,
                        const std::vector<sql::Row>& rows, size_t key_idx);

/// Broadcast: sends every row from `src` to every node (including the
/// loopback copy to itself, so receivers assemble the full relation from
/// channels alone). Same rollback-on-failure contract as ShufflePartition.
Status BroadcastRows(ExchangeNetwork* net, int src,
                     const std::vector<sql::Row>& rows);

// --- Simulated latency -------------------------------------------------------

/// Cost constants for one exchange step (taken from cluster::LatencyModel).
struct ExchangeLatencyParams {
  SimTime network_hop_us = 25;
  SimTime batch_service_us = 4;  // per-batch serialize/deserialize overhead
  SimTime kb_service_us = 2;     // per KiB of payload, sender and receiver
  SimTime spill_write_kb_us = 6;  // per KiB written to a spill file
  SimTime spill_read_kb_us = 4;   // per KiB read back from a spill file
};

/// Serialized service time for moving `bytes` in `batches` on one node.
SimTime ExchangeServiceTime(size_t bytes, size_t batches,
                            const ExchangeLatencyParams& p);

/// Serialized service time for writing `bytes` to spill and reading them
/// back (both halves are paid by the node that owns the spill file).
SimTime SpillServiceTime(size_t bytes, const ExchangeLatencyParams& p);

/// Charges one exchange step on the per-node serialized resources and
/// returns, per node, the time its input rows are fully decoded and ready.
/// Node i starts sending at start[i] (its scan completion); node j can start
/// decoding once the slowest sender shipping to it has finished, plus one
/// network hop — the max-over-senders structure that keeps the parallel
/// exchange flat in N while a chained model grows linearly. Nodes with no
/// cross-node input finish at max(start[j], own send completion). Spilled
/// bytes entering node j (loopback included) additionally charge a disk
/// write + read on j's resource. `nets` traffic is summed (a join
/// repartitions two relations at once).
std::vector<SimTime> SimulateExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p);

/// One batch in a producer's send order, for the pipelined replay: which
/// network (index into `nets`), which destination, how many payload bytes.
struct PipelinedSendRec {
  int net = 0;
  int dst = 0;
  size_t bytes = 0;
};

/// Result of the pipelined exchange replay (per node, indexes match
/// node_resources).
struct PipelinedSimResult {
  /// Input fully decoded AND every producer observed closed — when the
  /// consumer-side join/merge may start.
  std::vector<SimTime> ready;
  /// Producer i finished encoding its last batch (its scatter frontier).
  std::vector<SimTime> producer_done;
  /// Start of the node's first decode charge (ready[j] when it decodes
  /// nothing) — the consumer frontier the overlap test pins down.
  std::vector<SimTime> first_consume;
  /// Sum over consumers of (global producer completion - first_consume),
  /// clamped at 0: the simulated time consumers ran while producers were
  /// still producing. 0 under the barrier model by construction.
  SimTime overlap_us = 0;
  /// Deterministically *modeled* spill under the channel caps (see below);
  /// the real spill counters stay on the channels but depend on thread
  /// timing once consumers drain concurrently.
  size_t modeled_spill_bytes = 0;
};

/// Replays a pipelined exchange deterministically after the (racy) real
/// execution, charging per-batch work instead of one lump per node:
///
/// * Producer i charges each cross-node batch's encode cost sequentially on
///   its own resource from start[i]; the charge uses telescoped cumulative
///   KiB so the total equals the barrier model's ExchangeServiceTime.
///   Loopback batches charge nothing (as in the barrier model) but advance
///   availability.
/// * Consumer j replays its deterministic drain order (net-major, then
///   source-node order, then send order); each cross-node batch's decode is
///   charged at max(consumer cursor, batch availability + one network hop) —
///   gap-fitting on j's own resource, so a node's encode and decode still
///   serialize against each other (a DN cannot overlap with itself).
/// * Channel caps are modeled (not measured): a batch spills iff the
///   in-memory window would overflow at its send time given the replayed
///   drain times, or an earlier spilled batch is still on disk (FIFO);
///   modeled spilled bytes charge SpillServiceTime on the receiver, like
///   the barrier model. This keeps simulated latency deterministic even
///   though the real spill counters race with the consumer.
/// * ready[j] additionally waits for every producer's close (+hop for
///   remote producers): the real consumer cannot finish a channel before
///   observing its close.
PipelinedSimResult SimulatePipelinedExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<std::vector<PipelinedSendRec>>& send_logs,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p);

}  // namespace ofi::cluster::exchange
