/// \file exchange.h
/// \brief The distributed exchange subsystem: moving serialized row batches
/// between data nodes (paper Fig. 1: data nodes "exchange data on-demand and
/// execute the query in parallel"). Before this layer the cluster could only
/// scatter-gather aggregate — rows never crossed shards, so every join was
/// single-node. The exchange provides the two classic MPP data-movement
/// operators:
///
/// * ShufflePartition — hash-repartition: every node splits its local rows
///   by a hash of the join key and ships partition j to node j, so rows
///   with equal keys meet on one node regardless of where they started.
/// * BroadcastRows — every node ships its full local row set to every other
///   node, so one (small) side of a join is complete everywhere.
///
/// Rows move as *serialized* batches through per-(src,dst) channels with
/// byte/batch accounting, because bytes moved is the quantity MPP planners
/// optimize (broadcast ~ |small| x (N-1) vs repartition ~ (|L|+|R|) x
/// (N-1)/N). Delivery is deterministic: a receiver drains channels in
/// source-node order and each channel preserves send order, so downstream
/// operators see a platform-independent row order.
///
/// Channels are *streaming* queues with a bounded in-memory window: a Send
/// that would exceed `max_bytes` of queued (sent, not yet received) payload
/// transparently spills the overflow batch to a per-channel temp file
/// instead of failing. Spilled segments are re-read in send order on the
/// receive path, so delivery order — and therefore query results — are
/// bit-identical to the uncapped run; the query just pays disk I/O in
/// simulated time (see ExchangeLatencyParams). The historical deny-on-cap
/// behavior survives behind an opt-in strict mode (ExchangeSpillConfig::
/// strict), and a shared SpillBudget bounds total on-disk bytes per query.
///
/// The simulated latency model is consistent with the max-over-DNs scatter
/// in cluster/mpp_query.h: every node serializes+sends its outgoing traffic
/// and decodes its incoming traffic as work on its own serialized resource
/// (per-batch overhead + per-KiB payload cost, see LatencyModel), and the
/// exchange completes on node j when the slowest contributing sender has
/// finished plus one network hop — not the serial sum over nodes (which
/// callers still report for comparison). Spilled bytes additionally charge
/// a disk write + read per KiB on the receiving node's resource.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "sql/schema.h"

namespace ofi::cluster::exchange {

// --- Row/batch wire format ---------------------------------------------------
// Batch   := u32 row_count, Row*
// Row     := u32 value_count, Value*
// Value   := u8 TypeId tag, payload
// Payload := bool: u8 | int64/timestamp: i64 LE | double: IEEE bits LE
//          | string: u32 LE length + bytes | null: empty
// All integers little-endian, so encoded bytes (and therefore the byte
// accounting) are platform-independent.

/// Appends the encoding of one value to `out`.
void EncodeValue(const sql::Value& v, std::string* out);
/// Appends the encoding of one row to `out`.
void EncodeRow(const sql::Row& row, std::string* out);
/// Encodes `rows[begin, end)` as one batch.
std::string EncodeBatch(const std::vector<sql::Row>& rows, size_t begin,
                        size_t end);

/// Decodes one batch produced by EncodeBatch; InvalidArgument on corrupt or
/// truncated input.
Result<std::vector<sql::Row>> DecodeBatch(const std::string& buf);

/// Encoded size of a value/row without materializing the bytes (used for
/// the ship-all-rows baseline and planner-side cost estimates).
size_t EncodedValueSize(const sql::Value& v);
size_t EncodedRowSize(const sql::Row& row);
/// Total encoded bytes of `rows` framed into batches of `batch_rows`.
size_t EncodedBytes(const std::vector<sql::Row>& rows, size_t batch_rows);

/// Partition hash, consistent with sql::Value::Equals (1, 1.0 and
/// TIMESTAMP(1) hash identically; NULLs hash together) and stable across
/// platforms (FNV-1a over the normalized payload) — so a repartitioned join
/// routes every matching pair to the same partition on any host.
uint64_t HashForPartition(const sql::Value& v);

// --- Spill-to-disk -----------------------------------------------------------

/// Shared cap on the bytes a query may hold spilled on disk at once, across
/// every consumer (both relations' exchange networks and the join build
/// side). max_bytes == 0 means unbounded; `used` tracks live on-disk bytes
/// (reserved on spill, released when the segment is consumed or discarded).
struct SpillBudget {
  explicit SpillBudget(size_t max = 0) : max_bytes(max) {}
  size_t max_bytes = 0;
  std::atomic<size_t> used{0};

  /// Reserves `n` bytes; false when the budget would be exceeded.
  bool Reserve(size_t n) {
    if (max_bytes == 0) {
      used.fetch_add(n, std::memory_order_relaxed);
      return true;
    }
    size_t cur = used.load(std::memory_order_relaxed);
    while (cur + n <= max_bytes) {
      if (used.compare_exchange_weak(cur, cur + n,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  void Release(size_t n) { used.fetch_sub(n, std::memory_order_relaxed); }
};

/// How a channel handles a Send that would exceed its queued-byte cap.
struct ExchangeSpillConfig {
  /// Directory for spill segment files; empty = the system temp directory.
  std::string temp_dir;
  /// Opt-in strict mode: deny with ResourceExhausted instead of spilling
  /// (the historical behavior, kept for hard admission-control setups).
  bool strict = false;
  /// Shared on-disk byte budget; nullptr = unbounded. Exhaustion denies
  /// like strict mode — the one overflow failure mode that remains.
  SpillBudget* budget = nullptr;
};

/// \brief An append-only temp file of spill segments, with random-access
/// reads. Created lazily on first Append, deleted on Remove()/destruction —
/// a failing query can never leak segments because the owning channel (and
/// network) destructors call Remove().
///
/// Not thread-safe on its own; the owning ExchangeChannel serializes access
/// under its mutex.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile() { Remove(); }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `blob` at the logical end, creating the file on first use.
  /// Returns the segment's offset in `*offset_out`.
  Status Append(const std::string& blob, const std::string& dir,
                size_t* offset_out);
  /// Reads `size` bytes at `offset`; Corruption when the file is shorter
  /// than the recorded segment (truncated/corrupt spill).
  Result<std::string> Read(size_t offset, size_t size);
  /// Rolls the logical end back (failed partial send); later Appends
  /// overwrite the abandoned tail.
  void TruncateTo(size_t logical_end) { end_ = logical_end; }
  /// Closes and unlinks the file now (all segments consumed or discarded).
  void Remove();

  bool active() const { return f_ != nullptr; }
  size_t logical_end() const { return end_; }
  const std::string& path() const { return path_; }

 private:
  FILE* f_ = nullptr;
  std::string path_;
  size_t end_ = 0;  // logical append offset (file may be longer after rollback)
};

// --- Channels ----------------------------------------------------------------

/// Byte/batch accounting for one (src,dst) channel.
struct ChannelStats {
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  size_t batches = 0;
};

/// \brief One directed src->dst streaming mailbox carrying serialized
/// batches. Thread-safe: senders run on thread-pool workers. FIFO: receive
/// order is always send order, spilled or not.
///
/// The in-memory queue is bounded by SendLimits::max_queued_bytes
/// (backpressure): an over-cap Send spills the batch to the channel's temp
/// file instead of growing the queue (or being denied — strict mode only).
/// Once any segment is on disk, subsequent sends spill too until the spill
/// is fully consumed, so disk never reorders ahead of memory.
class ExchangeChannel {
 public:
  /// Per-send policy (owned by the network, shared across its channels).
  struct SendLimits {
    /// Cap on in-memory queued (sent, not yet received) bytes; 0 = no cap.
    size_t max_queued_bytes = 0;
    /// Overflow handling; nullptr with a cap = deny (no spill configured).
    const ExchangeSpillConfig* spill = nullptr;
  };

  /// Snapshot of the send-side state, for rolling back a failed multi-
  /// channel operator send (ShufflePartition / BroadcastRows). Only valid
  /// while no receive runs on this channel between Mark and RollbackTo.
  struct Checkpoint {
    size_t batches = 0;
    size_t bytes = 0;
    size_t spilled_bytes = 0;
    size_t spill_segments = 0;
    size_t mem_count = 0;
    size_t seg_count = 0;
    size_t spill_end = 0;
  };

  ExchangeChannel() = default;
  ~ExchangeChannel() { Discard(); }

  /// Queues one batch, spilling or denying per `limits` (see class docs).
  Status Send(std::string batch, const SendLimits& limits);
  /// Uncapped send (no limit, no spill).
  Status Send(std::string batch) { return Send(std::move(batch), SendLimits{}); }

  /// Removes and returns the oldest queued batch (reading it back from the
  /// spill file when the memory queue is empty); nullopt when the channel
  /// is empty. Corruption when a spill segment cannot be read back whole.
  Result<std::optional<std::string>> PopBatch();

  /// Removes and returns every queued batch in send order (memory window
  /// first, then spilled segments — which is exactly send order).
  Result<std::vector<std::string>> Drain();

  /// Drops all queued and spilled payload without delivering it, rolling
  /// the lifetime byte/batch totals back so an aborted exchange does not
  /// inflate traffic accounting; the dropped payload moves to
  /// aborted_bytes(). Deletes the spill file.
  void Discard();

  Checkpoint Mark() const;
  /// Restores the send-side state captured by Mark(), discarding batches
  /// sent since (see Discard for the accounting contract).
  void RollbackTo(const Checkpoint& cp);

  size_t bytes() const {
    std::lock_guard lock(mu_);
    return bytes_;
  }
  size_t batches() const {
    std::lock_guard lock(mu_);
    return batches_;
  }
  size_t queued_bytes() const {
    std::lock_guard lock(mu_);
    return queued_bytes_;
  }
  /// Payload refused by strict mode or an exhausted spill budget.
  size_t denied_bytes() const {
    std::lock_guard lock(mu_);
    return denied_bytes_;
  }
  /// Spilled payload delivered or still deliverable (not reduced by
  /// receives; Discard/RollbackTo move undelivered spill to aborted_bytes).
  size_t spilled_bytes() const {
    std::lock_guard lock(mu_);
    return spilled_bytes_;
  }
  size_t spill_segments() const {
    std::lock_guard lock(mu_);
    return spill_segments_;
  }
  /// Payload dropped by Discard/RollbackTo (failed exchanges).
  size_t aborted_bytes() const {
    std::lock_guard lock(mu_);
    return aborted_bytes_;
  }
  /// Path of the live spill file; empty when nothing is spilled (test and
  /// debugging hook — e.g. the truncated-segment error-path test).
  std::string spill_path() const {
    std::lock_guard lock(mu_);
    return spill_.path();
  }

 private:
  struct Seg {
    size_t offset = 0;
    size_t size = 0;
  };

  void DiscardLocked();

  mutable std::mutex mu_;
  std::deque<std::string> queue_;  // in-memory window (oldest first)
  std::deque<Seg> spill_segs_;     // on-disk overflow, newer than everything in queue_
  SpillFile spill_;
  SpillBudget* budget_ = nullptr;  // budget the live spill bytes are held on
  size_t bytes_ = 0;    // lifetime accepted payload, rolled back on Discard
  size_t batches_ = 0;
  size_t queued_bytes_ = 0;   // currently in queue_; receives decrement
  size_t denied_bytes_ = 0;   // refused by strict mode / budget
  size_t spilled_bytes_ = 0;  // lifetime payload written to disk
  size_t spill_segments_ = 0;
  size_t aborted_bytes_ = 0;  // dropped by Discard / RollbackTo
};

/// \brief The all-to-all mailbox grid for one exchange step: num_nodes^2
/// channels. Loopback (src == dst) traffic still goes through the codec —
/// the receive path is identical for local and remote rows — but is excluded
/// from the cross-node byte/batch accounting and from simulated network
/// latency, matching a real DN keeping its own partition in memory. Spilled
/// loopback bytes DO count (and charge): disk I/O is paid even for the
/// partition that never crosses the wire.
class ExchangeNetwork {
 public:
  /// `max_channel_bytes` caps each channel's in-memory queued bytes (0 =
  /// unbounded); overflow spills per `spill` (see ExchangeChannel).
  explicit ExchangeNetwork(int num_nodes, size_t batch_rows = 64,
                           size_t max_channel_bytes = 0,
                           ExchangeSpillConfig spill = {})
      : n_(num_nodes),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows),
        max_channel_bytes_(max_channel_bytes),
        spill_(std::move(spill)),
        channels_(static_cast<size_t>(num_nodes) * num_nodes) {}

  int num_nodes() const { return n_; }
  size_t batch_rows() const { return batch_rows_; }
  size_t max_channel_bytes() const { return max_channel_bytes_; }
  const ExchangeSpillConfig& spill_config() const { return spill_; }
  ExchangeChannel::SendLimits send_limits() const {
    return ExchangeChannel::SendLimits{max_channel_bytes_, &spill_};
  }

  ExchangeChannel& channel(int src, int dst) {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }
  const ExchangeChannel& channel(int src, int dst) const {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }

  /// Encodes `rows` into batches of at most batch_rows() and sends them
  /// src -> dst. Safe to call concurrently for distinct `src`. Over-cap
  /// batches spill to disk; fails with ResourceExhausted only in strict
  /// mode or when the spill budget is exhausted.
  Status SendRows(int src, int dst, const std::vector<sql::Row>& rows);

  /// Streams and decodes everything addressed to `dst`, one batch at a
  /// time, concatenated in source-node order then send order (deterministic
  /// receive order, spilled or not). Consumed spill segments free their
  /// budget; a channel's spill file is deleted the moment its last segment
  /// is read.
  Result<std::vector<sql::Row>> ReceiveRows(int dst);

  /// Per-channel accounting for every non-empty channel, in (src,dst) order.
  std::vector<ChannelStats> Stats() const;

  /// Cross-node traffic (loopback excluded) — the bytes a real network moves.
  size_t CrossNodeBytes() const;
  size_t CrossNodeBatches() const;
  /// Cross-node traffic leaving `src` / entering `dst`.
  size_t OutBytes(int src) const;
  size_t OutBatches(int src) const;
  size_t InBytes(int dst) const;
  size_t InBatches(int dst) const;
  /// Total payload denied across every channel (strict mode / spill budget).
  size_t DeniedBytes() const;
  /// Total payload spilled to disk across every channel (loopback included —
  /// the disk write is real even when the network hop is not).
  size_t SpilledBytes() const;
  size_t SpillSegments() const;
  /// Spilled payload entering `dst` (loopback included), the bytes whose
  /// disk write+read charge lands on the receiving node.
  size_t SpilledInBytes(int dst) const;
  /// Total payload dropped by failed sends' rollback across every channel.
  size_t AbortedBytes() const;

 private:
  int n_;
  size_t batch_rows_;
  size_t max_channel_bytes_;
  ExchangeSpillConfig spill_;
  std::vector<ExchangeChannel> channels_;  // row-major [src][dst]
};

// --- Operators ---------------------------------------------------------------

/// Hash-repartition: splits `rows` by HashForPartition(row[key_idx]) %
/// num_nodes and sends each partition from `src` to its owning node,
/// preserving relative row order within each partition. Rows with NULL keys
/// are routed like any other value (an inner join drops them at the probe).
/// On failure (strict mode / spill budget) every batch this call already
/// queued is rolled back, so a failed shuffle leaves the network's byte and
/// batch accounting untouched (the payload is counted in AbortedBytes).
Status ShufflePartition(ExchangeNetwork* net, int src,
                        const std::vector<sql::Row>& rows, size_t key_idx);

/// Broadcast: sends every row from `src` to every node (including the
/// loopback copy to itself, so receivers assemble the full relation from
/// channels alone). Same rollback-on-failure contract as ShufflePartition.
Status BroadcastRows(ExchangeNetwork* net, int src,
                     const std::vector<sql::Row>& rows);

// --- Simulated latency -------------------------------------------------------

/// Cost constants for one exchange step (taken from cluster::LatencyModel).
struct ExchangeLatencyParams {
  SimTime network_hop_us = 25;
  SimTime batch_service_us = 4;  // per-batch serialize/deserialize overhead
  SimTime kb_service_us = 2;     // per KiB of payload, sender and receiver
  SimTime spill_write_kb_us = 6;  // per KiB written to a spill file
  SimTime spill_read_kb_us = 4;   // per KiB read back from a spill file
};

/// Serialized service time for moving `bytes` in `batches` on one node.
SimTime ExchangeServiceTime(size_t bytes, size_t batches,
                            const ExchangeLatencyParams& p);

/// Serialized service time for writing `bytes` to spill and reading them
/// back (both halves are paid by the node that owns the spill file).
SimTime SpillServiceTime(size_t bytes, const ExchangeLatencyParams& p);

/// Charges one exchange step on the per-node serialized resources and
/// returns, per node, the time its input rows are fully decoded and ready.
/// Node i starts sending at start[i] (its scan completion); node j can start
/// decoding once the slowest sender shipping to it has finished, plus one
/// network hop — the max-over-senders structure that keeps the parallel
/// exchange flat in N while a chained model grows linearly. Nodes with no
/// cross-node input finish at max(start[j], own send completion). Spilled
/// bytes entering node j (loopback included) additionally charge a disk
/// write + read on j's resource. `nets` traffic is summed (a join
/// repartitions two relations at once).
std::vector<SimTime> SimulateExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p);

}  // namespace ofi::cluster::exchange
