/// \file exchange.h
/// \brief The distributed exchange subsystem: moving serialized row batches
/// between data nodes (paper Fig. 1: data nodes "exchange data on-demand and
/// execute the query in parallel"). Before this layer the cluster could only
/// scatter-gather aggregate — rows never crossed shards, so every join was
/// single-node. The exchange provides the two classic MPP data-movement
/// operators:
///
/// * ShufflePartition — hash-repartition: every node splits its local rows
///   by a hash of the join key and ships partition j to node j, so rows
///   with equal keys meet on one node regardless of where they started.
/// * BroadcastRows — every node ships its full local row set to every other
///   node, so one (small) side of a join is complete everywhere.
///
/// Rows move as *serialized* batches through per-(src,dst) channels with
/// byte/batch accounting, because bytes moved is the quantity MPP planners
/// optimize (broadcast ~ |small| x (N-1) vs repartition ~ (|L|+|R|) x
/// (N-1)/N). Delivery is deterministic: a receiver drains channels in
/// source-node order and each channel preserves send order, so downstream
/// operators see a platform-independent row order.
///
/// The simulated latency model is consistent with the max-over-DNs scatter
/// in cluster/mpp_query.h: every node serializes+sends its outgoing traffic
/// and decodes its incoming traffic as work on its own serialized resource
/// (per-batch overhead + per-KiB payload cost, see LatencyModel), and the
/// exchange completes on node j when the slowest contributing sender has
/// finished plus one network hop — not the serial sum over nodes (which
/// callers still report for comparison).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "sql/schema.h"

namespace ofi::cluster::exchange {

// --- Row/batch wire format ---------------------------------------------------
// Batch   := u32 row_count, Row*
// Row     := u32 value_count, Value*
// Value   := u8 TypeId tag, payload
// Payload := bool: u8 | int64/timestamp: i64 LE | double: IEEE bits LE
//          | string: u32 LE length + bytes | null: empty
// All integers little-endian, so encoded bytes (and therefore the byte
// accounting) are platform-independent.

/// Appends the encoding of one value to `out`.
void EncodeValue(const sql::Value& v, std::string* out);
/// Appends the encoding of one row to `out`.
void EncodeRow(const sql::Row& row, std::string* out);
/// Encodes `rows[begin, end)` as one batch.
std::string EncodeBatch(const std::vector<sql::Row>& rows, size_t begin,
                        size_t end);

/// Decodes one batch produced by EncodeBatch; InvalidArgument on corrupt or
/// truncated input.
Result<std::vector<sql::Row>> DecodeBatch(const std::string& buf);

/// Encoded size of a value/row without materializing the bytes (used for
/// the ship-all-rows baseline and planner-side cost estimates).
size_t EncodedValueSize(const sql::Value& v);
size_t EncodedRowSize(const sql::Row& row);
/// Total encoded bytes of `rows` framed into batches of `batch_rows`.
size_t EncodedBytes(const std::vector<sql::Row>& rows, size_t batch_rows);

/// Partition hash, consistent with sql::Value::Equals (1, 1.0 and
/// TIMESTAMP(1) hash identically; NULLs hash together) and stable across
/// platforms (FNV-1a over the normalized payload) — so a repartitioned join
/// routes every matching pair to the same partition on any host.
uint64_t HashForPartition(const sql::Value& v);

// --- Channels ----------------------------------------------------------------

/// Byte/batch accounting for one (src,dst) channel.
struct ChannelStats {
  int src = 0;
  int dst = 0;
  size_t bytes = 0;
  size_t batches = 0;
};

/// \brief One directed src->dst mailbox carrying serialized batches.
/// Thread-safe: senders run on thread-pool workers. Order-preserving.
/// Queued (undrained) bytes can be capped: a Send that would exceed
/// `max_bytes` is denied with ResourceExhausted instead of growing the
/// queue without bound, and the denied payload is counted for metrics.
class ExchangeChannel {
 public:
  /// `max_bytes` caps the bytes queued (sent, not yet drained) in this
  /// channel; 0 = unbounded (the historical behavior).
  Status Send(std::string batch, size_t max_bytes = 0) {
    std::lock_guard lock(mu_);
    if (max_bytes != 0 && queued_bytes_ + batch.size() > max_bytes) {
      denied_bytes_ += batch.size();
      return Status::ResourceExhausted(
          "exchange channel over byte limit: " +
          std::to_string(queued_bytes_ + batch.size()) + " > " +
          std::to_string(max_bytes));
    }
    bytes_ += batch.size();
    queued_bytes_ += batch.size();
    ++batches_;
    queue_.push_back(std::move(batch));
    return Status::OK();
  }

  /// Removes and returns every queued batch in send order.
  std::vector<std::string> Drain() {
    std::lock_guard lock(mu_);
    std::vector<std::string> out;
    out.swap(queue_);
    queued_bytes_ = 0;
    return out;
  }

  size_t bytes() const {
    std::lock_guard lock(mu_);
    return bytes_;
  }
  size_t batches() const {
    std::lock_guard lock(mu_);
    return batches_;
  }
  size_t queued_bytes() const {
    std::lock_guard lock(mu_);
    return queued_bytes_;
  }
  size_t denied_bytes() const {
    std::lock_guard lock(mu_);
    return denied_bytes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> queue_;
  size_t bytes_ = 0;    // lifetime total, not decremented by Drain
  size_t batches_ = 0;
  size_t queued_bytes_ = 0;  // currently enqueued; Drain resets to 0
  size_t denied_bytes_ = 0;  // payload refused by the byte limit
};

/// \brief The all-to-all mailbox grid for one exchange step: num_nodes^2
/// channels. Loopback (src == dst) traffic still goes through the codec —
/// the receive path is identical for local and remote rows — but is excluded
/// from the cross-node byte/batch accounting and from simulated latency,
/// matching a real DN keeping its own partition in memory.
class ExchangeNetwork {
 public:
  /// `max_channel_bytes` caps each channel's queued bytes (0 = unbounded);
  /// see ExchangeChannel::Send.
  explicit ExchangeNetwork(int num_nodes, size_t batch_rows = 64,
                           size_t max_channel_bytes = 0)
      : n_(num_nodes),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows),
        max_channel_bytes_(max_channel_bytes),
        channels_(static_cast<size_t>(num_nodes) * num_nodes) {}

  int num_nodes() const { return n_; }
  size_t batch_rows() const { return batch_rows_; }
  size_t max_channel_bytes() const { return max_channel_bytes_; }

  ExchangeChannel& channel(int src, int dst) {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }
  const ExchangeChannel& channel(int src, int dst) const {
    return channels_[static_cast<size_t>(src) * n_ + dst];
  }

  /// Encodes `rows` into batches of at most batch_rows() and sends them
  /// src -> dst. Safe to call concurrently for distinct `src`. Fails with
  /// ResourceExhausted when the channel byte limit would be exceeded.
  Status SendRows(int src, int dst, const std::vector<sql::Row>& rows);

  /// Drains and decodes everything addressed to `dst`, concatenated in
  /// source-node order (deterministic receive order).
  Result<std::vector<sql::Row>> ReceiveRows(int dst);

  /// Per-channel accounting for every non-empty channel, in (src,dst) order.
  std::vector<ChannelStats> Stats() const;

  /// Cross-node traffic (loopback excluded) — the bytes a real network moves.
  size_t CrossNodeBytes() const;
  size_t CrossNodeBatches() const;
  /// Cross-node traffic leaving `src` / entering `dst`.
  size_t OutBytes(int src) const;
  size_t OutBatches(int src) const;
  size_t InBytes(int dst) const;
  size_t InBatches(int dst) const;
  /// Total payload denied across every channel by the byte limit.
  size_t DeniedBytes() const;

 private:
  int n_;
  size_t batch_rows_;
  size_t max_channel_bytes_;
  std::vector<ExchangeChannel> channels_;  // row-major [src][dst]
};

// --- Operators ---------------------------------------------------------------

/// Hash-repartition: splits `rows` by HashForPartition(row[key_idx]) %
/// num_nodes and sends each partition from `src` to its owning node,
/// preserving relative row order within each partition. Rows with NULL keys
/// are routed like any other value (an inner join drops them at the probe).
/// ResourceExhausted when a channel byte limit denies a batch.
Status ShufflePartition(ExchangeNetwork* net, int src,
                        const std::vector<sql::Row>& rows, size_t key_idx);

/// Broadcast: sends every row from `src` to every node (including the
/// loopback copy to itself, so receivers assemble the full relation from
/// channels alone). ResourceExhausted when a channel byte limit denies a
/// batch.
Status BroadcastRows(ExchangeNetwork* net, int src,
                     const std::vector<sql::Row>& rows);

// --- Simulated latency -------------------------------------------------------

/// Cost constants for one exchange step (taken from cluster::LatencyModel).
struct ExchangeLatencyParams {
  SimTime network_hop_us = 25;
  SimTime batch_service_us = 4;  // per-batch serialize/deserialize overhead
  SimTime kb_service_us = 2;     // per KiB of payload, sender and receiver
};

/// Serialized service time for moving `bytes` in `batches` on one node.
SimTime ExchangeServiceTime(size_t bytes, size_t batches,
                            const ExchangeLatencyParams& p);

/// Charges one exchange step on the per-node serialized resources and
/// returns, per node, the time its input rows are fully decoded and ready.
/// Node i starts sending at start[i] (its scan completion); node j can start
/// decoding once the slowest sender shipping to it has finished, plus one
/// network hop — the max-over-senders structure that keeps the parallel
/// exchange flat in N while a chained model grows linearly. Nodes with no
/// cross-node input finish at max(start[j], own send completion).
/// `nets` traffic is summed (a join repartitions two relations at once).
std::vector<SimTime> SimulateExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p);

}  // namespace ofi::cluster::exchange
