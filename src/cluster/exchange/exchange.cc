#include "cluster/exchange/exchange.h"

#include <algorithm>
#include <cstring>

namespace ofi::cluster::exchange {
namespace {

using sql::Row;
using sql::TypeId;
using sql::Value;

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool ReadU8(const std::string& buf, size_t* off, uint8_t* v) {
  if (*off + 1 > buf.size()) return false;
  *v = static_cast<uint8_t>(buf[(*off)++]);
  return true;
}

bool ReadU32(const std::string& buf, size_t* off, uint32_t* v) {
  if (*off + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[*off + i])) << (8 * i);
  }
  *off += 4;
  return true;
}

bool ReadU64(const std::string& buf, size_t* off, uint64_t* v) {
  if (*off + 8 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[*off + i])) << (8 * i);
  }
  *off += 8;
  return true;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<Value> DecodeValue(const std::string& buf, size_t* off) {
  uint8_t tag;
  if (!ReadU8(buf, off, &tag)) {
    return Status::InvalidArgument("exchange batch truncated (value tag)");
  }
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      uint8_t b;
      if (!ReadU8(buf, off, &b)) {
        return Status::InvalidArgument("exchange batch truncated (bool)");
      }
      return Value(b != 0);
    }
    case TypeId::kInt64: {
      uint64_t v;
      if (!ReadU64(buf, off, &v)) {
        return Status::InvalidArgument("exchange batch truncated (int64)");
      }
      return Value(static_cast<int64_t>(v));
    }
    case TypeId::kTimestamp: {
      uint64_t v;
      if (!ReadU64(buf, off, &v)) {
        return Status::InvalidArgument("exchange batch truncated (timestamp)");
      }
      return Value::Timestamp(static_cast<int64_t>(v));
    }
    case TypeId::kDouble: {
      uint64_t bits;
      if (!ReadU64(buf, off, &bits)) {
        return Status::InvalidArgument("exchange batch truncated (double)");
      }
      return Value(BitsToDouble(bits));
    }
    case TypeId::kString: {
      uint32_t len;
      if (!ReadU32(buf, off, &len) || *off + len > buf.size()) {
        return Status::InvalidArgument("exchange batch truncated (string)");
      }
      std::string s = buf.substr(*off, len);
      *off += len;
      return Value(std::move(s));
    }
  }
  return Status::InvalidArgument("exchange batch: unknown type tag " +
                                 std::to_string(tag));
}

// FNV-1a over normalized payload bytes; see HashForPartition contract.
struct Fnv {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Mix(uint8_t b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  void Mix64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Mix(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
};

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  AppendU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      AppendU8(out, v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      AppendU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kDouble:
      AppendU64(out, DoubleBits(v.AsDouble()));
      break;
    case TypeId::kString:
      AppendU32(out, static_cast<uint32_t>(v.AsString().size()));
      out->append(v.AsString());
      break;
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const auto& v : row) EncodeValue(v, out);
}

std::string EncodeBatch(const std::vector<Row>& rows, size_t begin, size_t end) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) EncodeRow(rows[i], &out);
  return out;
}

Result<std::vector<Row>> DecodeBatch(const std::string& buf) {
  size_t off = 0;
  uint32_t num_rows;
  if (!ReadU32(buf, &off, &num_rows)) {
    return Status::InvalidArgument("exchange batch truncated (row count)");
  }
  std::vector<Row> rows;
  rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t num_vals;
    if (!ReadU32(buf, &off, &num_vals)) {
      return Status::InvalidArgument("exchange batch truncated (value count)");
    }
    Row row;
    row.reserve(num_vals);
    for (uint32_t c = 0; c < num_vals; ++c) {
      OFI_ASSIGN_OR_RETURN(Value v, DecodeValue(buf, &off));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  if (off != buf.size()) {
    return Status::InvalidArgument("exchange batch has trailing bytes");
  }
  return rows;
}

size_t EncodedValueSize(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull: return 1;
    case TypeId::kBool: return 2;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kDouble: return 9;
    case TypeId::kString: return 5 + v.AsString().size();
  }
  return 1;
}

size_t EncodedRowSize(const Row& row) {
  size_t n = 4;
  for (const auto& v : row) n += EncodedValueSize(v);
  return n;
}

size_t EncodedBytes(const std::vector<Row>& rows, size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  size_t n = 0;
  for (const auto& r : rows) n += EncodedRowSize(r);
  size_t batches = (rows.size() + batch_rows - 1) / batch_rows;
  return n + 4 * std::max<size_t>(batches, 1);  // batch headers
}

uint64_t HashForPartition(const Value& v) {
  // Normalization mirrors Value::Compare equivalence classes: all numeric
  // types that compare equal must hash equal (1 == 1.0 == TIMESTAMP(1)).
  Fnv f;
  switch (v.type()) {
    case TypeId::kNull:
      f.Mix(0);
      break;
    case TypeId::kBool:
      f.Mix(1);
      f.Mix(v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      f.Mix(2);
      f.Mix64(static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kDouble: {
      double d = v.AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        f.Mix(2);  // integral double joins the int64 class
        f.Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        f.Mix(3);
        f.Mix64(DoubleBits(d));
      }
      break;
    }
    case TypeId::kString:
      f.Mix(4);
      for (char c : v.AsString()) f.Mix(static_cast<uint8_t>(c));
      break;
  }
  return f.h;
}

Status ExchangeNetwork::SendRows(int src, int dst,
                                 const std::vector<Row>& rows) {
  ExchangeChannel& ch = channel(src, dst);
  for (size_t begin = 0; begin < rows.size(); begin += batch_rows_) {
    size_t end = std::min(begin + batch_rows_, rows.size());
    OFI_RETURN_NOT_OK(ch.Send(EncodeBatch(rows, begin, end),
                              max_channel_bytes_));
  }
  return Status::OK();
}

Result<std::vector<Row>> ExchangeNetwork::ReceiveRows(int dst) {
  std::vector<Row> out;
  for (int src = 0; src < n_; ++src) {
    for (auto& batch : channel(src, dst).Drain()) {
      OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, DecodeBatch(batch));
      for (auto& r : rows) out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<ChannelStats> ExchangeNetwork::Stats() const {
  std::vector<ChannelStats> out;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      const ExchangeChannel& ch = channel(src, dst);
      size_t batches = ch.batches();
      if (batches == 0) continue;
      out.push_back(ChannelStats{src, dst, ch.bytes(), batches});
    }
  }
  return out;
}

size_t ExchangeNetwork::CrossNodeBytes() const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      if (src != dst) n += channel(src, dst).bytes();
    }
  }
  return n;
}

size_t ExchangeNetwork::CrossNodeBatches() const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      if (src != dst) n += channel(src, dst).batches();
    }
  }
  return n;
}

size_t ExchangeNetwork::OutBytes(int src) const {
  size_t n = 0;
  for (int dst = 0; dst < n_; ++dst) {
    if (dst != src) n += channel(src, dst).bytes();
  }
  return n;
}

size_t ExchangeNetwork::OutBatches(int src) const {
  size_t n = 0;
  for (int dst = 0; dst < n_; ++dst) {
    if (dst != src) n += channel(src, dst).batches();
  }
  return n;
}

size_t ExchangeNetwork::InBytes(int dst) const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    if (src != dst) n += channel(src, dst).bytes();
  }
  return n;
}

size_t ExchangeNetwork::InBatches(int dst) const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    if (src != dst) n += channel(src, dst).batches();
  }
  return n;
}

size_t ExchangeNetwork::DeniedBytes() const {
  size_t n = 0;
  for (const auto& ch : channels_) n += ch.denied_bytes();
  return n;
}

Status ShufflePartition(ExchangeNetwork* net, int src,
                        const std::vector<Row>& rows, size_t key_idx) {
  const int n = net->num_nodes();
  std::vector<std::vector<Row>> parts(static_cast<size_t>(n));
  for (const auto& row : rows) {
    int dst = static_cast<int>(HashForPartition(row[key_idx]) %
                               static_cast<uint64_t>(n));
    parts[static_cast<size_t>(dst)].push_back(row);
  }
  for (int dst = 0; dst < n; ++dst) {
    OFI_RETURN_NOT_OK(net->SendRows(src, dst, parts[static_cast<size_t>(dst)]));
  }
  return Status::OK();
}

Status BroadcastRows(ExchangeNetwork* net, int src,
                     const std::vector<Row>& rows) {
  for (int dst = 0; dst < net->num_nodes(); ++dst) {
    OFI_RETURN_NOT_OK(net->SendRows(src, dst, rows));
  }
  return Status::OK();
}

SimTime ExchangeServiceTime(size_t bytes, size_t batches,
                            const ExchangeLatencyParams& p) {
  SimTime kib = static_cast<SimTime>((bytes + 1023) / 1024);
  return static_cast<SimTime>(batches) * p.batch_service_us +
         kib * p.kb_service_us;
}

std::vector<SimTime> SimulateExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p) {
  const int n = static_cast<int>(node_resources.size());

  // Senders: each node serializes its whole cross-node outgoing traffic on
  // its own serialized resource, starting when its scan completed.
  std::vector<SimTime> send_done(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    size_t bytes = 0, batches = 0;
    for (const auto* net : nets) {
      bytes += net->OutBytes(i);
      batches += net->OutBatches(i);
    }
    SimTime service = ExchangeServiceTime(bytes, batches, p);
    send_done[i] =
        service == 0
            ? start[i]
            : scheduler->Charge(node_resources[i], start[i], service);
  }

  // Receivers: node j can decode once the slowest sender shipping to it has
  // finished, plus one network hop (max-over-senders, not a chained sum).
  std::vector<SimTime> done(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    SimTime arrival = std::max(start[j], send_done[j]);
    size_t bytes = 0, batches = 0;
    bool any_in = false;
    for (int i = 0; i < n; ++i) {
      if (i == j) continue;
      size_t b = 0;
      for (const auto* net : nets) b += net->channel(i, j).batches();
      if (b == 0) continue;
      any_in = true;
      arrival = std::max(arrival, send_done[i] + p.network_hop_us);
    }
    for (const auto* net : nets) {
      bytes += net->InBytes(j);
      batches += net->InBatches(j);
    }
    SimTime service = any_in ? ExchangeServiceTime(bytes, batches, p) : 0;
    done[j] = service == 0
                  ? arrival
                  : scheduler->Charge(node_resources[j], arrival, service);
  }
  return done;
}

}  // namespace ofi::cluster::exchange
