#include "cluster/exchange/exchange.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>

namespace ofi::cluster::exchange {
namespace {

using sql::Row;
using sql::TypeId;
using sql::Value;

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool ReadU8(const std::string& buf, size_t* off, uint8_t* v) {
  if (*off + 1 > buf.size()) return false;
  *v = static_cast<uint8_t>(buf[(*off)++]);
  return true;
}

bool ReadU32(const std::string& buf, size_t* off, uint32_t* v) {
  if (*off + 4 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[*off + i])) << (8 * i);
  }
  *off += 4;
  return true;
}

bool ReadU64(const std::string& buf, size_t* off, uint64_t* v) {
  if (*off + 8 > buf.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[*off + i])) << (8 * i);
  }
  *off += 8;
  return true;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<Value> DecodeValue(const std::string& buf, size_t* off) {
  uint8_t tag;
  if (!ReadU8(buf, off, &tag)) {
    return Status::InvalidArgument("exchange batch truncated (value tag)");
  }
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      uint8_t b;
      if (!ReadU8(buf, off, &b)) {
        return Status::InvalidArgument("exchange batch truncated (bool)");
      }
      return Value(b != 0);
    }
    case TypeId::kInt64: {
      uint64_t v;
      if (!ReadU64(buf, off, &v)) {
        return Status::InvalidArgument("exchange batch truncated (int64)");
      }
      return Value(static_cast<int64_t>(v));
    }
    case TypeId::kTimestamp: {
      uint64_t v;
      if (!ReadU64(buf, off, &v)) {
        return Status::InvalidArgument("exchange batch truncated (timestamp)");
      }
      return Value::Timestamp(static_cast<int64_t>(v));
    }
    case TypeId::kDouble: {
      uint64_t bits;
      if (!ReadU64(buf, off, &bits)) {
        return Status::InvalidArgument("exchange batch truncated (double)");
      }
      return Value(BitsToDouble(bits));
    }
    case TypeId::kString: {
      uint32_t len;
      if (!ReadU32(buf, off, &len) || *off + len > buf.size()) {
        return Status::InvalidArgument("exchange batch truncated (string)");
      }
      std::string s = buf.substr(*off, len);
      *off += len;
      return Value(std::move(s));
    }
  }
  return Status::InvalidArgument("exchange batch: unknown type tag " +
                                 std::to_string(tag));
}

// FNV-1a over normalized payload bytes; see HashForPartition contract.
struct Fnv {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Mix(uint8_t b) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  void Mix64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Mix(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
  }
};

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  AppendU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      AppendU8(out, v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      AppendU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kDouble:
      AppendU64(out, DoubleBits(v.AsDouble()));
      break;
    case TypeId::kString:
      AppendU32(out, static_cast<uint32_t>(v.AsString().size()));
      out->append(v.AsString());
      break;
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(row.size()));
  for (const auto& v : row) EncodeValue(v, out);
}

std::string EncodeBatch(const std::vector<Row>& rows, size_t begin, size_t end) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) EncodeRow(rows[i], &out);
  return out;
}

Result<std::vector<Row>> DecodeBatch(const std::string& buf) {
  size_t off = 0;
  uint32_t num_rows;
  if (!ReadU32(buf, &off, &num_rows)) {
    return Status::InvalidArgument("exchange batch truncated (row count)");
  }
  // Sanity-bound the header before reserving: every row needs at least a
  // 4-byte value count, so a count larger than the payload could hold is
  // corruption (e.g. a damaged spill segment), not a huge allocation.
  if (num_rows > (buf.size() - off) / 4) {
    return Status::InvalidArgument("exchange batch: implausible row count " +
                                   std::to_string(num_rows));
  }
  std::vector<Row> rows;
  rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t num_vals;
    if (!ReadU32(buf, &off, &num_vals)) {
      return Status::InvalidArgument("exchange batch truncated (value count)");
    }
    if (num_vals > buf.size() - off) {  // every value is >= 1 byte
      return Status::InvalidArgument(
          "exchange batch: implausible value count " +
          std::to_string(num_vals));
    }
    Row row;
    row.reserve(num_vals);
    for (uint32_t c = 0; c < num_vals; ++c) {
      OFI_ASSIGN_OR_RETURN(Value v, DecodeValue(buf, &off));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  if (off != buf.size()) {
    return Status::InvalidArgument("exchange batch has trailing bytes");
  }
  return rows;
}

size_t EncodedValueSize(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull: return 1;
    case TypeId::kBool: return 2;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kDouble: return 9;
    case TypeId::kString: return 5 + v.AsString().size();
  }
  return 1;
}

size_t EncodedRowSize(const Row& row) {
  size_t n = 4;
  for (const auto& v : row) n += EncodedValueSize(v);
  return n;
}

size_t EncodedBytes(const std::vector<Row>& rows, size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  size_t n = 0;
  for (const auto& r : rows) n += EncodedRowSize(r);
  size_t batches = (rows.size() + batch_rows - 1) / batch_rows;
  return n + 4 * std::max<size_t>(batches, 1);  // batch headers
}

uint64_t HashForPartition(const Value& v) {
  // Normalization mirrors Value::Compare equivalence classes: all numeric
  // types that compare equal must hash equal (1 == 1.0 == TIMESTAMP(1)).
  Fnv f;
  switch (v.type()) {
    case TypeId::kNull:
      f.Mix(0);
      break;
    case TypeId::kBool:
      f.Mix(1);
      f.Mix(v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      f.Mix(2);
      f.Mix64(static_cast<uint64_t>(v.AsInt()));
      break;
    case TypeId::kDouble: {
      double d = v.AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        f.Mix(2);  // integral double joins the int64 class
        f.Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        f.Mix(3);
        f.Mix64(DoubleBits(d));
      }
      break;
    }
    case TypeId::kString:
      f.Mix(4);
      for (char c : v.AsString()) f.Mix(static_cast<uint8_t>(c));
      break;
  }
  return f.h;
}

// --- SpillFile ---------------------------------------------------------------

Status SpillFile::Append(const std::string& blob, const std::string& dir,
                         size_t* offset_out) {
  if (f_ == nullptr) {
    std::error_code ec;
    std::filesystem::path base =
        dir.empty() ? std::filesystem::temp_directory_path(ec)
                    : std::filesystem::path(dir);
    if (ec) {
      return Status::Internal("spill: no temp directory: " + ec.message());
    }
    if (!dir.empty()) {
      // A configured spill_dir need not pre-exist; fopen still reports the
      // failure if creation was impossible.
      std::filesystem::create_directories(base, ec);
    }
    static std::atomic<uint64_t> counter{0};
    std::string name = "ofi-exchange-" + std::to_string(::getpid()) + "-" +
                       std::to_string(counter.fetch_add(1)) + ".spill";
    path_ = (base / name).string();
    f_ = std::fopen(path_.c_str(), "wb+");
    if (f_ == nullptr) {
      std::string p = std::move(path_);
      path_.clear();
      return Status::Internal("spill: cannot create " + p);
    }
    end_ = 0;
  }
  if (std::fseek(f_, static_cast<long>(end_), SEEK_SET) != 0 ||
      std::fwrite(blob.data(), 1, blob.size(), f_) != blob.size() ||
      std::fflush(f_) != 0) {
    return Status::Internal("spill: short write to " + path_);
  }
  *offset_out = end_;
  end_ += blob.size();
  return Status::OK();
}

Result<std::string> SpillFile::Read(size_t offset, size_t size) {
  if (f_ == nullptr) {
    return Status::Corruption("spill: segment read with no spill file");
  }
  std::string out(size, '\0');
  if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(out.data(), 1, size, f_) != size) {
    return Status::Corruption("spill: truncated segment in " + path_ +
                              " (offset " + std::to_string(offset) + ", " +
                              std::to_string(size) + " bytes)");
  }
  return out;
}

void SpillFile::Remove() {
  if (f_ != nullptr) {
    std::fclose(f_);
    std::remove(path_.c_str());
    f_ = nullptr;
  }
  path_.clear();
  end_ = 0;
}

// --- ExchangeChannel ---------------------------------------------------------

Status ExchangeChannel::Send(std::string batch, const SendLimits& limits) {
  const size_t size = batch.size();
  std::lock_guard lock(mu_);
  if (closed_) {
    return Status::Internal("exchange channel: send after close");
  }
  // Memory path: under the cap and no spill pending (once anything is on
  // disk, newer sends must follow it there or FIFO order would break).
  if (limits.max_queued_bytes == 0 ||
      (spill_segs_.empty() &&
       queued_bytes_ + size <= limits.max_queued_bytes)) {
    queued_bytes_ += size;
    bytes_ += size;
    ++batches_;
    queue_.push_back(MemBatch{++send_seq_, std::move(batch)});
    cv_.notify_one();
    return Status::OK();
  }
  const ExchangeSpillConfig* spill = limits.spill;
  if (spill == nullptr || spill->strict) {
    denied_bytes_ += size;
    return Status::ResourceExhausted(
        "exchange channel over byte limit (" +
        std::to_string(queued_bytes_ + size) + " > " +
        std::to_string(limits.max_queued_bytes) + " queued bytes)");
  }
  if (spill->budget != nullptr && !spill->budget->Reserve(size)) {
    denied_bytes_ += size;
    return Status::ResourceExhausted(
        "exchange spill budget exhausted (" + std::to_string(size) +
        " bytes over " + std::to_string(spill->budget->max_bytes) + ")");
  }
  size_t offset = 0;
  Status st = spill_.Append(batch, spill->temp_dir, &offset);
  if (!st.ok()) {
    if (spill->budget != nullptr) spill->budget->Release(size);
    return st;
  }
  budget_ = spill->budget;
  spill_segs_.push_back(Seg{++send_seq_, offset, size});
  bytes_ += size;
  ++batches_;
  spilled_bytes_ += size;
  ++spill_segments_;
  cv_.notify_one();
  return Status::OK();
}

Result<std::string> ExchangeChannel::PopLocked() {
  if (!queue_.empty()) {
    std::string batch = std::move(queue_.front().payload);
    queue_.pop_front();
    queued_bytes_ -= batch.size();
    return batch;
  }
  Seg seg = spill_segs_.front();
  OFI_ASSIGN_OR_RETURN(std::string batch, spill_.Read(seg.offset, seg.size));
  spill_segs_.pop_front();
  if (budget_ != nullptr) budget_->Release(seg.size);
  // Last segment consumed: the temp file's job is done, delete it now
  // rather than waiting for the network's destructor.
  if (spill_segs_.empty()) spill_.Remove();
  return batch;
}

Result<std::optional<std::string>> ExchangeChannel::PopBatch() {
  std::lock_guard lock(mu_);
  // A producer failure outranks queued payload: the stream is incomplete,
  // so delivering its prefix would let a consumer act on partial data.
  if (closed_ && !close_status_.ok()) return close_status_;
  if (queue_.empty() && spill_segs_.empty()) {
    return std::optional<std::string>();
  }
  OFI_ASSIGN_OR_RETURN(std::string batch, PopLocked());
  return std::optional<std::string>(std::move(batch));
}

Result<std::optional<std::string>> ExchangeChannel::PopBatchWait(
    int64_t timeout_ms) {
  std::unique_lock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (closed_ && !close_status_.ok()) return close_status_;
    if (!queue_.empty() || !spill_segs_.empty()) {
      OFI_ASSIGN_OR_RETURN(std::string batch, PopLocked());
      return std::optional<std::string>(std::move(batch));
    }
    if (closed_) return std::optional<std::string>();  // clean end-of-stream
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::TimedOut("exchange channel: no batch and no close after " +
                              std::to_string(timeout_ms) + " ms");
    }
  }
}

void ExchangeChannel::Close(Status st) {
  {
    std::lock_guard lock(mu_);
    if (!closed_) {
      closed_ = true;
      close_status_ = std::move(st);
    } else if (close_status_.ok() && !st.ok()) {
      close_status_ = std::move(st);
    }
  }
  cv_.notify_all();
}

Result<std::vector<std::string>> ExchangeChannel::Drain() {
  std::vector<std::string> out;
  while (true) {
    OFI_ASSIGN_OR_RETURN(std::optional<std::string> batch, PopBatch());
    if (!batch.has_value()) break;
    out.push_back(std::move(*batch));
  }
  return out;
}

void ExchangeChannel::Discard() {
  std::lock_guard lock(mu_);
  DiscardLocked();
}

void ExchangeChannel::DiscardLocked() {
  size_t dropped = queued_bytes_;
  size_t dropped_batches = queue_.size() + spill_segs_.size();
  size_t dropped_spill = 0;
  for (const Seg& seg : spill_segs_) dropped_spill += seg.size;
  if (budget_ != nullptr && dropped_spill > 0) budget_->Release(dropped_spill);
  spill_segments_ -= spill_segs_.size();
  queue_.clear();
  spill_segs_.clear();
  spill_.Remove();
  queued_bytes_ = 0;
  bytes_ -= dropped + dropped_spill;
  batches_ -= dropped_batches;
  spilled_bytes_ -= dropped_spill;
  aborted_bytes_ += dropped + dropped_spill;
}

ExchangeChannel::Checkpoint ExchangeChannel::Mark() const {
  std::lock_guard lock(mu_);
  Checkpoint cp;
  cp.batches = batches_;
  cp.bytes = bytes_;
  cp.spilled_bytes = spilled_bytes_;
  cp.spill_segments = spill_segments_;
  cp.spill_end = spill_.logical_end();
  cp.send_seq = send_seq_;
  return cp;
}

void ExchangeChannel::RollbackTo(const Checkpoint& cp) {
  std::lock_guard lock(mu_);
  // Drop the still-queued post-mark batches. They are identified by send
  // sequence, not by queue position: a concurrent consumer may have drained
  // any prefix of the queue (including post-mark batches) since the Mark,
  // and counting positions would then drop pre-mark payload or leave stale
  // post-mark batches deliverable.
  while (!queue_.empty() && queue_.back().seq > cp.send_seq) {
    queued_bytes_ -= queue_.back().payload.size();
    queue_.pop_back();
  }
  size_t dropped_spill = 0;
  while (!spill_segs_.empty() && spill_segs_.back().seq > cp.send_seq) {
    dropped_spill += spill_segs_.back().size;
    spill_segs_.pop_back();
  }
  if (budget_ != nullptr && dropped_spill > 0) budget_->Release(dropped_spill);
  if (spill_segs_.empty()) {
    // No outstanding segments at all — a consumer may even have deleted the
    // file already via delete-on-last-consume; Remove() is a no-op then.
    if (spill_.active()) spill_.Remove();
  } else {
    spill_.TruncateTo(cp.spill_end);
  }
  // Lifetime accounting returns to the mark. Everything accepted after it
  // counts as aborted — drained-then-rolled-back payload too, since the
  // consumer that popped it fails with the producer's close status and
  // never surfaces those rows.
  aborted_bytes_ += bytes_ - cp.bytes;
  bytes_ = cp.bytes;
  batches_ = cp.batches;
  spilled_bytes_ = cp.spilled_bytes;
  spill_segments_ = cp.spill_segments;
}

// --- ExchangeNetwork ---------------------------------------------------------

Status ExchangeNetwork::SendRows(int src, int dst,
                                 const std::vector<Row>& rows) {
  ExchangeChannel& ch = channel(src, dst);
  const ExchangeChannel::SendLimits limits = send_limits();
  for (size_t begin = 0; begin < rows.size(); begin += batch_rows_) {
    size_t end = std::min(begin + batch_rows_, rows.size());
    OFI_RETURN_NOT_OK(ch.Send(EncodeBatch(rows, begin, end), limits));
  }
  return Status::OK();
}

Result<std::vector<Row>> ExchangeNetwork::ReceiveRows(int dst) {
  std::vector<Row> out;
  for (int src = 0; src < n_; ++src) {
    ExchangeChannel& ch = channel(src, dst);
    // Stream one batch at a time: the full channel payload never has to be
    // resident — the memory window drains first, then spill segments are
    // read back in send order.
    while (true) {
      OFI_ASSIGN_OR_RETURN(std::optional<std::string> batch, ch.PopBatch());
      if (!batch.has_value()) break;
      OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, DecodeBatch(*batch));
      for (auto& r : rows) out.push_back(std::move(r));
    }
  }
  return out;
}

Result<std::vector<Row>> ExchangeNetwork::ReceiveRowsWait(
    int dst, int64_t timeout_ms, size_t* batches_out) {
  std::vector<Row> out;
  for (int src = 0; src < n_; ++src) {
    ExchangeChannel& ch = channel(src, dst);
    while (true) {
      OFI_ASSIGN_OR_RETURN(std::optional<std::string> batch,
                           ch.PopBatchWait(timeout_ms));
      if (!batch.has_value()) break;
      if (batches_out != nullptr) ++*batches_out;
      OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, DecodeBatch(*batch));
      for (auto& r : rows) out.push_back(std::move(r));
    }
  }
  return out;
}

void ExchangeNetwork::CloseAllFrom(int src, Status st) {
  for (int dst = 0; dst < n_; ++dst) channel(src, dst).Close(st);
}

std::vector<ChannelStats> ExchangeNetwork::Stats() const {
  std::vector<ChannelStats> out;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      const ExchangeChannel& ch = channel(src, dst);
      size_t batches = ch.batches();
      if (batches == 0) continue;
      out.push_back(ChannelStats{src, dst, ch.bytes(), batches});
    }
  }
  return out;
}

size_t ExchangeNetwork::CrossNodeBytes() const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      if (src != dst) n += channel(src, dst).bytes();
    }
  }
  return n;
}

size_t ExchangeNetwork::CrossNodeBatches() const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    for (int dst = 0; dst < n_; ++dst) {
      if (src != dst) n += channel(src, dst).batches();
    }
  }
  return n;
}

size_t ExchangeNetwork::OutBytes(int src) const {
  size_t n = 0;
  for (int dst = 0; dst < n_; ++dst) {
    if (dst != src) n += channel(src, dst).bytes();
  }
  return n;
}

size_t ExchangeNetwork::OutBatches(int src) const {
  size_t n = 0;
  for (int dst = 0; dst < n_; ++dst) {
    if (dst != src) n += channel(src, dst).batches();
  }
  return n;
}

size_t ExchangeNetwork::InBytes(int dst) const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    if (src != dst) n += channel(src, dst).bytes();
  }
  return n;
}

size_t ExchangeNetwork::InBatches(int dst) const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) {
    if (src != dst) n += channel(src, dst).batches();
  }
  return n;
}

size_t ExchangeNetwork::DeniedBytes() const {
  size_t n = 0;
  for (const auto& ch : channels_) n += ch.denied_bytes();
  return n;
}

size_t ExchangeNetwork::SpilledBytes() const {
  size_t n = 0;
  for (const auto& ch : channels_) n += ch.spilled_bytes();
  return n;
}

size_t ExchangeNetwork::SpillSegments() const {
  size_t n = 0;
  for (const auto& ch : channels_) n += ch.spill_segments();
  return n;
}

size_t ExchangeNetwork::SpilledInBytes(int dst) const {
  size_t n = 0;
  for (int src = 0; src < n_; ++src) n += channel(src, dst).spilled_bytes();
  return n;
}

size_t ExchangeNetwork::AbortedBytes() const {
  size_t n = 0;
  for (const auto& ch : channels_) n += ch.aborted_bytes();
  return n;
}

// --- StreamingScatter --------------------------------------------------------

StreamingScatter::StreamingScatter(ExchangeNetwork* net, int src,
                                   std::optional<size_t> key_idx)
    : net_(net),
      src_(src),
      key_idx_(key_idx),
      limits_(net->send_limits()),
      pending_(static_cast<size_t>(net->num_nodes())) {}

Status StreamingScatter::Push(const Row& row) {
  const int n = net_->num_nodes();
  if (key_idx_.has_value()) {
    int dst = static_cast<int>(HashForPartition(row[*key_idx_]) %
                               static_cast<uint64_t>(n));
    pending_[static_cast<size_t>(dst)].push_back(row);
    if (pending_[static_cast<size_t>(dst)].size() >= net_->batch_rows()) {
      OFI_RETURN_NOT_OK(FlushDst(dst));
    }
  } else {
    for (int dst = 0; dst < n; ++dst) {
      pending_[static_cast<size_t>(dst)].push_back(row);
      if (pending_[static_cast<size_t>(dst)].size() >= net_->batch_rows()) {
        OFI_RETURN_NOT_OK(FlushDst(dst));
      }
    }
  }
  return Status::OK();
}

Status StreamingScatter::Finish() {
  for (int dst = 0; dst < net_->num_nodes(); ++dst) {
    if (!pending_[static_cast<size_t>(dst)].empty()) {
      OFI_RETURN_NOT_OK(FlushDst(dst));
    }
  }
  return Status::OK();
}

Status StreamingScatter::FlushDst(int dst) {
  auto& rows = pending_[static_cast<size_t>(dst)];
  std::string batch = EncodeBatch(rows, 0, rows.size());
  const size_t bytes = batch.size();
  OFI_RETURN_NOT_OK(net_->channel(src_, dst).Send(std::move(batch), limits_));
  log_.push_back(SendRec{dst, bytes});
  rows.clear();
  return Status::OK();
}

Status ShufflePartition(ExchangeNetwork* net, int src,
                        const std::vector<Row>& rows, size_t key_idx) {
  const int n = net->num_nodes();
  std::vector<std::vector<Row>> parts(static_cast<size_t>(n));
  for (const auto& row : rows) {
    int dst = static_cast<int>(HashForPartition(row[key_idx]) %
                               static_cast<uint64_t>(n));
    parts[static_cast<size_t>(dst)].push_back(row);
  }
  ScatterGuard guard(net, src);
  for (int dst = 0; dst < n; ++dst) {
    OFI_RETURN_NOT_OK(net->SendRows(src, dst, parts[static_cast<size_t>(dst)]));
  }
  guard.Commit();
  return Status::OK();
}

Status BroadcastRows(ExchangeNetwork* net, int src,
                     const std::vector<Row>& rows) {
  ScatterGuard guard(net, src);
  for (int dst = 0; dst < net->num_nodes(); ++dst) {
    OFI_RETURN_NOT_OK(net->SendRows(src, dst, rows));
  }
  guard.Commit();
  return Status::OK();
}

SimTime ExchangeServiceTime(size_t bytes, size_t batches,
                            const ExchangeLatencyParams& p) {
  SimTime kib = static_cast<SimTime>((bytes + 1023) / 1024);
  return static_cast<SimTime>(batches) * p.batch_service_us +
         kib * p.kb_service_us;
}

SimTime SpillServiceTime(size_t bytes, const ExchangeLatencyParams& p) {
  if (bytes == 0) return 0;
  SimTime kib = static_cast<SimTime>((bytes + 1023) / 1024);
  return kib * (p.spill_write_kb_us + p.spill_read_kb_us);
}

std::vector<SimTime> SimulateExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p) {
  const int n = static_cast<int>(node_resources.size());

  // Senders: each node serializes its whole cross-node outgoing traffic on
  // its own serialized resource, starting when its scan completed.
  std::vector<SimTime> send_done(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    size_t bytes = 0, batches = 0;
    for (const auto* net : nets) {
      bytes += net->OutBytes(i);
      batches += net->OutBatches(i);
    }
    SimTime service = ExchangeServiceTime(bytes, batches, p);
    send_done[i] =
        service == 0
            ? start[i]
            : scheduler->Charge(node_resources[i], start[i], service);
  }

  // Receivers: node j can decode once the slowest sender shipping to it has
  // finished, plus one network hop (max-over-senders, not a chained sum).
  std::vector<SimTime> done(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    SimTime arrival = std::max(start[j], send_done[j]);
    size_t bytes = 0, batches = 0;
    bool any_in = false;
    for (int i = 0; i < n; ++i) {
      if (i == j) continue;
      size_t b = 0;
      for (const auto* net : nets) b += net->channel(i, j).batches();
      if (b == 0) continue;
      any_in = true;
      arrival = std::max(arrival, send_done[i] + p.network_hop_us);
    }
    for (const auto* net : nets) {
      bytes += net->InBytes(j);
      batches += net->InBatches(j);
    }
    SimTime service = any_in ? ExchangeServiceTime(bytes, batches, p) : 0;
    // Spilled bytes entering j pay a disk write + read on j's resource —
    // loopback included, since the spill file is real even when the network
    // hop is not.
    size_t spilled_in = 0;
    for (const auto* net : nets) spilled_in += net->SpilledInBytes(j);
    service += SpillServiceTime(spilled_in, p);
    done[j] = service == 0
                  ? arrival
                  : scheduler->Charge(node_resources[j], arrival, service);
  }
  return done;
}

PipelinedSimResult SimulatePipelinedExchange(
    SimScheduler* scheduler, const std::vector<int>& node_resources,
    const std::vector<const ExchangeNetwork*>& nets,
    const std::vector<std::vector<PipelinedSendRec>>& send_logs,
    const std::vector<SimTime>& start, const ExchangeLatencyParams& p) {
  const int n = static_cast<int>(node_resources.size());
  const int nk = static_cast<int>(nets.size());
  PipelinedSimResult out;
  out.ready.assign(static_cast<size_t>(n), 0);
  out.producer_done.assign(static_cast<size_t>(n), 0);
  out.first_consume.assign(static_cast<size_t>(n), 0);

  struct Batch {
    size_t bytes = 0;
    SimTime avail = 0;  // producer finished encoding it
    SimTime pop = 0;    // provisional consumer drain completion
  };
  // chan[net][src * n + dst], batches in send order.
  std::vector<std::vector<std::vector<Batch>>> chan(
      static_cast<size_t>(nk),
      std::vector<std::vector<Batch>>(static_cast<size_t>(n) * n));
  auto kib = [](size_t b) { return static_cast<SimTime>((b + 1023) / 1024); };

  // Producers: per-batch encode charges in send order, cross-node only (the
  // barrier model charges nothing for loopback either). Cumulative-KiB
  // telescoping makes the per-producer total equal ExchangeServiceTime over
  // its whole cross-node output.
  for (int i = 0; i < n; ++i) {
    SimTime cursor = start[static_cast<size_t>(i)];
    size_t cum = 0;
    for (const PipelinedSendRec& rec : send_logs[static_cast<size_t>(i)]) {
      if (rec.dst != i) {
        SimTime service = p.batch_service_us +
                          (kib(cum + rec.bytes) - kib(cum)) * p.kb_service_us;
        cum += rec.bytes;
        cursor = scheduler->Charge(node_resources[static_cast<size_t>(i)],
                                   cursor, service);
      }
      chan[static_cast<size_t>(rec.net)][static_cast<size_t>(i) * n + rec.dst]
          .push_back(Batch{rec.bytes, cursor, 0});
    }
    out.producer_done[static_cast<size_t>(i)] = cursor;
  }

  // Provisional drain times (plain arithmetic, no charges): each consumer
  // walks its deterministic drain order; a batch is popped at
  // max(cursor, availability + hop) plus its decode service. Used only to
  // model the in-memory window occupancy for the spill decision below.
  for (int j = 0; j < n; ++j) {
    SimTime cur = start[static_cast<size_t>(j)];
    size_t cum = 0;
    for (int k = 0; k < nk; ++k) {
      for (int i = 0; i < n; ++i) {
        for (Batch& b : chan[static_cast<size_t>(k)]
                            [static_cast<size_t>(i) * n + j]) {
          SimTime arrival = b.avail + (i == j ? 0 : p.network_hop_us);
          cur = std::max(cur, arrival);
          if (i != j) {
            cur += p.batch_service_us +
                   (kib(cum + b.bytes) - kib(cum)) * p.kb_service_us;
            cum += b.bytes;
          }
          b.pop = cur;
        }
      }
    }
  }

  // Modeled spill: replay each capped channel's window in send order. A
  // batch spills when the in-memory window would overflow at its send time,
  // or an earlier spilled batch is still on disk then (FIFO: memory never
  // overtakes disk). Deterministic, unlike the real spill counters, which
  // depend on how far the consumer thread happened to lag the producer.
  std::vector<size_t> spilled_in(static_cast<size_t>(n), 0);
  for (int k = 0; k < nk; ++k) {
    const size_t cap = nets[static_cast<size_t>(k)]->max_channel_bytes();
    if (cap == 0) continue;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        auto& batches =
            chan[static_cast<size_t>(k)][static_cast<size_t>(i) * n + j];
        size_t mem = 0;   // window occupancy at the current send time
        size_t lo = 0;    // first batch not yet provisionally popped
        std::vector<bool> spilled(batches.size(), false);
        SimTime last_spill_pop = -1;
        for (size_t bi = 0; bi < batches.size(); ++bi) {
          const Batch& b = batches[bi];
          while (lo < bi && batches[lo].pop <= b.avail) {
            if (!spilled[lo]) mem -= batches[lo].bytes;
            ++lo;
          }
          if (last_spill_pop > b.avail || mem + b.bytes > cap) {
            spilled[bi] = true;
            spilled_in[static_cast<size_t>(j)] += b.bytes;
            last_spill_pop = std::max(last_spill_pop, b.pop);
          } else {
            mem += b.bytes;
          }
        }
      }
    }
  }

  // Final consumer replay with real charges: gap-fitting on the node's own
  // resource serializes its decode against its own encode (a DN cannot
  // overlap with itself), which is exactly why a skewed producer — not a
  // uniform one — is where pipelining wins.
  SimTime global_prod_end = 0;
  for (int i = 0; i < n; ++i) {
    global_prod_end =
        std::max(global_prod_end, out.producer_done[static_cast<size_t>(i)]);
  }
  for (int j = 0; j < n; ++j) {
    SimTime cur = start[static_cast<size_t>(j)];
    size_t cum = 0;
    SimTime first = -1;
    for (int k = 0; k < nk; ++k) {
      for (int i = 0; i < n; ++i) {
        for (const Batch& b : chan[static_cast<size_t>(k)]
                                  [static_cast<size_t>(i) * n + j]) {
          SimTime arrival = b.avail + (i == j ? 0 : p.network_hop_us);
          if (i == j) {
            cur = std::max(cur, arrival);
            continue;
          }
          SimTime service = p.batch_service_us +
                            (kib(cum + b.bytes) - kib(cum)) * p.kb_service_us;
          cum += b.bytes;
          SimTime done = scheduler->Charge(node_resources[static_cast<size_t>(j)],
                                           std::max(cur, arrival), service);
          if (first < 0) first = done - service;
          cur = done;
        }
      }
    }
    if (spilled_in[static_cast<size_t>(j)] > 0) {
      cur = scheduler->Charge(node_resources[static_cast<size_t>(j)], cur,
                              SpillServiceTime(spilled_in[static_cast<size_t>(j)], p));
      out.modeled_spill_bytes += spilled_in[static_cast<size_t>(j)];
    }
    // The consumer cannot finish draining a channel before observing its
    // close, which the producer posts after its whole scatter.
    for (int i = 0; i < n; ++i) {
      cur = std::max(cur, out.producer_done[static_cast<size_t>(i)] +
                              (i == j ? 0 : p.network_hop_us));
    }
    out.ready[static_cast<size_t>(j)] = cur;
    out.first_consume[static_cast<size_t>(j)] = first >= 0 ? first : cur;
    if (first >= 0) {
      out.overlap_us += std::max<SimTime>(0, global_prod_end - first);
    }
  }
  return out;
}

}  // namespace ofi::cluster::exchange
