/// \file multimodel.h
/// \brief The multi-model database facade (paper §II-B, Fig. 4): one
/// uniformed framework over a unified (relational) storage engine and the
/// integrated runtime engines — relational, graph, time-series, spatial.
/// Engine results enter relational plans as table expressions (VALUES
/// nodes), the mechanism behind Example 1's
///   with cars as (select * from gtimeseries(...)),
///        suspects as (select * from ggraph(...))
///   select ... from suspects s, cars c, car2cid cc where ...
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/traversal.h"
#include "sql/executor.h"
#include "sql/plan.h"
#include "spatial/spatial.h"
#include "streaming/streaming.h"
#include "timeseries/timeseries.h"
#include "vision/vision.h"

namespace ofi::multimodel {

/// \brief A single database instance hosting all data models.
class MultiModelDb {
 public:
  // --- Relational model -------------------------------------------------------
  sql::Catalog& catalog() { return catalog_; }
  const sql::Catalog& catalog() const { return catalog_; }

  /// Registers (or replaces) a relational table.
  void RegisterTable(const std::string& name, sql::Table table) {
    catalog_.Register(name, std::move(table));
  }

  // --- Graph model ------------------------------------------------------------
  /// Creates a named property graph.
  Result<graph::PropertyGraph*> CreateGraph(const std::string& name);
  Result<graph::PropertyGraph*> GetGraph(const std::string& name);
  /// `g` for a named graph.
  Result<graph::GraphTraversalSource> Gremlin(const std::string& name);

  // --- Time-series model --------------------------------------------------------
  Result<timeseries::EventStore*> CreateEventStore(
      const std::string& name, std::vector<sql::Column> value_columns);
  Result<timeseries::EventStore*> GetEventStore(const std::string& name);
  Result<timeseries::MetricStore*> CreateMetricStore(const std::string& name);
  Result<timeseries::MetricStore*> GetMetricStore(const std::string& name);

  // --- Vision model (the engine the paper plans to add; we include it) ---------
  Result<vision::VisionStore*> CreateVisionStore(const std::string& name);
  Result<vision::VisionStore*> GetVisionStore(const std::string& name);
  /// gvision(store): every detection as a plan input for cross-model joins.
  Result<sql::PlanPtr> VisionTableExpr(const std::string& store,
                                       const std::string& alias);

  // --- Streaming model (continuous query language, §II-B2) ---------------------
  Result<streaming::StreamEngine*> CreateStream(const std::string& name,
                                                std::vector<sql::Column> value_columns);
  Result<streaming::StreamEngine*> GetStream(const std::string& name);

  // --- Spatial model -------------------------------------------------------------
  Result<spatial::SpatioTemporalIndex*> CreateSpatialIndex(const std::string& name,
                                                           double cell_size = 1.0);
  Result<spatial::SpatioTemporalIndex*> GetSpatialIndex(const std::string& name);

  // --- Table expressions (the g* functions of the SQL extension) ---------------
  /// ggraph(traversal): a finished traversal as a plan input.
  sql::PlanPtr GraphTableExpr(const graph::Traversal& traversal,
                              const std::vector<std::string>& property_cols,
                              const std::string& alias) const;

  /// gtimeseries(store, now - time < window): recent events as a plan input.
  Result<sql::PlanPtr> TimeSeriesWindowExpr(const std::string& store,
                                            timeseries::Timestamp now,
                                            timeseries::Timestamp window_us,
                                            const std::string& alias);

  /// gspatial(index, box, [from,to)): observations as a plan input.
  Result<sql::PlanPtr> SpatialBoxTimeExpr(const std::string& index,
                                          const spatial::BoundingBox& box,
                                          int64_t from, int64_t to,
                                          const std::string& alias);

  // --- Execution ---------------------------------------------------------------
  /// Runs a plan against this database (single integrated plan covering all
  /// engines — Fig. 4's "single plan" property).
  Result<sql::Table> Execute(const sql::PlanPtr& plan);

  /// Rows processed by the last Execute (work measure for benches).
  uint64_t last_rows_processed() const { return last_rows_processed_; }

 private:
  sql::Catalog catalog_;
  std::map<std::string, std::unique_ptr<graph::PropertyGraph>> graphs_;
  std::map<std::string, std::unique_ptr<timeseries::EventStore>> event_stores_;
  std::map<std::string, std::unique_ptr<timeseries::MetricStore>> metric_stores_;
  std::map<std::string, std::unique_ptr<spatial::SpatioTemporalIndex>> spatial_;
  std::map<std::string, std::unique_ptr<vision::VisionStore>> vision_;
  std::map<std::string, std::unique_ptr<streaming::StreamEngine>> streams_;
  uint64_t last_rows_processed_ = 0;
};

/// Total wire size of a table (bandwidth accounting for the multi-system
/// comparison in experiment E5).
size_t TableByteSize(const sql::Table& table);

}  // namespace ofi::multimodel
