#include "multimodel/multimodel.h"

namespace ofi::multimodel {

Result<graph::PropertyGraph*> MultiModelDb::CreateGraph(const std::string& name) {
  if (graphs_.count(name)) return Status::AlreadyExists("graph exists: " + name);
  auto& g = graphs_[name];
  g = std::make_unique<graph::PropertyGraph>();
  return g.get();
}

Result<graph::PropertyGraph*> MultiModelDb::GetGraph(const std::string& name) {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return Status::NotFound("no graph: " + name);
  return it->second.get();
}

Result<graph::GraphTraversalSource> MultiModelDb::Gremlin(const std::string& name) {
  OFI_ASSIGN_OR_RETURN(graph::PropertyGraph * g, GetGraph(name));
  return graph::GraphTraversalSource(g);
}

Result<timeseries::EventStore*> MultiModelDb::CreateEventStore(
    const std::string& name, std::vector<sql::Column> value_columns) {
  if (event_stores_.count(name)) {
    return Status::AlreadyExists("event store exists: " + name);
  }
  auto& s = event_stores_[name];
  s = std::make_unique<timeseries::EventStore>(std::move(value_columns));
  return s.get();
}

Result<timeseries::EventStore*> MultiModelDb::GetEventStore(
    const std::string& name) {
  auto it = event_stores_.find(name);
  if (it == event_stores_.end()) return Status::NotFound("no event store: " + name);
  return it->second.get();
}

Result<timeseries::MetricStore*> MultiModelDb::CreateMetricStore(
    const std::string& name) {
  if (metric_stores_.count(name)) {
    return Status::AlreadyExists("metric store exists: " + name);
  }
  auto& s = metric_stores_[name];
  s = std::make_unique<timeseries::MetricStore>();
  return s.get();
}

Result<timeseries::MetricStore*> MultiModelDb::GetMetricStore(
    const std::string& name) {
  auto it = metric_stores_.find(name);
  if (it == metric_stores_.end()) {
    return Status::NotFound("no metric store: " + name);
  }
  return it->second.get();
}

Result<spatial::SpatioTemporalIndex*> MultiModelDb::CreateSpatialIndex(
    const std::string& name, double cell_size) {
  if (spatial_.count(name)) {
    return Status::AlreadyExists("spatial index exists: " + name);
  }
  auto& s = spatial_[name];
  s = std::make_unique<spatial::SpatioTemporalIndex>(cell_size);
  return s.get();
}

Result<spatial::SpatioTemporalIndex*> MultiModelDb::GetSpatialIndex(
    const std::string& name) {
  auto it = spatial_.find(name);
  if (it == spatial_.end()) return Status::NotFound("no spatial index: " + name);
  return it->second.get();
}

Result<vision::VisionStore*> MultiModelDb::CreateVisionStore(
    const std::string& name) {
  if (vision_.count(name)) return Status::AlreadyExists("vision store exists");
  auto& v = vision_[name];
  v = std::make_unique<vision::VisionStore>();
  return v.get();
}

Result<vision::VisionStore*> MultiModelDb::GetVisionStore(const std::string& name) {
  auto it = vision_.find(name);
  if (it == vision_.end()) return Status::NotFound("no vision store: " + name);
  return it->second.get();
}

Result<sql::PlanPtr> MultiModelDb::VisionTableExpr(const std::string& store,
                                                   const std::string& alias) {
  OFI_ASSIGN_OR_RETURN(vision::VisionStore * v, GetVisionStore(store));
  return sql::MakeValues(v->AsTable(), alias);
}

Result<streaming::StreamEngine*> MultiModelDb::CreateStream(
    const std::string& name, std::vector<sql::Column> value_columns) {
  if (streams_.count(name)) return Status::AlreadyExists("stream exists");
  std::vector<sql::Column> cols = {{"time", sql::TypeId::kTimestamp, ""}};
  cols.insert(cols.end(), value_columns.begin(), value_columns.end());
  auto& s = streams_[name];
  s = std::make_unique<streaming::StreamEngine>(sql::Schema(std::move(cols)));
  return s.get();
}

Result<streaming::StreamEngine*> MultiModelDb::GetStream(const std::string& name) {
  auto it = streams_.find(name);
  if (it == streams_.end()) return Status::NotFound("no stream: " + name);
  return it->second.get();
}

sql::PlanPtr MultiModelDb::GraphTableExpr(
    const graph::Traversal& traversal,
    const std::vector<std::string>& property_cols,
    const std::string& alias) const {
  return sql::MakeValues(traversal.ToTable(property_cols), alias);
}

Result<sql::PlanPtr> MultiModelDb::TimeSeriesWindowExpr(
    const std::string& store, timeseries::Timestamp now,
    timeseries::Timestamp window_us, const std::string& alias) {
  OFI_ASSIGN_OR_RETURN(timeseries::EventStore * s, GetEventStore(store));
  return sql::MakeValues(s->Window(now, window_us), alias);
}

Result<sql::PlanPtr> MultiModelDb::SpatialBoxTimeExpr(
    const std::string& index, const spatial::BoundingBox& box, int64_t from,
    int64_t to, const std::string& alias) {
  OFI_ASSIGN_OR_RETURN(spatial::SpatioTemporalIndex * s, GetSpatialIndex(index));
  return sql::MakeValues(s->QueryBoxTimeTable(box, from, to), alias);
}

Result<sql::Table> MultiModelDb::Execute(const sql::PlanPtr& plan) {
  sql::Executor exec(&catalog_);
  OFI_ASSIGN_OR_RETURN(sql::Table result, exec.Execute(plan));
  last_rows_processed_ = exec.rows_processed();
  return result;
}

size_t TableByteSize(const sql::Table& table) {
  size_t n = 0;
  for (const auto& row : table.rows()) n += sql::RowByteSize(row);
  return n;
}

}  // namespace ofi::multimodel
