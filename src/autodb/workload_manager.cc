#include "autodb/workload_manager.h"

#include <algorithm>
#include <cmath>

namespace ofi::autodb {

void WorkloadManager::Drain(SimTime now) {
  // Bookkeeping is interval-based (see Submit); periodically drop intervals
  // that finished well before any plausible future arrival.
  auto it = std::remove_if(running_.begin(), running_.end(),
                           [&](const RunningQuery& q) { return q.finish <= now; });
  running_.erase(it, running_.end());
}

Result<SimTime> WorkloadManager::Submit(const std::string& query_class,
                                        SimTime arrival_us, double cost_units,
                                        SimTime service_us) {
  SimTime start = arrival_us;
  SimTime service = service_us;

  // Capacity in use at time t across every admitted query.
  auto in_use_at = [&](SimTime t) {
    double u = 0;
    for (const auto& q : running_) {
      if (q.start <= t && t < q.finish) u += q.cost;
    }
    return u;
  };

  if (config_.admission_control) {
    // Queue bound: queries admitted but not yet started at this arrival.
    size_t waiting = 0;
    for (const auto& q : running_) {
      if (q.start > arrival_us) ++waiting;
    }
    if (waiting >= config_.max_queue) {
      ++rejected_;
      return Status::ResourceExhausted("workload queue full");
    }
    // Earliest time with enough free capacity: test the arrival and every
    // later finish event.
    std::vector<SimTime> candidates = {arrival_us};
    for (const auto& q : running_) {
      if (q.finish > arrival_us) candidates.push_back(q.finish);
    }
    std::sort(candidates.begin(), candidates.end());
    for (SimTime t : candidates) {
      if (in_use_at(t) + cost_units <= config_.capacity_units + 1e-9) {
        start = t;
        break;
      }
      start = candidates.back();
    }
    if (start > arrival_us) ++queued_;
  } else {
    // No admission control: everything runs at once; execution slows with
    // oversubscription, super-linearly when thrashing (>2x capacity).
    double load = (in_use_at(arrival_us) + cost_units) / config_.capacity_units;
    if (load > 1.0) {
      double factor = load <= 2.0 ? load : std::pow(load, 1.5);
      service = static_cast<SimTime>(static_cast<double>(service) * factor);
    }
  }

  ++admitted_;
  SimTime finish = start + service;
  running_.push_back(RunningQuery{start, finish, cost_units});
  // Bound bookkeeping growth: drop long-finished intervals.
  if (running_.size() > 4096) Drain(arrival_us - 1);

  double response = static_cast<double>(finish - arrival_us);
  latencies_[query_class].Record(static_cast<int64_t>(response));
  if (info_ != nullptr) {
    info_->RecordQuery(QueryRecord{finish, query_class, cost_units, response, true});
    info_->RecordMetric("wm.response_us", finish, response);
  }
  return finish;
}

double WorkloadManager::AchievedP95(const std::string& query_class) const {
  auto it = latencies_.find(query_class);
  if (it == latencies_.end()) return 0;
  return static_cast<double>(it->second.Percentile(95));
}

bool WorkloadManager::MeetsSla(const std::vector<SlaTarget>& targets) const {
  for (const auto& t : targets) {
    if (AchievedP95(t.query_class) > t.p95_response_us) return false;
  }
  return true;
}

}  // namespace ofi::autodb
