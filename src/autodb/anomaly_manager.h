/// \file anomaly_manager.h
/// \brief The anomaly manager (paper Fig. 12): detects deviations from
/// normal conditions — datanode failures, slow disks, insufficient memory —
/// from the information store's metric streams, using sliding-window
/// z-scores plus hard thresholds, and drives the self-healing loop.
#pragma once

#include <string>
#include <vector>

#include "autodb/info_store.h"
#include "autodb/ml.h"

namespace ofi::autodb {

enum class AnomalySeverity : uint8_t { kWarning, kCritical };

struct Anomaly {
  std::string metric;
  int64_t ts = 0;
  double observed = 0;
  double expected = 0;  // window mean
  double z_score = 0;
  AnomalySeverity severity = AnomalySeverity::kWarning;
  std::string description;
};

/// One detection rule.
struct DetectionRule {
  std::string metric;
  /// z-score above which a warning fires.
  double warn_z = 3.0;
  /// z-score above which the anomaly is critical.
  double critical_z = 6.0;
  /// Optional hard ceiling: observed > ceiling is critical regardless of
  /// history (e.g. heartbeat gap = node failure). <= 0 disables.
  double hard_ceiling = 0;
  /// Sliding window length (samples) establishing "normal".
  size_t window = 32;
};

/// \brief Scans metric streams against rules.
class AnomalyManager {
 public:
  explicit AnomalyManager(const InformationStore* info) : info_(info) {}

  void AddRule(DetectionRule rule) { rules_.push_back(std::move(rule)); }

  /// Scans each rule's metric over [from, to): the first `window` samples
  /// seed the baseline, later samples are scored against the trailing
  /// window. Returns all anomalies found, oldest first.
  std::vector<Anomaly> Scan(int64_t from, int64_t to) const;

  /// Self-healing hook: a human-readable recommended action per anomaly
  /// (restart DN, rebalance shard, grow memory...).
  static std::string RecommendAction(const Anomaly& anomaly);

 private:
  const InformationStore* info_;
  std::vector<DetectionRule> rules_;
};

}  // namespace ofi::autodb
