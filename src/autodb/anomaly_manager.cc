#include "autodb/anomaly_manager.h"

#include <algorithm>
#include <cmath>

namespace ofi::autodb {

std::vector<Anomaly> AnomalyManager::Scan(int64_t from, int64_t to) const {
  std::vector<Anomaly> out;
  for (const auto& rule : rules_) {
    auto series = info_->metrics().Get(rule.metric);
    if (!series.ok()) continue;
    auto samples = (*series)->Range(from, to);
    std::vector<double> window;
    for (const auto& s : samples) {
      bool anomalous = false;
      Anomaly a;
      a.metric = rule.metric;
      a.ts = s.ts;
      a.observed = s.value;
      if (rule.hard_ceiling > 0 && s.value > rule.hard_ceiling) {
        a.severity = AnomalySeverity::kCritical;
        a.expected = rule.hard_ceiling;
        a.z_score = std::numeric_limits<double>::infinity();
        a.description = rule.metric + " exceeded hard ceiling";
        anomalous = true;
      } else if (window.size() >= rule.window) {
        WindowStats stats = ComputeWindowStats(window);
        double z = ZScore(s.value, stats);
        if (z >= rule.warn_z) {
          a.severity = z >= rule.critical_z ? AnomalySeverity::kCritical
                                            : AnomalySeverity::kWarning;
          a.expected = stats.mean;
          a.z_score = z;
          a.description = rule.metric + " deviates from baseline";
          anomalous = true;
        }
      }
      if (anomalous) {
        out.push_back(std::move(a));
      } else {
        // Only normal samples extend the baseline, so a sustained anomaly
        // keeps firing instead of being absorbed into "normal".
        window.push_back(s.value);
        if (window.size() > rule.window) {
          window.erase(window.begin());
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Anomaly& a, const Anomaly& b) { return a.ts < b.ts; });
  return out;
}

std::string AnomalyManager::RecommendAction(const Anomaly& anomaly) {
  const std::string& m = anomaly.metric;
  auto contains = [&](const char* needle) {
    return m.find(needle) != std::string::npos;
  };
  if (contains("heartbeat")) return "restart data node and fail over replicas";
  if (contains("disk")) return "migrate partitions off the slow disk";
  if (contains("memory")) return "grow memory quota / spill more aggressively";
  if (contains("latency") || contains("response")) {
    return "throttle background work and re-check workload manager queue";
  }
  return "collect diagnostics and page the (virtual) DBA";
}

}  // namespace ofi::autodb
