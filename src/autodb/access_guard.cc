#include "autodb/access_guard.h"

#include <set>

namespace ofi::autodb {

void AccessGuard::Expire(PrincipalState* st, int64_t now) const {
  while (!st->events.empty() && st->events.front().ts <= now - config_.window_us) {
    st->events.pop_front();
  }
}

AccessDecision AccessGuard::Evaluate(const PrincipalState& st) const {
  uint64_t rows = 0, failures = 0;
  std::set<std::string> tables;
  for (const Event& e : st.events) {
    if (e.failure) {
      ++failures;
    } else {
      rows += e.rows;
      tables.insert(e.table);
    }
  }
  if (rows >= config_.block_rows || failures >= config_.max_failures) {
    return AccessDecision::kBlock;
  }
  if (rows >= config_.throttle_rows || tables.size() > config_.max_distinct_tables) {
    return AccessDecision::kThrottle;
  }
  return AccessDecision::kAllow;
}

void AccessGuard::Audit(int64_t ts, const std::string& principal,
                        const std::string& table, uint64_t rows,
                        AccessDecision decision, const std::string& reason) {
  audit_.push_back(AuditRecord{ts, principal, table, rows, decision, reason});
}

AccessDecision AccessGuard::OnRead(const std::string& principal,
                                   const std::string& table, uint64_t rows,
                                   int64_t ts) {
  PrincipalState& st = principals_[principal];
  if (st.blocked) {
    Audit(ts, principal, table, rows, AccessDecision::kBlock, "already blocked");
    return AccessDecision::kBlock;
  }
  Expire(&st, ts);
  st.events.push_back(Event{ts, table, rows, false});
  AccessDecision decision = Evaluate(st);
  if (decision == AccessDecision::kBlock) {
    st.blocked = true;
    Audit(ts, principal, table, rows, decision, "mass export quota exceeded");
  } else if (decision == AccessDecision::kThrottle) {
    Audit(ts, principal, table, rows, decision, "read volume / table spread");
  }
  return decision;
}

AccessDecision AccessGuard::OnFailure(const std::string& principal, int64_t ts) {
  PrincipalState& st = principals_[principal];
  if (st.blocked) return AccessDecision::kBlock;
  Expire(&st, ts);
  st.events.push_back(Event{ts, "", 0, true});
  AccessDecision decision = Evaluate(st);
  if (decision == AccessDecision::kBlock) {
    st.blocked = true;
    Audit(ts, principal, "", 0, decision, "failed-request burst (probing)");
  }
  return decision;
}

void AccessGuard::Unblock(const std::string& principal) {
  auto it = principals_.find(principal);
  if (it != principals_.end()) {
    it->second.blocked = false;
    it->second.events.clear();
  }
}

}  // namespace ofi::autodb
