#include "autodb/change_manager.h"

#include <algorithm>

namespace ofi::autodb {

Status ChangeManager::DefineParameter(Parameter p) {
  if (p.min_value > p.max_value) {
    return Status::InvalidArgument("parameter range inverted: " + p.name);
  }
  if (p.value < p.min_value || p.value > p.max_value) {
    return Status::OutOfRange("initial value outside range: " + p.name);
  }
  if (!params_.emplace(p.name, p).second) {
    return Status::AlreadyExists("parameter exists: " + p.name);
  }
  return Status::OK();
}

Result<double> ChangeManager::Get(const std::string& name) const {
  auto it = params_.find(name);
  if (it == params_.end()) return Status::NotFound("no parameter: " + name);
  return it->second.value;
}

Status ChangeManager::Set(const std::string& name, double value) {
  auto it = params_.find(name);
  if (it == params_.end()) return Status::NotFound("no parameter: " + name);
  if (value < it->second.min_value || value > it->second.max_value) {
    return Status::OutOfRange("value outside range: " + name);
  }
  it->second.value = value;
  return Status::OK();
}

Result<double> ChangeManager::ApplyGuarded(const std::string& name, double value,
                                           const std::function<double()>& objective,
                                           double tolerance) {
  OFI_ASSIGN_OR_RETURN(double old_value, Get(name));
  double before = objective();
  OFI_RETURN_NOT_OK(Set(name, value));
  double after = objective();
  ChangeRecord rec{name, old_value, value, before, after, false};
  // Lower is better; regression beyond tolerance triggers rollback.
  if (after > before * (1.0 + tolerance)) {
    OFI_RETURN_NOT_OK(Set(name, old_value));
    rec.rolled_back = true;
    history_.push_back(rec);
    return old_value;
  }
  history_.push_back(rec);
  return value;
}

Result<double> ChangeManager::AutoTune(const std::string& name,
                                       const std::function<double()>& objective,
                                       double step, int iterations) {
  OFI_ASSIGN_OR_RETURN(double current, Get(name));
  auto it = params_.find(name);
  double best = current;
  double best_obj = objective();
  for (int i = 0; i < iterations; ++i) {
    bool improved = false;
    for (double candidate : {best * step, best / step}) {
      candidate = std::clamp(candidate, it->second.min_value, it->second.max_value);
      if (candidate == best) continue;
      OFI_RETURN_NOT_OK(Set(name, candidate));
      double obj = objective();
      history_.push_back(ChangeRecord{name, best, candidate, best_obj, obj, false});
      if (obj < best_obj) {
        best = candidate;
        best_obj = obj;
        improved = true;
      }
    }
    if (!improved) break;
  }
  OFI_RETURN_NOT_OK(Set(name, best));
  return best;
}

}  // namespace ofi::autodb
