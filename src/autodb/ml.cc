#include "autodb/ml.h"

#include <algorithm>
#include <cmath>

namespace ofi::autodb {

Status LinearRegression::Fit(const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("fit: bad training set");
  }
  size_t d = x[0].size();
  for (const auto& row : x) {
    if (row.size() != d) return Status::InvalidArgument("fit: ragged features");
  }
  // Normal equations over augmented features [x, 1]: (A^T A) w = A^T y.
  size_t n = d + 1;
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0));
  std::vector<double> aty(n, 0);
  for (size_t r = 0; r < x.size(); ++r) {
    std::vector<double> aug = x[r];
    aug.push_back(1.0);
    for (size_t i = 0; i < n; ++i) {
      aty[i] += aug[i] * y[r];
      for (size_t j = 0; j < n; ++j) ata[i][j] += aug[i] * aug[j];
    }
  }
  // Gaussian elimination with partial pivoting; ridge jitter for stability.
  for (size_t i = 0; i < n; ++i) ata[i][i] += 1e-9;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(ata[r][col]) > std::fabs(ata[pivot][col])) pivot = r;
    }
    if (std::fabs(ata[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("fit: singular system");
    }
    std::swap(ata[col], ata[pivot]);
    std::swap(aty[col], aty[pivot]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double f = ata[r][col] / ata[col][col];
      for (size_t c = col; c < n; ++c) ata[r][c] -= f * ata[col][c];
      aty[r] -= f * aty[col];
    }
  }
  weights_.assign(d, 0);
  for (size_t i = 0; i < d; ++i) weights_[i] = aty[i] / ata[i][i];
  bias_ = aty[d] / ata[d][d];
  fitted_ = true;
  return Status::OK();
}

Result<double> LinearRegression::Predict(const std::vector<double>& features) const {
  if (!fitted_) return Status::InvalidArgument("predict before fit");
  if (features.size() != weights_.size()) {
    return Status::InvalidArgument("predict: feature arity mismatch");
  }
  double out = bias_;
  for (size_t i = 0; i < features.size(); ++i) out += weights_[i] * features[i];
  return out;
}

Result<double> LinearRegression::Score(const std::vector<std::vector<double>>& x,
                                       const std::vector<double>& y) const {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("score: bad dataset");
  }
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    OFI_ASSIGN_OR_RETURN(double pred, Predict(x[i]));
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0) return ss_res == 0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Status KnnRegressor::Fit(std::vector<std::vector<double>> x,
                         std::vector<double> y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("knn fit: bad training set");
  }
  x_ = std::move(x);
  y_ = std::move(y);
  return Status::OK();
}

Result<double> KnnRegressor::Predict(const std::vector<double>& features) const {
  if (x_.empty()) return Status::InvalidArgument("knn predict before fit");
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(x_.size());
  for (size_t i = 0; i < x_.size(); ++i) {
    if (x_[i].size() != features.size()) {
      return Status::InvalidArgument("knn: feature arity mismatch");
    }
    double d2 = 0;
    for (size_t j = 0; j < features.size(); ++j) {
      double d = x_[i][j] - features[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, i);
  }
  size_t k = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
  double sum = 0;
  for (size_t i = 0; i < k; ++i) sum += y_[dist[i].second];
  return sum / static_cast<double>(k);
}

WindowStats ComputeWindowStats(const std::vector<double>& values) {
  WindowStats s;
  if (values.empty()) return s;
  for (double v : values) s.mean += v;
  s.mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double ZScore(double value, const WindowStats& stats) {
  if (stats.stddev == 0) return 0;
  return (value - stats.mean) / stats.stddev;
}

}  // namespace ofi::autodb
