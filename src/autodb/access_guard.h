/// \file access_guard.h
/// \brief The SELF-PROTECTING property of the autonomous database (paper
/// §IV-A: "recognize and circumvent data, privacy and security threats").
/// The guard watches per-principal access behaviour and intervenes on
/// patterns that look like exfiltration or abuse:
///  * mass export — rows read in a sliding window exceed a quota;
///  * table scraping — too many distinct tables touched in the window;
///  * brute probing — a burst of failed (denied / not-found) requests.
/// Interventions escalate: observe -> throttle -> block; decisions are
/// recorded for audit.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ofi::autodb {

enum class AccessDecision : uint8_t { kAllow, kThrottle, kBlock };

struct AccessGuardConfig {
  /// Sliding window length (microseconds of event time).
  int64_t window_us = 60'000'000;
  /// Rows a principal may read per window before throttling.
  uint64_t throttle_rows = 100'000;
  /// Rows per window before outright blocking.
  uint64_t block_rows = 1'000'000;
  /// Distinct tables per window before throttling (scraping detector).
  size_t max_distinct_tables = 16;
  /// Failed requests per window before blocking (probe detector).
  uint64_t max_failures = 32;
};

/// One audit-trail record.
struct AuditRecord {
  int64_t ts = 0;
  std::string principal;
  std::string table;
  uint64_t rows = 0;
  AccessDecision decision = AccessDecision::kAllow;
  std::string reason;
};

/// \brief Per-principal behavioural rate limiting.
class AccessGuard {
 public:
  explicit AccessGuard(AccessGuardConfig config = AccessGuardConfig{})
      : config_(config) {}

  /// Records a (successful) read of `rows` rows from `table` and returns
  /// the decision for THIS request. A blocked principal stays blocked until
  /// Unblock().
  AccessDecision OnRead(const std::string& principal, const std::string& table,
                        uint64_t rows, int64_t ts);

  /// Records a failed request (permission denied / missing object).
  AccessDecision OnFailure(const std::string& principal, int64_t ts);

  /// Clears a principal's block (operator override).
  void Unblock(const std::string& principal);

  bool IsBlocked(const std::string& principal) const {
    auto it = principals_.find(principal);
    return it != principals_.end() && it->second.blocked;
  }

  const std::vector<AuditRecord>& audit_log() const { return audit_; }

 private:
  struct Event {
    int64_t ts;
    std::string table;
    uint64_t rows;
    bool failure;
  };
  struct PrincipalState {
    std::deque<Event> events;
    bool blocked = false;
  };

  void Expire(PrincipalState* st, int64_t now) const;
  AccessDecision Evaluate(const PrincipalState& st) const;
  void Audit(int64_t ts, const std::string& principal, const std::string& table,
             uint64_t rows, AccessDecision decision, const std::string& reason);

  AccessGuardConfig config_;
  std::map<std::string, PrincipalState> principals_;
  std::vector<AuditRecord> audit_;
};

}  // namespace ofi::autodb
