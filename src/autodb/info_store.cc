#include "autodb/info_store.h"

namespace ofi::autodb {

Result<double> InformationStore::MetricMean(const std::string& metric,
                                            int64_t from, int64_t to) const {
  OFI_ASSIGN_OR_RETURN(const timeseries::Series* s, metrics_.Get(metric));
  auto samples = s->Range(from, to);
  if (samples.empty()) return Status::NotFound("no samples in range");
  double sum = 0;
  for (const auto& smp : samples) sum += smp.value;
  return sum / static_cast<double>(samples.size());
}

std::vector<QueryRecord> InformationStore::RecentQueries(
    const std::string& query_class, size_t limit) const {
  std::vector<QueryRecord> out;
  for (auto it = queries_.rbegin(); it != queries_.rend() && out.size() < limit;
       ++it) {
    if (it->query_class == query_class) out.push_back(*it);
  }
  return out;
}

}  // namespace ofi::autodb
