/// \file ml.h
/// \brief The in-DB machine learning component (paper Fig. 12): small,
/// dependency-free learners the managers call — multivariate linear
/// regression (normal equations via Gaussian elimination) for response-time
/// prediction, a kNN regressor for non-linear surfaces, and z-score
/// utilities shared with anomaly detection.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace ofi::autodb {

/// \brief Ordinary least squares: y ≈ w·x + b.
class LinearRegression {
 public:
  /// Fits on rows of features X and targets y. Requires |X| == |y| > 0 and
  /// consistent feature arity.
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Prediction; must be fitted first.
  Result<double> Predict(const std::vector<double>& features) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  bool fitted() const { return fitted_; }

  /// R² on a dataset.
  Result<double> Score(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& y) const;

 private:
  std::vector<double> weights_;
  double bias_ = 0;
  bool fitted_ = false;
};

/// \brief k-nearest-neighbour regressor (Euclidean, mean of neighbours).
class KnnRegressor {
 public:
  explicit KnnRegressor(size_t k = 3) : k_(k) {}

  Status Fit(std::vector<std::vector<double>> x, std::vector<double> y);
  Result<double> Predict(const std::vector<double>& features) const;

 private:
  size_t k_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
};

/// Mean and (population) standard deviation of a window.
struct WindowStats {
  double mean = 0;
  double stddev = 0;
};
WindowStats ComputeWindowStats(const std::vector<double>& values);

/// z-score of `value` against the window (0 when stddev == 0).
double ZScore(double value, const WindowStats& stats);

}  // namespace ofi::autodb
