/// \file info_store.h
/// \brief The information store of the autonomous database (paper Fig. 12):
/// continuously collected system performance and workload observations that
/// every other manager (anomaly, workload, change) and the in-DB ML
/// component read from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "timeseries/timeseries.h"

namespace ofi::autodb {

/// One completed query observation.
struct QueryRecord {
  int64_t ts = 0;            // completion time (us)
  std::string query_class;   // e.g. "point", "report", "etl"
  double cost_units = 0;     // work units consumed
  double response_time_us = 0;
  bool met_sla = true;
};

/// \brief Metrics + workload history.
class InformationStore {
 public:
  /// Records a system metric sample, e.g. ("dn0.disk_read_us", t, 150).
  void RecordMetric(const std::string& metric, int64_t ts, double value) {
    metrics_.Append(metric, ts, value);
  }

  /// Records a completed query.
  void RecordQuery(QueryRecord record) { queries_.push_back(std::move(record)); }

  const timeseries::MetricStore& metrics() const { return metrics_; }
  timeseries::MetricStore& mutable_metrics() { return metrics_; }
  const std::vector<QueryRecord>& queries() const { return queries_; }

  /// Mean of a metric over [from, to); NotFound if the series is absent.
  Result<double> MetricMean(const std::string& metric, int64_t from,
                            int64_t to) const;

  /// Queries of one class, most recent `limit`.
  std::vector<QueryRecord> RecentQueries(const std::string& query_class,
                                         size_t limit) const;

 private:
  timeseries::MetricStore metrics_;
  std::vector<QueryRecord> queries_;
};

}  // namespace ofi::autodb
