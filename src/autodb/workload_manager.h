/// \file workload_manager.h
/// \brief The workload manager (paper Fig. 12): monitors and controls query
/// execution so the system meets its SLA (e.g. p95 response time). Queries
/// consume capacity units; when the system is saturated, arrivals queue (or
/// are rejected past a queue bound) instead of overloading execution —
/// admission control in the style of big MPP warehouses.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "autodb/info_store.h"
#include "common/metrics.h"
#include "common/sim_clock.h"

namespace ofi::autodb {

/// SLA target for one query class.
struct SlaTarget {
  std::string query_class;
  double p95_response_us = 0;
};

struct WorkloadManagerConfig {
  /// Total concurrent capacity units the engine can execute.
  double capacity_units = 8;
  /// Queue bound; arrivals beyond it are rejected (ResourceExhausted).
  size_t max_queue = 256;
  /// When false, every query is admitted immediately (the "no manager"
  /// baseline of experiment E10).
  bool admission_control = true;
};

/// \brief Simulated admission-controlled execution.
class WorkloadManager {
 public:
  WorkloadManager(WorkloadManagerConfig config, InformationStore* info)
      : config_(config), info_(info) {}

  /// Submits a query arriving at `arrival_us` needing `cost_units` capacity
  /// for `service_us` of execution. Returns the completion time, or
  /// ResourceExhausted when the queue is full.
  Result<SimTime> Submit(const std::string& query_class, SimTime arrival_us,
                         double cost_units, SimTime service_us);

  /// Achieved p95 for a class (from the recorded history).
  double AchievedP95(const std::string& query_class) const;

  /// True if every target is met by the recorded history.
  bool MeetsSla(const std::vector<SlaTarget>& targets) const;

  uint64_t admitted() const { return admitted_; }
  uint64_t queued() const { return queued_; }
  uint64_t rejected() const { return rejected_; }

 private:
  struct RunningQuery {
    SimTime start;
    SimTime finish;
    double cost;
  };

  /// Drops bookkeeping for queries finished by `now`.
  void Drain(SimTime now);

  WorkloadManagerConfig config_;
  InformationStore* info_;
  std::vector<RunningQuery> running_;
  std::map<std::string, LatencyHistogram> latencies_;
  uint64_t admitted_ = 0, queued_ = 0, rejected_ = 0;
};

}  // namespace ofi::autodb
