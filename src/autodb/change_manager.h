/// \file change_manager.h
/// \brief The change manager (paper Fig. 12): owns tunable configuration
/// parameters, applies changes with full history, and rolls a change back
/// when the observed objective regresses — the self-configuring /
/// self-healing loop. Includes a hill-climbing auto-tuner (BestConfig-style
/// search over one knob at a time).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ofi::autodb {

/// One tunable knob.
struct Parameter {
  std::string name;
  double value = 0;
  double min_value = 0;
  double max_value = 0;
};

/// One applied change (the audit trail).
struct ChangeRecord {
  std::string parameter;
  double old_value = 0;
  double new_value = 0;
  double objective_before = 0;
  double objective_after = 0;
  bool rolled_back = false;
};

/// \brief Parameter registry + guarded change application + auto-tuner.
class ChangeManager {
 public:
  Status DefineParameter(Parameter p);
  Result<double> Get(const std::string& name) const;
  /// Unconditional set (range-checked).
  Status Set(const std::string& name, double value);

  /// Applies a change, evaluates `objective` (lower is better) before and
  /// after, and rolls back if it regressed by more than `tolerance`
  /// (relative). Returns the final (kept) value.
  Result<double> ApplyGuarded(const std::string& name, double value,
                              const std::function<double()>& objective,
                              double tolerance = 0.05);

  /// Hill-climbs one knob: tries value*step and value/step repeatedly,
  /// keeping improvements, for at most `iterations` rounds. Returns the best
  /// value found.
  Result<double> AutoTune(const std::string& name,
                          const std::function<double()>& objective,
                          double step = 2.0, int iterations = 8);

  const std::vector<ChangeRecord>& history() const { return history_; }

 private:
  std::map<std::string, Parameter> params_;
  std::vector<ChangeRecord> history_;
};

}  // namespace ofi::autodb
