#include "storage/delta_store.h"

#include <algorithm>
#include <utility>

namespace ofi::storage {

namespace {

/// Clustering order for sealed rows (leading column first, xmin breaking
/// ties so the encode order is deterministic across hash-map dump walks).
bool RowLess(const sql::Row& a, const sql::Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

/// True when folding `xid` can never collide with an Algorithm-1
/// DOWNGRADE: either the xid is local-only (no gxid binding) or its
/// global transaction is below the GTM safe horizon, so every present and
/// future merged snapshot already resolves it committed.
bool GxidSafe(const txn::CommitLog& clog, txn::Xid xid, txn::Gxid safe) {
  txn::Gxid g = clog.GxidFor(xid);
  return g == txn::kNoGxid || g < safe;
}

}  // namespace

DeltaShard::DeltaShard(sql::Schema schema)
    : schema_(std::move(schema)),
      sealed_(std::make_shared<const ColumnTable>(schema_)) {}

DeltaShard::FoldClass DeltaShard::Classify(txn::Xid xmin, txn::Xid xmax,
                                           const txn::CommitLog& clog,
                                           txn::Xid local_horizon,
                                           txn::Gxid global_safe) {
  if (clog.IsAborted(xmin)) return FoldClass::kDead;
  const bool xmin_folds = clog.IsCommitted(xmin) && xmin < local_horizon &&
                          GxidSafe(clog, xmin, global_safe);
  if (!xmin_folds) return FoldClass::kDelta;
  if (xmax == txn::kInvalidXid || clog.IsAborted(xmax)) {
    return FoldClass::kSealedLive;
  }
  if (clog.IsCommitted(xmax) && xmax < local_horizon &&
      GxidSafe(clog, xmax, global_safe)) {
    return FoldClass::kDead;
  }
  return FoldClass::kSealedWithXmax;
}

void DeltaShard::InstallBase(HeapDump dump, const txn::CommitLog* clog,
                             txn::Xid local_horizon, txn::Gxid global_safe,
                             uint64_t heap_epoch) {
  struct SealEntry {
    sql::Value key;
    sql::Row row;
    txn::Xid xmin;
    txn::Xid xmax;
  };
  std::vector<SealEntry> seal;
  std::vector<DeltaRecord> tail;
  for (auto& [key, chain] : dump) {
    for (auto& v : chain) {
      switch (Classify(v.xmin, v.xmax, *clog, local_horizon, global_safe)) {
        case FoldClass::kDead:
          break;
        case FoldClass::kSealedLive:
          seal.push_back({key, std::move(v.data), v.xmin, txn::kInvalidXid});
          break;
        case FoldClass::kSealedWithXmax:
          seal.push_back({key, std::move(v.data), v.xmin, v.xmax});
          break;
        case FoldClass::kDelta:
          tail.push_back(DeltaRecord{v.xmin, v.xmax, key, std::move(v.data)});
          break;
      }
    }
  }
  std::sort(seal.begin(), seal.end(), [](const SealEntry& a, const SealEntry& b) {
    if (RowLess(a.row, b.row)) return true;
    if (RowLess(b.row, a.row)) return false;
    return a.xmin < b.xmin;
  });
  std::sort(tail.begin(), tail.end(), [](const DeltaRecord& a, const DeltaRecord& b) {
    if (a.xmin != b.xmin) return a.xmin < b.xmin;
    return a.key.Compare(b.key) < 0;
  });

  auto table = std::make_shared<ColumnTable>(schema_);
  std::vector<sql::Value> keys;
  std::vector<txn::Xid> xmins, xmaxs;
  keys.reserve(seal.size());
  xmins.reserve(seal.size());
  xmaxs.reserve(seal.size());
  for (auto& e : seal) {
    (void)table->Append(e.row);
    keys.push_back(e.key);
    xmins.push_back(e.xmin);
    xmaxs.push_back(e.xmax);
  }
  table->Seal();

  std::unique_lock lock(mu_);
  sealed_ = std::move(table);
  sealed_keys_ = std::move(keys);
  sealed_xmin_ = std::move(xmins);
  sealed_xmax_ = std::move(xmaxs);
  sealed_index_.clear();
  marked_rows_.clear();
  for (uint32_t r = 0; r < sealed_keys_.size(); ++r) {
    sealed_index_[sealed_keys_[r]].push_back(r);
    if (sealed_xmax_[r] != txn::kInvalidXid) marked_rows_.push_back(r);
  }
  delta_ = std::move(tail);
  delta_index_.clear();
  for (size_t i = 0; i < delta_.size(); ++i) {
    delta_index_[delta_[i].key].push_back(i);
  }
  heap_epoch_ = heap_epoch;
  ++version_;
  // Mutations that raced the build arrived after the dump: apply them now,
  // in heap order, before scans are allowed in.
  for (const HeapChange& c : pending_) ApplyLocked(c);
  pending_.clear();
  ready_ = true;
}

void DeltaShard::OnHeapChange(const HeapChange& change) {
  std::unique_lock lock(mu_);
  if (!ready_) {
    pending_.push_back(change);
    return;
  }
  ApplyLocked(change);
}

void DeltaShard::MarkSealedLocked(uint32_t row, txn::Xid xid) {
  if (sealed_xmax_[row] == txn::kInvalidXid) {
    auto it = std::lower_bound(marked_rows_.begin(), marked_rows_.end(), row);
    marked_rows_.insert(it, row);
  }
  sealed_xmax_[row] = xid;
}

void DeltaShard::ClearSealedMarkLocked(uint32_t row) {
  sealed_xmax_[row] = txn::kInvalidXid;
  auto it = std::lower_bound(marked_rows_.begin(), marked_rows_.end(), row);
  if (it != marked_rows_.end() && *it == row) marked_rows_.erase(it);
}

void DeltaShard::ApplyLocked(const HeapChange& change) {
  switch (change.op) {
    case HeapChange::Op::kInsert: {
      delta_index_[change.key].push_back(delta_.size());
      delta_.push_back(
          DeltaRecord{change.xid, txn::kInvalidXid, change.key, change.row});
      return;
    }
    case HeapChange::Op::kMarkDeleted: {
      // The heap marked the version created by target_xmin. Newest-first
      // through the tail (a key's latest matching version is the one a
      // writer's FindVisible returned), then the sealed sidecar.
      auto dit = delta_index_.find(change.key);
      if (dit != delta_index_.end()) {
        for (auto it = dit->second.rbegin(); it != dit->second.rend(); ++it) {
          DeltaRecord& rec = delta_[*it];
          if (rec.xmin == change.target_xmin &&
              (rec.xmax == txn::kInvalidXid || rec.xmax == change.xid)) {
            rec.xmax = change.xid;
            return;
          }
        }
      }
      auto sit = sealed_index_.find(change.key);
      if (sit != sealed_index_.end()) {
        for (uint32_t r : sit->second) {
          if (sealed_xmin_[r] == change.target_xmin) {
            MarkSealedLocked(r, change.xid);
            return;
          }
        }
      }
      return;
    }
    case HeapChange::Op::kClearXmax: {
      auto dit = delta_index_.find(change.key);
      if (dit != delta_index_.end()) {
        for (size_t i : dit->second) {
          if (delta_[i].xmax == change.xid) delta_[i].xmax = txn::kInvalidXid;
        }
      }
      auto sit = sealed_index_.find(change.key);
      if (sit != sealed_index_.end()) {
        for (uint32_t r : sit->second) {
          if (sealed_xmax_[r] == change.xid) ClearSealedMarkLocked(r);
        }
      }
      return;
    }
    case HeapChange::Op::kClearXmaxAll: {
      for (DeltaRecord& rec : delta_) {
        if (rec.xmax == change.xid) rec.xmax = txn::kInvalidXid;
      }
      for (size_t i = marked_rows_.size(); i > 0; --i) {
        uint32_t r = marked_rows_[i - 1];
        if (sealed_xmax_[r] == change.xid) ClearSealedMarkLocked(r);
      }
      return;
    }
  }
}

DeltaShard::View DeltaShard::Snapshot(const txn::VisibilityChecker& vis) const {
  View v;
  std::shared_lock lock(mu_);
  v.sealed = sealed_;
  for (uint32_t r : marked_rows_) {
    if (vis.XidVisible(sealed_xmax_[r])) v.excluded.push_back(r);
  }
  v.delta_examined = delta_.size();
  for (const DeltaRecord& rec : delta_) {
    if (vis.TupleVisible(rec.xmin, rec.xmax)) v.delta_rows.push_back(rec.row);
  }
  return v;
}

DeltaShard::MergeResult DeltaShard::Merge(const txn::CommitLog& clog,
                                          txn::Xid local_horizon,
                                          txn::Gxid global_safe,
                                          uint64_t heap_epoch) {
  std::lock_guard merge_lock(merge_mu_);
  MergeResult result;

  // Phase 1: snapshot the shard state. The sealed table is immutable; the
  // tail prefix [0, base_count) is stable in place until we install (only
  // installs erase records, and merge_mu_ serializes installs).
  std::shared_ptr<const ColumnTable> base;
  std::vector<DeltaRecord> prefix;
  std::vector<txn::Xid> xmin_copy, xmax_copy;
  std::vector<sql::Value> keys_copy;
  uint64_t v0;
  {
    std::shared_lock lock(mu_);
    base = sealed_;
    prefix.assign(delta_.begin(), delta_.end());
    xmin_copy = sealed_xmin_;
    xmax_copy = sealed_xmax_;
    keys_copy = sealed_keys_;
    v0 = version_;
  }
  const size_t base_count = prefix.size();

  // Phase 2: classify, outside every lock. Scans and tail appends proceed.
  std::vector<uint8_t> drop_rec(base_count, 0);
  std::vector<uint8_t> fold_rec(base_count, 0);
  size_t n_fold = 0;
  for (size_t i = 0; i < base_count; ++i) {
    switch (Classify(prefix[i].xmin, prefix[i].xmax, clog, local_horizon,
                     global_safe)) {
      case FoldClass::kDead:
        drop_rec[i] = 1;
        ++result.dropped;
        break;
      case FoldClass::kSealedLive:
      case FoldClass::kSealedWithXmax:
        fold_rec[i] = 1;
        ++n_fold;
        break;
      case FoldClass::kDelta:
        break;
    }
  }
  // Sealed rows whose deleter is below every horizon are reclaimable.
  std::vector<uint8_t> drop_row(xmax_copy.size(), 0);
  size_t n_drop_rows = 0;
  for (uint32_t r = 0; r < xmax_copy.size(); ++r) {
    txn::Xid x = xmax_copy[r];
    if (x == txn::kInvalidXid) continue;
    if (clog.IsCommitted(x) && x < local_horizon &&
        GxidSafe(clog, x, global_safe)) {
      drop_row[r] = 1;
      ++n_drop_rows;
    }
  }
  result.dropped += n_drop_rows;
  if (n_fold == 0 && n_drop_rows == 0 && result.dropped == 0) return result;
  result.folded = n_fold;

  // Folds encode in clustering order among themselves.
  std::vector<size_t> fold_order;
  fold_order.reserve(n_fold);
  for (size_t i = 0; i < base_count; ++i) {
    if (fold_rec[i]) fold_order.push_back(i);
  }
  std::sort(fold_order.begin(), fold_order.end(), [&](size_t a, size_t b) {
    if (RowLess(prefix[a].row, prefix[b].row)) return true;
    if (RowLess(prefix[b].row, prefix[a].row)) return false;
    return prefix[a].xmin < prefix[b].xmin;
  });

  // Phase 2b: build the replacement sealed table. Cheap path: copy the
  // compressed chunks (no re-encode) and append the folds as a fresh
  // chunk. Rewrite path (dead sealed rows): re-encode the survivors +
  // folds so exclusions do not accumulate and the sel=nullptr metadata
  // fast paths come back.
  auto table = std::make_shared<ColumnTable>(schema_);
  std::vector<sql::Value> new_keys;
  std::vector<txn::Xid> new_xmin;
  // Where each surviving old sealed row / folded record landed.
  std::vector<uint32_t> row_map(xmax_copy.size(), UINT32_MAX);
  std::vector<std::pair<size_t, uint32_t>> fold_map;  // delta idx -> new row
  fold_map.reserve(n_fold);
  if (n_drop_rows == 0) {
    *table = *base;  // value copy of the compressed chunks
    for (uint32_t r = 0; r < xmax_copy.size(); ++r) row_map[r] = r;
    new_keys = keys_copy;
    new_xmin = xmin_copy;
    uint32_t next = static_cast<uint32_t>(base->sealed_rows());
    for (size_t i : fold_order) {
      (void)table->Append(prefix[i].row);
      new_keys.push_back(prefix[i].key);
      new_xmin.push_back(prefix[i].xmin);
      fold_map.emplace_back(i, next++);
    }
    table->Seal();
  } else {
    result.rewrote = true;
    struct Entry {
      const sql::Row* row;
      const sql::Value* key;
      txn::Xid xmin;
      bool from_delta;
      size_t src;  // old sealed row id or delta index
    };
    std::vector<uint32_t> survivors;
    for (uint32_t r = 0; r < xmax_copy.size(); ++r) {
      if (!drop_row[r]) survivors.push_back(r);
    }
    std::vector<sql::Row> gathered = base->Gather(survivors).ValueOrDie();
    std::vector<Entry> entries;
    entries.reserve(survivors.size() + n_fold);
    for (size_t j = 0; j < survivors.size(); ++j) {
      entries.push_back(Entry{&gathered[j], &keys_copy[survivors[j]],
                              xmin_copy[survivors[j]], false, survivors[j]});
    }
    for (size_t i : fold_order) {
      entries.push_back(Entry{&prefix[i].row, &prefix[i].key, prefix[i].xmin,
                              true, i});
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
      if (RowLess(*a.row, *b.row)) return true;
      if (RowLess(*b.row, *a.row)) return false;
      return a.xmin < b.xmin;
    });
    uint32_t next = 0;
    for (const Entry& e : entries) {
      (void)table->Append(*e.row);
      new_keys.push_back(*e.key);
      new_xmin.push_back(e.xmin);
      if (e.from_delta) {
        fold_map.emplace_back(e.src, next);
      } else {
        row_map[e.src] = next;
      }
      ++next;
    }
    table->Seal();
  }

  // Phase 3: the exclusive install. Re-read every xmax from the live state
  // so marks and rollbacks that landed mid-merge carry over, splice the
  // unfolded prefix records onto the tail suffix, and swap.
  std::unique_lock lock(mu_);
  if (version_ != v0) return MergeResult{};  // lost a racing install
  const size_t n_new = new_keys.size();
  std::vector<txn::Xid> new_xmax(n_new, txn::kInvalidXid);
  for (uint32_t r = 0; r < row_map.size(); ++r) {
    if (row_map[r] != UINT32_MAX) new_xmax[row_map[r]] = sealed_xmax_[r];
  }
  for (const auto& [delta_idx, new_row] : fold_map) {
    new_xmax[new_row] = delta_[delta_idx].xmax;
  }
  std::vector<DeltaRecord> new_delta;
  new_delta.reserve(delta_.size() - n_fold - result.dropped + n_drop_rows);
  for (size_t i = 0; i < base_count; ++i) {
    if (!drop_rec[i] && !fold_rec[i]) new_delta.push_back(std::move(delta_[i]));
  }
  for (size_t i = base_count; i < delta_.size(); ++i) {
    new_delta.push_back(std::move(delta_[i]));
  }
  sealed_ = std::move(table);
  sealed_keys_ = std::move(new_keys);
  sealed_xmin_ = std::move(new_xmin);
  sealed_xmax_ = std::move(new_xmax);
  sealed_index_.clear();
  marked_rows_.clear();
  for (uint32_t r = 0; r < sealed_keys_.size(); ++r) {
    sealed_index_[sealed_keys_[r]].push_back(r);
    if (sealed_xmax_[r] != txn::kInvalidXid) marked_rows_.push_back(r);
  }
  delta_ = std::move(new_delta);
  delta_index_.clear();
  for (size_t i = 0; i < delta_.size(); ++i) {
    delta_index_[delta_[i].key].push_back(i);
  }
  heap_epoch_ = heap_epoch;
  ++version_;
  ++merge_count_;
  return result;
}

}  // namespace ofi::storage
