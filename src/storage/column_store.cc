#include "storage/column_store.h"

#include <algorithm>
#include <cstring>
#include <memory>

namespace ofi::storage {
namespace {

/// Builds the packed validity bitmap (empty when every row is valid).
std::vector<uint64_t> PackValidity(const std::vector<bool>* valid, size_t n) {
  if (valid == nullptr) return {};
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if (!(*valid)[i]) {
      any_null = true;
      break;
    }
  }
  if (!any_null) return {};
  std::vector<uint64_t> bits((n + 63) / 64, 0);
  for (size_t i = 0; i < n; ++i) {
    if ((*valid)[i]) bits[i >> 6] |= uint64_t{1} << (i & 63);
  }
  return bits;
}

uint32_t CountNulls(const std::vector<uint64_t>& validity, size_t n) {
  if (validity.empty()) return 0;
  return static_cast<uint32_t>(n - BitmapCountValid(validity, 0, n));
}

}  // namespace

size_t BitmapCountValid(const std::vector<uint64_t>& validity, size_t begin,
                        size_t end) {
  if (validity.empty()) return end - begin;
  size_t count = 0;
  size_t i = begin;
  // Partial leading word.
  while (i < end && (i & 63) != 0) count += BitmapValidAt(validity, i++);
  // Whole words.
  while (i + 64 <= end) {
    count += static_cast<size_t>(__builtin_popcountll(validity[i >> 6]));
    i += 64;
  }
  // Partial trailing word.
  while (i < end) count += BitmapValidAt(validity, i++);
  return count;
}

void ScanStats::MergeFrom(const ScanStats& o) {
  chunks_total += o.chunks_total;
  chunks_scanned += o.chunks_scanned;
  chunks_pruned += o.chunks_pruned;
  rows_decoded += o.rows_decoded;
  rows_matched += o.rows_matched;
  morsels += o.morsels;
  delta_rows += o.delta_rows;
  index_rows += o.index_rows;
}

size_t Int64Chunk::CompressedBytes() const {
  size_t n = validity.size() * sizeof(uint64_t);
  if (encoding == Encoding::kRle) {
    return n + rle_values.size() * sizeof(int64_t) +
           rle_lengths.size() * sizeof(uint32_t);
  }
  return n + plain.size() * sizeof(int64_t);
}

void Int64Chunk::Decode(std::vector<int64_t>* out) const {
  out->clear();
  out->reserve(num_rows);
  if (encoding == Encoding::kRle) {
    for (size_t i = 0; i < rle_values.size(); ++i) {
      out->insert(out->end(), rle_lengths[i], rle_values[i]);
    }
  } else {
    *out = plain;
  }
}

size_t StringChunk::CompressedBytes() const {
  size_t n = validity.size() * sizeof(uint64_t);
  if (encoding == Encoding::kDict) {
    n += codes.size() * sizeof(uint32_t);
    for (const auto& s : dict) n += s.size() + 4;
    return n;
  }
  for (const auto& s : plain) n += s.size() + 4;
  return n;
}

Int64Chunk EncodeInt64(const std::vector<int64_t>& values,
                       const std::vector<bool>* valid) {
  Int64Chunk chunk;
  chunk.num_rows = values.size();
  chunk.validity = PackValidity(valid, values.size());
  chunk.zone.num_rows = static_cast<uint32_t>(values.size());
  chunk.zone.null_count = CountNulls(chunk.validity, values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!chunk.ValidAt(i)) continue;
    chunk.zone.min = std::min(chunk.zone.min, values[i]);
    chunk.zone.max = std::max(chunk.zone.max, values[i]);
  }
  // Build RLE and keep it only if it actually compresses. NULL placeholders
  // participate in runs like any value; validity is consulted on scan.
  std::vector<int64_t> rv;
  std::vector<uint32_t> rl;
  for (int64_t v : values) {
    if (!rv.empty() && rv.back() == v && rl.back() < UINT32_MAX) {
      rl.back()++;
    } else {
      rv.push_back(v);
      rl.push_back(1);
    }
  }
  size_t rle_bytes = rv.size() * sizeof(int64_t) + rl.size() * sizeof(uint32_t);
  if (rle_bytes < values.size() * sizeof(int64_t)) {
    chunk.encoding = Encoding::kRle;
    chunk.rle_values = std::move(rv);
    chunk.rle_lengths = std::move(rl);
  } else {
    chunk.encoding = Encoding::kPlain;
    chunk.plain = values;
  }
  return chunk;
}

StringChunk EncodeString(const std::vector<std::string>& values,
                         const std::vector<bool>* valid) {
  StringChunk chunk;
  chunk.num_rows = values.size();
  chunk.validity = PackValidity(valid, values.size());
  chunk.null_count = CountNulls(chunk.validity, values.size());
  bool first = true;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!chunk.ValidAt(i)) continue;
    if (first || values[i] < chunk.zone_min) chunk.zone_min = values[i];
    if (first || values[i] > chunk.zone_max) chunk.zone_max = values[i];
    first = false;
  }
  std::unordered_map<std::string, uint32_t> index;
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const auto& s : values) {
    auto [it, inserted] = index.emplace(s, static_cast<uint32_t>(dict.size()));
    if (inserted) dict.push_back(s);
    codes.push_back(it->second);
  }
  size_t dict_bytes = codes.size() * sizeof(uint32_t);
  for (const auto& s : dict) dict_bytes += s.size() + 4;
  size_t plain_bytes = 0;
  for (const auto& s : values) plain_bytes += s.size() + 4;
  if (dict_bytes < plain_bytes) {
    chunk.encoding = Encoding::kDict;
    chunk.dict = std::move(dict);
    chunk.codes = std::move(codes);
  } else {
    chunk.encoding = Encoding::kPlain;
    chunk.plain = values;
  }
  return chunk;
}

ColumnTable::ColumnTable(sql::Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

size_t ColumnTable::num_chunks() const {
  if (columns_.empty()) return 0;
  const ColumnData& c = columns_[0];
  return c.type == sql::TypeId::kString ? c.string_chunks.size()
                                        : c.int_chunks.size();
}

Status ColumnTable::Append(const sql::Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("column append: arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnData& c = columns_[i];
    const bool valid = !row[i].is_null();
    switch (c.type) {
      case sql::TypeId::kInt64:
      case sql::TypeId::kTimestamp:
        c.int_tail.push_back(valid ? row[i].AsInt() : 0);
        break;
      case sql::TypeId::kDouble: {
        double d = valid ? row[i].AsDouble() : 0.0;
        int64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        c.int_tail.push_back(bits);
        break;
      }
      case sql::TypeId::kString:
        c.string_tail.push_back(valid ? row[i].AsString() : "");
        break;
      default:
        return Status::NotImplemented("column type unsupported");
    }
    c.tail_valid.push_back(valid);
  }
  ++num_rows_;
  if (num_rows_ - sealed_rows_ == kChunkRows) Seal();
  return Status::OK();
}

void ColumnTable::Seal() {
  if (sealed_rows_ == num_rows_) return;  // idempotent: nothing buffered
  for (auto& c : columns_) EncodeTail(&c);
  sealed_rows_ = num_rows_;
}

void ColumnTable::EncodeTail(ColumnData* c) {
  if (!c->int_tail.empty()) {
    c->int_chunks.push_back(EncodeInt64(c->int_tail, &c->tail_valid));
    c->int_tail.clear();
  }
  if (!c->string_tail.empty()) {
    c->string_chunks.push_back(EncodeString(c->string_tail, &c->tail_valid));
    c->string_tail.clear();
  }
  c->tail_valid.clear();
}

Result<size_t> ColumnTable::ColIndex(const std::string& col,
                                     sql::TypeId expect) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(col));
  sql::TypeId t = columns_[idx].type;
  bool int_like = t == sql::TypeId::kInt64 || t == sql::TypeId::kTimestamp;
  bool expect_int = expect == sql::TypeId::kInt64;
  if (expect_int != int_like && t != expect) {
    return Status::InvalidArgument("column type mismatch: " + col);
  }
  return idx;
}

void ColumnTable::RunMorsels(
    size_t chunk_count, const ScanOptions& opts,
    const std::function<void(size_t, size_t, size_t)>& fn) const {
  if (chunk_count == 0) return;
  const size_t per = std::max<size_t>(1, opts.morsel_chunks);
  const size_t num_morsels = (chunk_count + per - 1) / per;
  auto run = [&](size_t m) {
    const size_t begin = m * per;
    const size_t end = std::min(begin + per, chunk_count);
    fn(begin, end, m);
  };
  if (opts.parallel && num_morsels > 1) {
    common::ThreadPool* pool =
        opts.pool ? opts.pool : &common::ThreadPool::Shared();
    pool->ParallelFor(static_cast<int>(num_morsels),
                      [&](int m) { run(static_cast<size_t>(m)); });
  } else {
    for (size_t m = 0; m < num_morsels; ++m) run(m);
  }
}

Result<std::vector<uint32_t>> ColumnTable::FilterRangeInt64(
    const std::string& col, int64_t lo, int64_t hi, const ScanOptions& opts,
    ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;

  // Global row id of each chunk's first row, precomputed so morsels are
  // independent.
  std::vector<uint32_t> chunk_base(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    chunk_base[c + 1] = chunk_base[c] + static_cast<uint32_t>(chunks[c].num_rows);
  }

  const size_t per = std::max<size_t>(1, opts.morsel_chunks);
  const size_t num_morsels = chunks.empty() ? 0 : (chunks.size() + per - 1) / per;
  std::vector<std::vector<uint32_t>> morsel_sel(num_morsels);
  std::vector<ScanStats> morsel_stats(num_morsels);

  RunMorsels(chunks.size(), opts, [&](size_t begin, size_t end, size_t m) {
    std::vector<uint32_t>& sel = morsel_sel[m];
    ScanStats& st = morsel_stats[m];
    for (size_t c = begin; c < end; ++c) {
      const Int64Chunk& chunk = chunks[c];
      const uint32_t base = chunk_base[c];
      ++st.chunks_total;
      // Zone-map pruning: no non-null value can land in [lo, hi].
      if (chunk.zone.all_null() || chunk.zone.max < lo || chunk.zone.min > hi) {
        ++st.chunks_pruned;
        continue;
      }
      // Full-match short-circuit: every non-null value is in range. With no
      // NULLs the selection is the whole chunk — no value is decoded.
      if (chunk.validity.empty() && chunk.zone.min >= lo && chunk.zone.max <= hi) {
        ++st.chunks_pruned;
        for (uint32_t k = 0; k < chunk.num_rows; ++k) sel.push_back(base + k);
        continue;
      }
      ++st.chunks_scanned;
      if (chunk.encoding == Encoding::kRle) {
        // Operate on runs directly: whole runs pass or fail at once.
        uint32_t off = 0;
        for (size_t r = 0; r < chunk.rle_values.size(); ++r) {
          ++st.rows_decoded;
          const uint32_t len = chunk.rle_lengths[r];
          const int64_t v = chunk.rle_values[r];
          if (v >= lo && v <= hi) {
            for (uint32_t k = 0; k < len; ++k) {
              if (chunk.ValidAt(off + k)) sel.push_back(base + off + k);
            }
          }
          off += len;
        }
      } else {
        for (size_t i = 0; i < chunk.plain.size(); ++i) {
          ++st.rows_decoded;
          if (chunk.plain[i] >= lo && chunk.plain[i] <= hi && chunk.ValidAt(i)) {
            sel.push_back(base + static_cast<uint32_t>(i));
          }
        }
      }
    }
  });

  // Deterministic chunk-order merge: morsel m covers chunks [m*per, ...), so
  // concatenation in morsel order is exactly the serial scan order.
  std::vector<uint32_t> sel;
  ScanStats merged;
  for (size_t m = 0; m < num_morsels; ++m) {
    sel.insert(sel.end(), morsel_sel[m].begin(), morsel_sel[m].end());
    merged.MergeFrom(morsel_stats[m]);
  }
  merged.morsels = num_morsels;
  merged.rows_matched = sel.size();
  if (stats != nullptr) stats->MergeFrom(merged);
  return sel;
}

Result<std::vector<uint32_t>> ColumnTable::FilterGtInt64(
    const std::string& col, int64_t bound, const ScanOptions& opts,
    ScanStats* stats) const {
  if (bound == std::numeric_limits<int64_t>::max()) {
    OFI_RETURN_NOT_OK(ColIndex(col, sql::TypeId::kInt64).status());
    return std::vector<uint32_t>{};
  }
  return FilterRangeInt64(col, bound + 1, std::numeric_limits<int64_t>::max(),
                          opts, stats);
}

Result<std::vector<uint32_t>> ColumnTable::FilterGeInt64(
    const std::string& col, int64_t bound, const ScanOptions& opts,
    ScanStats* stats) const {
  return FilterRangeInt64(col, bound, std::numeric_limits<int64_t>::max(),
                          opts, stats);
}

Result<std::vector<uint32_t>> ColumnTable::FilterLtInt64(
    const std::string& col, int64_t bound, const ScanOptions& opts,
    ScanStats* stats) const {
  if (bound == std::numeric_limits<int64_t>::min()) {
    OFI_RETURN_NOT_OK(ColIndex(col, sql::TypeId::kInt64).status());
    return std::vector<uint32_t>{};
  }
  return FilterRangeInt64(col, std::numeric_limits<int64_t>::min(), bound - 1,
                          opts, stats);
}

Result<std::vector<uint32_t>> ColumnTable::FilterLeInt64(
    const std::string& col, int64_t bound, const ScanOptions& opts,
    ScanStats* stats) const {
  return FilterRangeInt64(col, std::numeric_limits<int64_t>::min(), bound,
                          opts, stats);
}

Result<std::vector<uint32_t>> ColumnTable::FilterBetweenInt64(
    const std::string& col, int64_t lo, int64_t hi, const ScanOptions& opts,
    ScanStats* stats) const {
  return FilterRangeInt64(col, lo, hi, opts, stats);
}

Result<std::vector<uint32_t>> ColumnTable::FilterEqString(
    const std::string& col, const std::string& needle, const ScanOptions& opts,
    ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kString));
  const auto& chunks = columns_[idx].string_chunks;

  std::vector<uint32_t> chunk_base(chunks.size() + 1, 0);
  for (size_t c = 0; c < chunks.size(); ++c) {
    chunk_base[c + 1] = chunk_base[c] + static_cast<uint32_t>(chunks[c].num_rows);
  }

  const size_t per = std::max<size_t>(1, opts.morsel_chunks);
  const size_t num_morsels = chunks.empty() ? 0 : (chunks.size() + per - 1) / per;
  std::vector<std::vector<uint32_t>> morsel_sel(num_morsels);
  std::vector<ScanStats> morsel_stats(num_morsels);

  RunMorsels(chunks.size(), opts, [&](size_t begin, size_t end, size_t m) {
    std::vector<uint32_t>& sel = morsel_sel[m];
    ScanStats& st = morsel_stats[m];
    for (size_t c = begin; c < end; ++c) {
      const StringChunk& chunk = chunks[c];
      const uint32_t base = chunk_base[c];
      ++st.chunks_total;
      // Zone-map pruning on the lexicographic span.
      if (chunk.all_null() || needle < chunk.zone_min || needle > chunk.zone_max) {
        ++st.chunks_pruned;
        continue;
      }
      ++st.chunks_scanned;
      if (chunk.encoding == Encoding::kDict) {
        // Compare against the dictionary once, then match codes.
        int32_t code = -1;
        for (size_t d = 0; d < chunk.dict.size(); ++d) {
          ++st.rows_decoded;
          if (chunk.dict[d] == needle) {
            code = static_cast<int32_t>(d);
            break;
          }
        }
        if (code >= 0) {
          st.rows_decoded += chunk.codes.size();
          for (size_t i = 0; i < chunk.codes.size(); ++i) {
            if (chunk.codes[i] == static_cast<uint32_t>(code) && chunk.ValidAt(i)) {
              sel.push_back(base + static_cast<uint32_t>(i));
            }
          }
        }
      } else {
        st.rows_decoded += chunk.plain.size();
        for (size_t i = 0; i < chunk.plain.size(); ++i) {
          if (chunk.plain[i] == needle && chunk.ValidAt(i)) {
            sel.push_back(base + static_cast<uint32_t>(i));
          }
        }
      }
    }
  });

  std::vector<uint32_t> sel;
  ScanStats merged;
  for (size_t m = 0; m < num_morsels; ++m) {
    sel.insert(sel.end(), morsel_sel[m].begin(), morsel_sel[m].end());
    merged.MergeFrom(morsel_stats[m]);
  }
  merged.morsels = num_morsels;
  merged.rows_matched = sel.size();
  if (stats != nullptr) stats->MergeFrom(merged);
  return sel;
}

namespace {

/// Per-morsel aggregate partial. Sum wraps modularly (commutative and
/// associative), so any merge order is bit-identical.
struct AggPartial {
  int64_t sum = 0;
  int64_t count = 0;  // non-null values seen
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  void MergeFrom(const AggPartial& o) {
    sum += o.sum;
    count += o.count;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
};

}  // namespace

Result<std::optional<int64_t>> ColumnTable::SumInt64(
    const std::string& col, const std::vector<uint32_t>* sel,
    const ScanOptions& opts, ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;

  if (sel == nullptr) {
    const size_t per = std::max<size_t>(1, opts.morsel_chunks);
    const size_t num_morsels =
        chunks.empty() ? 0 : (chunks.size() + per - 1) / per;
    std::vector<AggPartial> partials(num_morsels);
    std::vector<ScanStats> morsel_stats(num_morsels);
    RunMorsels(chunks.size(), opts, [&](size_t begin, size_t end, size_t m) {
      AggPartial& p = partials[m];
      ScanStats& st = morsel_stats[m];
      for (size_t c = begin; c < end; ++c) {
        const Int64Chunk& chunk = chunks[c];
        ++st.chunks_total;
        if (chunk.zone.all_null()) {
          ++st.chunks_pruned;
          continue;
        }
        ++st.chunks_scanned;
        p.count += chunk.zone.non_null();
        if (chunk.encoding == Encoding::kRle) {
          // Aggregate runs without decoding: value x count of valid rows in
          // the run (popcount over the validity bitmap when NULLs exist).
          uint32_t off = 0;
          for (size_t r = 0; r < chunk.rle_values.size(); ++r) {
            ++st.rows_decoded;
            const uint32_t len = chunk.rle_lengths[r];
            const int64_t valid_len = static_cast<int64_t>(
                BitmapCountValid(chunk.validity, off, off + len));
            p.sum += chunk.rle_values[r] * valid_len;
            off += len;
          }
        } else {
          st.rows_decoded += chunk.plain.size();
          for (size_t i = 0; i < chunk.plain.size(); ++i) {
            if (chunk.ValidAt(i)) p.sum += chunk.plain[i];
          }
        }
      }
    });
    AggPartial total;
    ScanStats merged;
    for (size_t m = 0; m < num_morsels; ++m) {
      total.MergeFrom(partials[m]);
      merged.MergeFrom(morsel_stats[m]);
    }
    merged.morsels = num_morsels;
    if (stats != nullptr) stats->MergeFrom(merged);
    if (total.count == 0) return std::optional<int64_t>{};
    return std::optional<int64_t>{total.sum};
  }

  // Selection path: decode chunk-by-chunk on demand (selections are sorted
  // by construction, so each chunk is decoded at most once).
  ScanStats st;
  int64_t sum = 0;
  int64_t count = 0;
  std::vector<int64_t> decoded;
  size_t chunk_idx = 0;
  uint32_t chunk_start = 0;
  auto ensure_chunk = [&](uint32_t row) {
    while (chunk_idx < chunks.size() &&
           row >= chunk_start + chunks[chunk_idx].num_rows) {
      chunk_start += static_cast<uint32_t>(chunks[chunk_idx].num_rows);
      ++chunk_idx;
      decoded.clear();
    }
    if (decoded.empty() && chunk_idx < chunks.size()) {
      chunks[chunk_idx].Decode(&decoded);
      ++st.chunks_scanned;
      st.rows_decoded += decoded.size();
    }
  };
  for (uint32_t row : *sel) {
    ensure_chunk(row);
    if (chunk_idx >= chunks.size()) break;
    if (!chunks[chunk_idx].ValidAt(row - chunk_start)) continue;
    sum += decoded[row - chunk_start];
    ++count;
  }
  st.chunks_total = chunks.size();
  if (stats != nullptr) stats->MergeFrom(st);
  if (count == 0) return std::optional<int64_t>{};
  return std::optional<int64_t>{sum};
}

Result<std::optional<int64_t>> ColumnTable::MinInt64(
    const std::string& col, const std::vector<uint32_t>* sel,
    const ScanOptions& opts, ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;
  if (sel == nullptr) {
    // Answered from zone maps alone (the small-materialized-aggregate win).
    ScanStats st;
    st.chunks_total = chunks.size();
    st.chunks_pruned = chunks.size();
    std::optional<int64_t> best;
    for (const auto& chunk : chunks) {
      if (chunk.zone.all_null()) continue;
      best = best ? std::min(*best, chunk.zone.min) : chunk.zone.min;
    }
    if (stats != nullptr) stats->MergeFrom(st);
    return best;
  }
  ScanStats st;
  std::optional<int64_t> best;
  std::vector<int64_t> decoded;
  size_t chunk_idx = 0;
  uint32_t chunk_start = 0;
  for (uint32_t row : *sel) {
    while (chunk_idx < chunks.size() &&
           row >= chunk_start + chunks[chunk_idx].num_rows) {
      chunk_start += static_cast<uint32_t>(chunks[chunk_idx].num_rows);
      ++chunk_idx;
      decoded.clear();
    }
    if (chunk_idx >= chunks.size()) break;
    if (decoded.empty()) {
      chunks[chunk_idx].Decode(&decoded);
      ++st.chunks_scanned;
      st.rows_decoded += decoded.size();
    }
    if (!chunks[chunk_idx].ValidAt(row - chunk_start)) continue;
    int64_t v = decoded[row - chunk_start];
    best = best ? std::min(*best, v) : v;
  }
  st.chunks_total = chunks.size();
  if (stats != nullptr) stats->MergeFrom(st);
  return best;
}

Result<std::optional<int64_t>> ColumnTable::MaxInt64(
    const std::string& col, const std::vector<uint32_t>* sel,
    const ScanOptions& opts, ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;
  if (sel == nullptr) {
    ScanStats st;
    st.chunks_total = chunks.size();
    st.chunks_pruned = chunks.size();
    std::optional<int64_t> best;
    for (const auto& chunk : chunks) {
      if (chunk.zone.all_null()) continue;
      best = best ? std::max(*best, chunk.zone.max) : chunk.zone.max;
    }
    if (stats != nullptr) stats->MergeFrom(st);
    return best;
  }
  ScanStats st;
  std::optional<int64_t> best;
  std::vector<int64_t> decoded;
  size_t chunk_idx = 0;
  uint32_t chunk_start = 0;
  for (uint32_t row : *sel) {
    while (chunk_idx < chunks.size() &&
           row >= chunk_start + chunks[chunk_idx].num_rows) {
      chunk_start += static_cast<uint32_t>(chunks[chunk_idx].num_rows);
      ++chunk_idx;
      decoded.clear();
    }
    if (chunk_idx >= chunks.size()) break;
    if (decoded.empty()) {
      chunks[chunk_idx].Decode(&decoded);
      ++st.chunks_scanned;
      st.rows_decoded += decoded.size();
    }
    if (!chunks[chunk_idx].ValidAt(row - chunk_start)) continue;
    int64_t v = decoded[row - chunk_start];
    best = best ? std::max(*best, v) : v;
  }
  st.chunks_total = chunks.size();
  if (stats != nullptr) stats->MergeFrom(st);
  return best;
}

Result<int64_t> ColumnTable::CountInt64(const std::string& col,
                                        const std::vector<uint32_t>* sel,
                                        const ScanOptions& opts,
                                        ScanStats* stats) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;
  ScanStats st;
  st.chunks_total = chunks.size();
  int64_t count = 0;
  if (sel == nullptr) {
    // Zone maps carry exact null counts — no chunk is touched.
    st.chunks_pruned = chunks.size();
    for (const auto& chunk : chunks) count += chunk.zone.non_null();
  } else {
    // Validity bitmaps only; values are never decoded.
    size_t chunk_idx = 0;
    uint32_t chunk_start = 0;
    for (uint32_t row : *sel) {
      while (chunk_idx < chunks.size() &&
             row >= chunk_start + chunks[chunk_idx].num_rows) {
        chunk_start += static_cast<uint32_t>(chunks[chunk_idx].num_rows);
        ++chunk_idx;
      }
      if (chunk_idx >= chunks.size()) break;
      count += chunks[chunk_idx].ValidAt(row - chunk_start) ? 1 : 0;
    }
  }
  if (stats != nullptr) stats->MergeFrom(st);
  return count;
}

namespace {

/// Platform-stable 64-bit mixers (the partition-hash requirement from
/// cluster/exchange applies here too: morsel merges must not depend on
/// std::hash implementation details).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashString64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return (h ^ v) * 0x9ddfea08eb382d69ULL;
}

constexpr uint64_t kNullKeyHash = 0x7f4a7c159e3779b9ULL;

/// One key column's value for the row being probed.
struct KeyRef {
  bool valid = false;
  int64_t i = 0;
  const std::string* s = nullptr;  // set for string keys
};

/// A flat open-addressing group table with columnar group storage. The
/// storage doubles as the kernel's result (GroupedAggResult), so the merged
/// table is returned without a copy.
struct GroupTable {
  GroupedAggResult data;
  std::vector<uint64_t> group_hash;  // per group, parallel to data
  std::vector<uint32_t> slots;       // group index + 1; 0 = empty
  size_t mask = 0;

  GroupTable(const std::vector<sql::TypeId>& key_types, size_t num_aggs) {
    data.keys.resize(key_types.size());
    for (size_t k = 0; k < key_types.size(); ++k) {
      data.keys[k].type = key_types[k];
    }
    data.aggs.resize(num_aggs);
    slots.assign(16, 0);
    mask = slots.size() - 1;
  }

  void Rehash() {
    slots.assign(slots.size() * 2, 0);
    mask = slots.size() - 1;
    for (uint32_t g = 0; g < data.num_groups; ++g) {
      size_t i = group_hash[g] & mask;
      while (slots[i] != 0) i = (i + 1) & mask;
      slots[i] = g + 1;
    }
  }

  bool KeyEquals(uint32_t g, const std::vector<KeyRef>& key) const {
    for (size_t k = 0; k < key.size(); ++k) {
      const auto& kc = data.keys[k];
      const bool gv = kc.valid[g] != 0;
      if (gv != key[k].valid) return false;
      if (!gv) continue;  // NULL == NULL for grouping
      if (kc.type == sql::TypeId::kString) {
        if (kc.strs[g] != *key[k].s) return false;
      } else {
        if (kc.ints[g] != key[k].i) return false;
      }
    }
    return true;
  }

  /// Finds the group for `key`, appending a new one (with init'd aggregate
  /// states) on first sight. Insertion order is the result's group order.
  uint32_t FindOrAdd(uint64_t h, const std::vector<KeyRef>& key,
                     const std::vector<GroupedAggSpec>& specs) {
    if ((data.num_groups + 1) * 10 > slots.size() * 7) Rehash();
    size_t i = h & mask;
    while (slots[i] != 0) {
      const uint32_t g = slots[i] - 1;
      if (group_hash[g] == h && KeyEquals(g, key)) return g;
      i = (i + 1) & mask;
    }
    const uint32_t g = static_cast<uint32_t>(data.num_groups++);
    slots[i] = g + 1;
    group_hash.push_back(h);
    for (size_t k = 0; k < key.size(); ++k) {
      auto& kc = data.keys[k];
      kc.valid.push_back(key[k].valid ? 1 : 0);
      if (kc.type == sql::TypeId::kString) {
        kc.strs.push_back(key[k].valid ? *key[k].s : std::string());
      } else {
        kc.ints.push_back(key[k].valid ? key[k].i : 0);
      }
    }
    for (size_t j = 0; j < specs.size(); ++j) {
      int64_t init = 0;
      if (specs[j].op == GroupedAggOp::kMin) {
        init = std::numeric_limits<int64_t>::max();
      } else if (specs[j].op == GroupedAggOp::kMax) {
        init = std::numeric_limits<int64_t>::min();
      }
      data.aggs[j].value.push_back(init);
      data.aggs[j].count.push_back(0);
    }
    return g;
  }

  /// Folds one input value (valid = non-NULL) into group g's state for
  /// aggregate j. kCountStar counts NULLs too; everything else skips them.
  void Accumulate(uint32_t g, size_t j, GroupedAggOp op, bool valid, int64_t v) {
    auto& a = data.aggs[j];
    switch (op) {
      case GroupedAggOp::kCountStar:
        ++a.value[g];
        ++a.count[g];
        break;
      case GroupedAggOp::kCount:
        if (valid) {
          ++a.value[g];
          ++a.count[g];
        }
        break;
      case GroupedAggOp::kSum:
        if (valid) {
          a.value[g] += v;
          ++a.count[g];
        }
        break;
      case GroupedAggOp::kMin:
        if (valid) {
          a.value[g] = std::min(a.value[g], v);
          ++a.count[g];
        }
        break;
      case GroupedAggOp::kMax:
        if (valid) {
          a.value[g] = std::max(a.value[g], v);
          ++a.count[g];
        }
        break;
    }
  }

  /// Merges another partial table, preserving this table's insertion order
  /// (new groups append in `o`'s order — morsel-order merges are therefore
  /// identical to the serial scan's first-appearance order).
  void MergeFrom(const GroupTable& o, const std::vector<GroupedAggSpec>& specs) {
    std::vector<KeyRef> key(o.data.keys.size());
    for (uint32_t og = 0; og < o.data.num_groups; ++og) {
      for (size_t k = 0; k < o.data.keys.size(); ++k) {
        const auto& kc = o.data.keys[k];
        key[k].valid = kc.valid[og] != 0;
        if (kc.type == sql::TypeId::kString) {
          key[k].s = &kc.strs[og];
        } else {
          key[k].i = kc.ints[og];
        }
      }
      const uint32_t g = FindOrAdd(o.group_hash[og], key, specs);
      for (size_t j = 0; j < specs.size(); ++j) {
        auto& dst = data.aggs[j];
        const auto& src = o.data.aggs[j];
        switch (specs[j].op) {
          case GroupedAggOp::kCountStar:
          case GroupedAggOp::kCount:
          case GroupedAggOp::kSum:
            dst.value[g] += src.value[og];
            break;
          case GroupedAggOp::kMin:
            dst.value[g] = std::min(dst.value[g], src.value[og]);
            break;
          case GroupedAggOp::kMax:
            dst.value[g] = std::max(dst.value[g], src.value[og]);
            break;
        }
        dst.count[g] += src.count[og];
      }
    }
  }
};

}  // namespace

std::vector<uint32_t> ColumnTable::ChunkBases() const {
  std::vector<uint32_t> bases{0};
  if (columns_.empty()) return bases;
  const ColumnData& c = columns_[0];
  if (c.type == sql::TypeId::kString) {
    for (const auto& chunk : c.string_chunks) {
      bases.push_back(bases.back() + static_cast<uint32_t>(chunk.num_rows));
    }
  } else {
    for (const auto& chunk : c.int_chunks) {
      bases.push_back(bases.back() + static_cast<uint32_t>(chunk.num_rows));
    }
  }
  return bases;
}

Result<GroupedAggResult> ColumnTable::GroupedAggregate(
    const std::vector<std::string>& key_cols,
    const std::vector<GroupedAggSpec>& aggs, const std::vector<uint32_t>* sel,
    const ScanOptions& opts, ScanStats* stats) const {
  if (key_cols.empty()) {
    return Status::InvalidArgument("grouped aggregate needs group keys");
  }
  // Resolve keys (int64/timestamp/string) and aggregate inputs (int64
  // payload); every column a chunk pass reads is resolved once up front.
  std::vector<size_t> key_idx(key_cols.size());
  std::vector<sql::TypeId> key_types(key_cols.size());
  for (size_t k = 0; k < key_cols.size(); ++k) {
    OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(key_cols[k]));
    const sql::TypeId t = columns_[idx].type;
    if (t != sql::TypeId::kInt64 && t != sql::TypeId::kTimestamp &&
        t != sql::TypeId::kString) {
      return Status::InvalidArgument("group key type unsupported: " +
                                     key_cols[k]);
    }
    key_idx[k] = idx;
    key_types[k] = t;
  }
  std::vector<size_t> agg_idx(aggs.size(), SIZE_MAX);
  for (size_t j = 0; j < aggs.size(); ++j) {
    if (aggs[j].op == GroupedAggOp::kCountStar) continue;
    OFI_ASSIGN_OR_RETURN(agg_idx[j], ColIndex(aggs[j].column, sql::TypeId::kInt64));
  }
  // The distinct columns each chunk pass decodes (the per-column-chunk work
  // unit the scan counters charge).
  std::vector<size_t> used_cols;
  for (size_t idx : key_idx) {
    if (std::find(used_cols.begin(), used_cols.end(), idx) == used_cols.end()) {
      used_cols.push_back(idx);
    }
  }
  for (size_t idx : agg_idx) {
    if (idx != SIZE_MAX &&
        std::find(used_cols.begin(), used_cols.end(), idx) == used_cols.end()) {
      used_cols.push_back(idx);
    }
  }

  const std::vector<uint32_t> bases = ChunkBases();
  const size_t chunk_count = bases.size() - 1;
  const size_t per = std::max<size_t>(1, opts.morsel_chunks);
  const size_t num_morsels =
      chunk_count == 0 ? 0 : (chunk_count + per - 1) / per;

  std::vector<std::unique_ptr<GroupTable>> partials(num_morsels);
  std::vector<ScanStats> morsel_stats(num_morsels);

  RunMorsels(chunk_count, opts, [&](size_t begin, size_t end, size_t m) {
    partials[m] = std::make_unique<GroupTable>(key_types, aggs.size());
    GroupTable& gt = *partials[m];
    ScanStats& st = morsel_stats[m];
    // Per-used-column decode scratch, refilled per chunk.
    std::vector<std::vector<int64_t>> decoded(columns_.size());
    std::vector<KeyRef> key(key_idx.size());
    for (size_t c = begin; c < end; ++c) {
      const uint32_t base = bases[c];
      const uint32_t rows = bases[c + 1] - base;
      // Selected rows of this chunk: [lo, hi) into *sel, or the whole chunk.
      size_t sel_lo = 0, sel_hi = 0;
      if (sel != nullptr) {
        sel_lo = static_cast<size_t>(
            std::lower_bound(sel->begin(), sel->end(), base) - sel->begin());
        sel_hi = static_cast<size_t>(
            std::lower_bound(sel->begin(), sel->end(), base + rows) -
            sel->begin());
      }
      const size_t selected =
          sel != nullptr ? sel_hi - sel_lo : static_cast<size_t>(rows);
      st.chunks_total += used_cols.size();
      if (selected == 0) {
        // Filter already pruned every row here: the grouped kernel never
        // touches the chunk (the zone-map win carries through the group by).
        st.chunks_pruned += used_cols.size();
        continue;
      }
      st.chunks_scanned += used_cols.size();
      st.rows_decoded += selected * used_cols.size();
      for (size_t idx : used_cols) {
        if (columns_[idx].type != sql::TypeId::kString) {
          columns_[idx].int_chunks[c].Decode(&decoded[idx]);
        }
      }
      for (size_t s = 0; s < selected; ++s) {
        const uint32_t row =
            sel != nullptr ? (*sel)[sel_lo + s] : base + static_cast<uint32_t>(s);
        const size_t off = row - base;
        uint64_t h = 0x2545f4914f6cdd1dULL;
        for (size_t k = 0; k < key_idx.size(); ++k) {
          const size_t idx = key_idx[k];
          if (key_types[k] == sql::TypeId::kString) {
            const StringChunk& chunk = columns_[idx].string_chunks[c];
            key[k].valid = chunk.ValidAt(off);
            key[k].s = &chunk.At(off);
            h = HashCombine(h, key[k].valid ? HashString64(*key[k].s)
                                            : kNullKeyHash);
          } else {
            const Int64Chunk& chunk = columns_[idx].int_chunks[c];
            key[k].valid = chunk.ValidAt(off);
            key[k].i = decoded[idx][off];
            h = HashCombine(h, key[k].valid
                                   ? Mix64(static_cast<uint64_t>(key[k].i))
                                   : kNullKeyHash);
          }
        }
        const uint32_t g = gt.FindOrAdd(h, key, aggs);
        for (size_t j = 0; j < aggs.size(); ++j) {
          if (aggs[j].op == GroupedAggOp::kCountStar) {
            gt.Accumulate(g, j, aggs[j].op, true, 0);
            continue;
          }
          const Int64Chunk& chunk = columns_[agg_idx[j]].int_chunks[c];
          gt.Accumulate(g, j, aggs[j].op, chunk.ValidAt(off),
                        decoded[agg_idx[j]][off]);
        }
      }
    }
  });

  // Deterministic merge in morsel order: group order = first appearance in
  // chunk order, identical serial vs parallel.
  GroupTable merged(key_types, aggs.size());
  ScanStats st;
  for (size_t m = 0; m < num_morsels; ++m) {
    merged.MergeFrom(*partials[m], aggs);
    st.MergeFrom(morsel_stats[m]);
  }
  st.morsels = num_morsels;
  st.rows_matched = merged.data.num_groups;
  if (stats != nullptr) stats->MergeFrom(st);
  return std::move(merged.data);
}

Result<std::vector<sql::Row>> ColumnTable::MaterializeRows(
    const std::vector<uint32_t>& sel, ScanStats* stats) const {
  const size_t ncols = columns_.size();
  const std::vector<uint32_t> bases = ChunkBases();
  const size_t chunk_count = bases.size() - 1;
  ScanStats st;
  st.chunks_total = chunk_count * ncols;
  std::vector<sql::Row> out;
  out.reserve(sel.size());
  std::vector<std::vector<int64_t>> decoded(ncols);
  size_t pos = 0;
  for (size_t c = 0; c < chunk_count && pos < sel.size(); ++c) {
    const uint32_t base = bases[c];
    const uint32_t end = bases[c + 1];
    if (sel[pos] >= end) continue;  // no selected row in this chunk
    size_t last = pos;
    while (last < sel.size() && sel[last] < end) ++last;
    st.chunks_scanned += ncols;
    st.rows_decoded += (last - pos) * ncols;
    for (size_t col = 0; col < ncols; ++col) {
      if (columns_[col].type != sql::TypeId::kString) {
        columns_[col].int_chunks[c].Decode(&decoded[col]);
      }
    }
    for (size_t s = pos; s < last; ++s) {
      const size_t off = sel[s] - base;
      sql::Row row;
      row.reserve(ncols);
      for (size_t col = 0; col < ncols; ++col) {
        switch (columns_[col].type) {
          case sql::TypeId::kString: {
            const StringChunk& chunk = columns_[col].string_chunks[c];
            row.push_back(chunk.ValidAt(off) ? sql::Value(chunk.At(off))
                                             : sql::Value::Null());
            break;
          }
          case sql::TypeId::kTimestamp: {
            const Int64Chunk& chunk = columns_[col].int_chunks[c];
            row.push_back(chunk.ValidAt(off)
                              ? sql::Value::Timestamp(decoded[col][off])
                              : sql::Value::Null());
            break;
          }
          case sql::TypeId::kDouble: {
            const Int64Chunk& chunk = columns_[col].int_chunks[c];
            if (!chunk.ValidAt(off)) {
              row.push_back(sql::Value::Null());
              break;
            }
            double d;
            std::memcpy(&d, &decoded[col][off], sizeof(d));
            row.push_back(sql::Value(d));
            break;
          }
          default: {
            const Int64Chunk& chunk = columns_[col].int_chunks[c];
            row.push_back(chunk.ValidAt(off) ? sql::Value(decoded[col][off])
                                             : sql::Value::Null());
          }
        }
      }
      out.push_back(std::move(row));
    }
    pos = last;
  }
  st.chunks_pruned = st.chunks_total - st.chunks_scanned;
  if (stats != nullptr) stats->MergeFrom(st);
  return out;
}

Result<PruneEstimate> ColumnTable::EstimatePruningInt64(const std::string& col,
                                                        int64_t lo,
                                                        int64_t hi) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  PruneEstimate e;
  for (const auto& chunk : columns_[idx].int_chunks) {
    ++e.chunks_total;
    if (chunk.zone.all_null() || chunk.zone.max < lo || chunk.zone.min > hi ||
        (chunk.validity.empty() && chunk.zone.min >= lo && chunk.zone.max <= hi)) {
      ++e.chunks_prunable;
    }
  }
  return e;
}

Result<PruneEstimate> ColumnTable::EstimatePruningStringEq(
    const std::string& col, const std::string& needle) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kString));
  PruneEstimate e;
  for (const auto& chunk : columns_[idx].string_chunks) {
    ++e.chunks_total;
    if (chunk.all_null() || needle < chunk.zone_min || needle > chunk.zone_max) {
      ++e.chunks_prunable;
    }
  }
  return e;
}

Result<std::vector<sql::Row>> ColumnTable::Gather(
    const std::vector<uint32_t>& sel) const {
  // Decode every int column fully once, then gather. Fine at bench scale.
  std::vector<std::vector<int64_t>> int_cols(columns_.size());
  std::vector<std::vector<uint8_t>> int_valid(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].type == sql::TypeId::kString) continue;
    std::vector<int64_t> all;
    std::vector<uint8_t> valid;
    std::vector<int64_t> tmp;
    for (const auto& chunk : columns_[c].int_chunks) {
      chunk.Decode(&tmp);
      all.insert(all.end(), tmp.begin(), tmp.end());
      for (size_t i = 0; i < chunk.num_rows; ++i) {
        valid.push_back(chunk.ValidAt(i) ? 1 : 0);
      }
    }
    int_cols[c] = std::move(all);
    int_valid[c] = std::move(valid);
  }
  std::vector<sql::Row> out;
  out.reserve(sel.size());
  for (uint32_t r : sel) {
    sql::Row row;
    row.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      switch (columns_[c].type) {
        case sql::TypeId::kInt64:
          row.push_back(int_valid[c][r] ? sql::Value(int_cols[c][r])
                                        : sql::Value::Null());
          break;
        case sql::TypeId::kTimestamp:
          row.push_back(int_valid[c][r] ? sql::Value::Timestamp(int_cols[c][r])
                                        : sql::Value::Null());
          break;
        case sql::TypeId::kDouble: {
          if (!int_valid[c][r]) {
            row.push_back(sql::Value::Null());
            break;
          }
          double d;
          std::memcpy(&d, &int_cols[c][r], sizeof(d));
          row.push_back(sql::Value(d));
          break;
        }
        case sql::TypeId::kString: {
          // Locate the chunk containing r.
          uint32_t base = 0;
          for (const auto& chunk : columns_[c].string_chunks) {
            if (r < base + chunk.num_rows) {
              row.push_back(chunk.ValidAt(r - base)
                                ? sql::Value(chunk.At(r - base))
                                : sql::Value::Null());
              break;
            }
            base += static_cast<uint32_t>(chunk.num_rows);
          }
          break;
        }
        default:
          row.push_back(sql::Value::Null());
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<ColumnZoneSummary> ColumnTable::ZoneSummary(const std::string& col) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(col));
  const ColumnData& c = columns_[idx];
  ColumnZoneSummary s;
  s.type = c.type;
  if (c.type == sql::TypeId::kString) {
    s.num_chunks = c.string_chunks.size();
    bool first = true;
    for (const auto& chunk : c.string_chunks) {
      s.rows += chunk.num_rows;
      s.nulls += chunk.null_count;
      s.dict_ndv = std::max<uint64_t>(
          s.dict_ndv,
          chunk.encoding == Encoding::kDict ? chunk.dict.size() : 0);
      // Plain payload bytes without decoding: dict entry sizes x code counts
      // are not tracked, so charge the encoded representative per row.
      if (chunk.encoding == Encoding::kDict) {
        for (uint32_t code : chunk.codes) s.plain_bytes += chunk.dict[code].size() + 4;
      } else {
        for (const auto& str : chunk.plain) s.plain_bytes += str.size() + 4;
      }
      if (chunk.all_null()) continue;
      if (first || chunk.zone_min < s.str_min) s.str_min = chunk.zone_min;
      if (first || chunk.zone_max > s.str_max) s.str_max = chunk.zone_max;
      first = false;
    }
    s.has_string_range = !first;
  } else {
    s.num_chunks = c.int_chunks.size();
    bool first = true;
    for (const auto& chunk : c.int_chunks) {
      s.rows += chunk.num_rows;
      s.nulls += chunk.zone.null_count;
      s.plain_bytes += chunk.num_rows * 8;
      if (chunk.zone.all_null()) continue;
      if (first || chunk.zone.min < s.min) s.min = chunk.zone.min;
      if (first || chunk.zone.max > s.max) s.max = chunk.zone.max;
      first = false;
    }
    // Double columns store raw IEEE bits; their int span is not an ordering.
    s.has_int_range = !first && c.type != sql::TypeId::kDouble;
  }
  return s;
}

size_t ColumnTable::CompressedBytes() const {
  size_t n = 0;
  for (const auto& c : columns_) {
    for (const auto& chunk : c.int_chunks) n += chunk.CompressedBytes();
    for (const auto& chunk : c.string_chunks) n += chunk.CompressedBytes();
  }
  return n;
}

size_t ColumnTable::PlainBytes() const {
  size_t n = 0;
  for (const auto& c : columns_) {
    for (const auto& chunk : c.int_chunks) n += chunk.num_rows * sizeof(int64_t);
    for (const auto& chunk : c.string_chunks) {
      if (chunk.encoding == Encoding::kDict) {
        for (uint32_t code : chunk.codes) n += chunk.dict[code].size() + 4;
      } else {
        for (const auto& s : chunk.plain) n += s.size() + 4;
      }
    }
  }
  return n;
}

}  // namespace ofi::storage
