#include "storage/column_store.h"

#include <cstring>

namespace ofi::storage {

size_t Int64Chunk::CompressedBytes() const {
  if (encoding == Encoding::kRle) {
    return rle_values.size() * sizeof(int64_t) + rle_lengths.size() * sizeof(uint32_t);
  }
  return plain.size() * sizeof(int64_t);
}

void Int64Chunk::Decode(std::vector<int64_t>* out) const {
  out->clear();
  out->reserve(num_rows);
  if (encoding == Encoding::kRle) {
    for (size_t i = 0; i < rle_values.size(); ++i) {
      out->insert(out->end(), rle_lengths[i], rle_values[i]);
    }
  } else {
    *out = plain;
  }
}

size_t StringChunk::CompressedBytes() const {
  if (encoding == Encoding::kDict) {
    size_t n = codes.size() * sizeof(uint32_t);
    for (const auto& s : dict) n += s.size() + 4;
    return n;
  }
  size_t n = 0;
  for (const auto& s : plain) n += s.size() + 4;
  return n;
}

Int64Chunk EncodeInt64(const std::vector<int64_t>& values) {
  Int64Chunk chunk;
  chunk.num_rows = values.size();
  // Build RLE and keep it only if it actually compresses.
  std::vector<int64_t> rv;
  std::vector<uint32_t> rl;
  for (int64_t v : values) {
    if (!rv.empty() && rv.back() == v && rl.back() < UINT32_MAX) {
      rl.back()++;
    } else {
      rv.push_back(v);
      rl.push_back(1);
    }
  }
  size_t rle_bytes = rv.size() * sizeof(int64_t) + rl.size() * sizeof(uint32_t);
  if (rle_bytes < values.size() * sizeof(int64_t)) {
    chunk.encoding = Encoding::kRle;
    chunk.rle_values = std::move(rv);
    chunk.rle_lengths = std::move(rl);
  } else {
    chunk.encoding = Encoding::kPlain;
    chunk.plain = values;
  }
  return chunk;
}

StringChunk EncodeString(const std::vector<std::string>& values) {
  StringChunk chunk;
  chunk.num_rows = values.size();
  std::unordered_map<std::string, uint32_t> index;
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const auto& s : values) {
    auto [it, inserted] = index.emplace(s, static_cast<uint32_t>(dict.size()));
    if (inserted) dict.push_back(s);
    codes.push_back(it->second);
  }
  size_t dict_bytes = codes.size() * sizeof(uint32_t);
  for (const auto& s : dict) dict_bytes += s.size() + 4;
  size_t plain_bytes = 0;
  for (const auto& s : values) plain_bytes += s.size() + 4;
  if (dict_bytes < plain_bytes) {
    chunk.encoding = Encoding::kDict;
    chunk.dict = std::move(dict);
    chunk.codes = std::move(codes);
  } else {
    chunk.encoding = Encoding::kPlain;
    chunk.plain = values;
  }
  return chunk;
}

ColumnTable::ColumnTable(sql::Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

Status ColumnTable::Append(const sql::Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("column append: arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnData& c = columns_[i];
    switch (c.type) {
      case sql::TypeId::kInt64:
      case sql::TypeId::kTimestamp:
        c.int_tail.push_back(row[i].is_null() ? 0 : row[i].AsInt());
        break;
      case sql::TypeId::kDouble: {
        double d = row[i].is_null() ? 0.0 : row[i].AsDouble();
        int64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        c.int_tail.push_back(bits);
        break;
      }
      case sql::TypeId::kString:
        c.string_tail.push_back(row[i].is_null() ? "" : row[i].AsString());
        break;
      default:
        return Status::NotImplemented("column type unsupported");
    }
  }
  ++num_rows_;
  if (num_rows_ % kChunkRows == 0) {
    for (auto& c : columns_) EncodeTail(&c);
  }
  return Status::OK();
}

void ColumnTable::Seal() {
  for (auto& c : columns_) EncodeTail(&c);
}

void ColumnTable::EncodeTail(ColumnData* c) {
  if (!c->int_tail.empty()) {
    c->int_chunks.push_back(EncodeInt64(c->int_tail));
    c->int_tail.clear();
  }
  if (!c->string_tail.empty()) {
    c->string_chunks.push_back(EncodeString(c->string_tail));
    c->string_tail.clear();
  }
}

Result<size_t> ColumnTable::ColIndex(const std::string& col,
                                     sql::TypeId expect) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(col));
  sql::TypeId t = columns_[idx].type;
  bool int_like = t == sql::TypeId::kInt64 || t == sql::TypeId::kTimestamp;
  bool expect_int = expect == sql::TypeId::kInt64;
  if (expect_int != int_like && t != expect) {
    return Status::InvalidArgument("column type mismatch: " + col);
  }
  return idx;
}

Result<std::vector<uint32_t>> ColumnTable::FilterGtInt64(const std::string& col,
                                                         int64_t bound) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  std::vector<uint32_t> sel;
  uint32_t base = 0;
  std::vector<int64_t> decoded;
  for (const auto& chunk : columns_[idx].int_chunks) {
    if (chunk.encoding == Encoding::kRle) {
      // Operate on runs directly: whole runs pass or fail at once.
      uint32_t off = 0;
      for (size_t r = 0; r < chunk.rle_values.size(); ++r) {
        if (chunk.rle_values[r] > bound) {
          for (uint32_t k = 0; k < chunk.rle_lengths[r]; ++k) {
            sel.push_back(base + off + k);
          }
        }
        off += chunk.rle_lengths[r];
      }
    } else {
      for (size_t i = 0; i < chunk.plain.size(); ++i) {
        if (chunk.plain[i] > bound) sel.push_back(base + static_cast<uint32_t>(i));
      }
    }
    base += static_cast<uint32_t>(chunk.num_rows);
  }
  (void)decoded;
  return sel;
}

Result<std::vector<uint32_t>> ColumnTable::FilterEqString(
    const std::string& col, const std::string& needle) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kString));
  std::vector<uint32_t> sel;
  uint32_t base = 0;
  for (const auto& chunk : columns_[idx].string_chunks) {
    if (chunk.encoding == Encoding::kDict) {
      // Compare against the dictionary once, then match codes.
      int32_t code = -1;
      for (size_t d = 0; d < chunk.dict.size(); ++d) {
        if (chunk.dict[d] == needle) {
          code = static_cast<int32_t>(d);
          break;
        }
      }
      if (code >= 0) {
        for (size_t i = 0; i < chunk.codes.size(); ++i) {
          if (chunk.codes[i] == static_cast<uint32_t>(code)) {
            sel.push_back(base + static_cast<uint32_t>(i));
          }
        }
      }
    } else {
      for (size_t i = 0; i < chunk.plain.size(); ++i) {
        if (chunk.plain[i] == needle) sel.push_back(base + static_cast<uint32_t>(i));
      }
    }
    base += static_cast<uint32_t>(chunk.num_rows);
  }
  return sel;
}

Result<int64_t> ColumnTable::SumInt64(const std::string& col,
                                      const std::vector<uint32_t>* sel) const {
  OFI_ASSIGN_OR_RETURN(size_t idx, ColIndex(col, sql::TypeId::kInt64));
  const auto& chunks = columns_[idx].int_chunks;
  int64_t sum = 0;
  if (sel == nullptr) {
    for (const auto& chunk : chunks) {
      if (chunk.encoding == Encoding::kRle) {
        for (size_t r = 0; r < chunk.rle_values.size(); ++r) {
          sum += chunk.rle_values[r] * chunk.rle_lengths[r];
        }
      } else {
        for (int64_t v : chunk.plain) sum += v;
      }
    }
    return sum;
  }
  // Selection path: decode chunk-by-chunk on demand.
  std::vector<int64_t> decoded;
  size_t chunk_idx = 0;
  uint32_t chunk_start = 0;
  auto ensure_chunk = [&](uint32_t row) {
    while (chunk_idx < chunks.size() &&
           row >= chunk_start + chunks[chunk_idx].num_rows) {
      chunk_start += static_cast<uint32_t>(chunks[chunk_idx].num_rows);
      ++chunk_idx;
      decoded.clear();
    }
    if (decoded.empty() && chunk_idx < chunks.size()) {
      chunks[chunk_idx].Decode(&decoded);
    }
  };
  for (uint32_t row : *sel) {
    ensure_chunk(row);
    if (chunk_idx >= chunks.size()) break;
    sum += decoded[row - chunk_start];
  }
  return sum;
}

Result<std::vector<sql::Row>> ColumnTable::Gather(
    const std::vector<uint32_t>& sel) const {
  // Decode every column fully once, then gather. Fine at bench scale.
  std::vector<std::vector<int64_t>> int_cols(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].type == sql::TypeId::kString) continue;
    std::vector<int64_t> all;
    std::vector<int64_t> tmp;
    for (const auto& chunk : columns_[c].int_chunks) {
      chunk.Decode(&tmp);
      all.insert(all.end(), tmp.begin(), tmp.end());
    }
    int_cols[c] = std::move(all);
  }
  std::vector<sql::Row> out;
  out.reserve(sel.size());
  for (uint32_t r : sel) {
    sql::Row row;
    row.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      switch (columns_[c].type) {
        case sql::TypeId::kInt64:
          row.push_back(sql::Value(int_cols[c][r]));
          break;
        case sql::TypeId::kTimestamp:
          row.push_back(sql::Value::Timestamp(int_cols[c][r]));
          break;
        case sql::TypeId::kDouble: {
          double d;
          std::memcpy(&d, &int_cols[c][r], sizeof(d));
          row.push_back(sql::Value(d));
          break;
        }
        case sql::TypeId::kString: {
          // Locate the chunk containing r.
          uint32_t base = 0;
          for (const auto& chunk : columns_[c].string_chunks) {
            if (r < base + chunk.num_rows) {
              row.push_back(sql::Value(chunk.At(r - base)));
              break;
            }
            base += static_cast<uint32_t>(chunk.num_rows);
          }
          break;
        }
        default:
          row.push_back(sql::Value::Null());
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

size_t ColumnTable::CompressedBytes() const {
  size_t n = 0;
  for (const auto& c : columns_) {
    for (const auto& chunk : c.int_chunks) n += chunk.CompressedBytes();
    for (const auto& chunk : c.string_chunks) n += chunk.CompressedBytes();
  }
  return n;
}

size_t ColumnTable::PlainBytes() const {
  size_t n = 0;
  for (const auto& c : columns_) {
    for (const auto& chunk : c.int_chunks) n += chunk.num_rows * sizeof(int64_t);
    for (const auto& chunk : c.string_chunks) {
      if (chunk.encoding == Encoding::kDict) {
        for (uint32_t code : chunk.codes) n += chunk.dict[code].size() + 4;
      } else {
        for (const auto& s : chunk.plain) n += s.size() + 4;
      }
    }
  }
  return n;
}

}  // namespace ofi::storage
