/// \file delta_store.h
/// \brief Per-shard columnar delta store: sealed column chunks plus an
/// append-only row-format delta tail, the software reproduction of
/// Polynesia's update-propagation design (see PAPERS.md). The owning
/// MvccTable streams every heap mutation into the tail through a
/// HeapChangeListener, so a columnar scan can union the sealed kernels
/// with a row-path pass over the tail and return exactly what the row
/// store would — at any snapshot, with no staleness fallback.
///
/// Invariants the union correctness rests on:
///  * Every heap version is represented exactly once: either folded into
///    the sealed chunks (with its xmin/xmax mirrored in sidecars) or held
///    as a DeltaRecord in the tail. The listener mirrors heap ops in the
///    heap's own serialization order (it fires under the heap's exclusive
///    lock), and AttachChangeListener's atomic dump+install guarantees no
///    mutation falls between the base snapshot and the first notification.
///  * A version folds into sealed chunks only when its xmin is visible to
///    EVERY present and future snapshot: committed, below the DN-local
///    xmin horizon, and — when the xid is bound to a global transaction —
///    below the GTM's SafeHorizon (an Algorithm-1 DOWNGRADE can force a
///    locally committed gxid-bound xid invisible for a reader whose global
///    snapshot predates the GTM commit; folding such an xid would
///    over-expose rows). Sealed rows therefore need no xmin check at scan
///    time; only their xmax sidecar is consulted (the `excluded` list).
///  * Merges build the new sealed table outside any lock and install it
///    under the exclusive shard lock with a version-validated swap, so
///    scans never block on a merge — they either see the old sealed+tail
///    or the new one, both complete.
///
/// Vacuum needs no notification: it removes versions without changing
/// visibility (the commit log retains commit states past pruning), and
/// the tail's own dead records are pruned by the next merge.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/column_store.h"
#include "storage/mvcc_table.h"
#include "txn/commit_log.h"
#include "txn/snapshot.h"
#include "txn/types.h"

namespace ofi::storage {

/// One row-format change record in the delta tail — an MVCC version that
/// is not (yet) foldable into the sealed chunks.
struct DeltaRecord {
  txn::Xid xmin = txn::kInvalidXid;
  txn::Xid xmax = txn::kInvalidXid;
  sql::Value key;
  sql::Row row;
};

/// \brief One DN's columnar copy of one table: sealed ColumnTable chunks,
/// xmin/xmax sidecars for the sealed rows, and the row-format delta tail.
///
/// Thread safety: all public methods are safe to call concurrently. The
/// shard lock (shared for scans, exclusive for tail appends and merge
/// installs) is only ever taken AFTER the heap lock (the listener fires
/// under it) — nothing here calls back into the heap.
class DeltaShard {
 public:
  explicit DeltaShard(sql::Schema schema);

  /// Build: installs the base state from an atomic heap dump (see
  /// MvccTable::AttachChangeListener). Universally visible versions seal
  /// into clustered chunks; everything else (in flight, recently
  /// committed, pending deletes) lands in the tail. Listener events that
  /// raced the build are buffered and drained here, in heap order.
  void InstallBase(HeapDump dump, const txn::CommitLog* clog,
                   txn::Xid local_horizon, txn::Gxid global_safe,
                   uint64_t heap_epoch);

  /// The heap listener entry point. Runs under the heap's exclusive lock.
  void OnHeapChange(const HeapChange& change);

  /// One scan's consistent view of this shard: the sealed table (shared,
  /// immutable), the sealed rows this reader must NOT see (sorted row
  /// ids whose xmax sidecar is visible to it), and the tail rows it MUST
  /// see. Never blocks on a merge.
  struct View {
    std::shared_ptr<const ColumnTable> sealed;
    std::vector<uint32_t> excluded;
    std::vector<sql::Row> delta_rows;
    /// Tail records examined (ScanStats::delta_rows; >= delta_rows.size()).
    size_t delta_examined = 0;
  };
  View Snapshot(const txn::VisibilityChecker& vis) const;

  struct MergeResult {
    /// Tail records folded into sealed chunks.
    size_t folded = 0;
    /// Records and sealed rows dropped as aborted or universally dead.
    size_t dropped = 0;
    /// True when dead sealed rows forced a full re-encode (which also
    /// restores clustering and the zone-map fast paths).
    bool rewrote = false;

    bool changed() const { return folded + dropped > 0; }
  };

  /// Compacts the foldable tail prefix into sealed chunks. Serialized
  /// against other merges by an internal mutex; concurrent scans and tail
  /// appends proceed untouched until the brief exclusive install at the
  /// end, which re-reads xmax sidecars so marks that landed mid-merge are
  /// never lost. `local_horizon` is the DN's snapshot xmin (Vacuum's
  /// convention) and `global_safe` the GTM SafeHorizon at merge time.
  MergeResult Merge(const txn::CommitLog& clog, txn::Xid local_horizon,
                    txn::Gxid global_safe, uint64_t heap_epoch);

  size_t delta_size() const {
    std::shared_lock lock(mu_);
    return delta_.size();
  }
  size_t sealed_rows() const {
    std::shared_lock lock(mu_);
    return sealed_->sealed_rows();
  }
  /// Heap mutation epoch recorded at the last build/merge (bookkeeping —
  /// freshness never falls back on it anymore).
  uint64_t heap_epoch() const {
    std::shared_lock lock(mu_);
    return heap_epoch_;
  }
  uint64_t merges() const {
    std::shared_lock lock(mu_);
    return merge_count_;
  }
  const sql::Schema& schema() const { return schema_; }

  /// Claims the single background-merge slot (the write path schedules at
  /// most one pool task per shard at a time). Release with MergeTaskDone.
  bool TryScheduleMerge() {
    bool expected = false;
    return merge_scheduled_.compare_exchange_strong(expected, true);
  }
  void MergeTaskDone() { merge_scheduled_.store(false); }

 private:
  enum class FoldClass : uint8_t {
    kDead,            // aborted xmin, or deleted below every horizon
    kSealedLive,      // folds with no deleter
    kSealedWithXmax,  // folds, deleter mirrored into the xmax sidecar
    kDelta,           // not universally visible yet — stays in the tail
  };
  static FoldClass Classify(txn::Xid xmin, txn::Xid xmax,
                            const txn::CommitLog& clog, txn::Xid local_horizon,
                            txn::Gxid global_safe);

  void ApplyLocked(const HeapChange& change);
  void MarkSealedLocked(uint32_t row, txn::Xid xid);
  void ClearSealedMarkLocked(uint32_t row);

  const sql::Schema schema_;
  mutable std::shared_mutex mu_;
  std::mutex merge_mu_;  // serializes Merge() callers, never scans

  // Sealed side (guarded by mu_; the table itself is immutable — merges
  // swap the shared_ptr).
  std::shared_ptr<const ColumnTable> sealed_;
  std::vector<sql::Value> sealed_keys_;
  std::vector<txn::Xid> sealed_xmin_;
  std::vector<txn::Xid> sealed_xmax_;
  std::unordered_map<sql::Value, std::vector<uint32_t>> sealed_index_;
  /// Sorted sealed row ids whose xmax sidecar is set — the candidate set
  /// for a scan's `excluded` list, so delete-free scans pay nothing.
  std::vector<uint32_t> marked_rows_;

  // Tail side (guarded by mu_).
  std::vector<DeltaRecord> delta_;
  std::unordered_map<sql::Value, std::vector<size_t>> delta_index_;

  bool ready_ = false;
  std::vector<HeapChange> pending_;  // events buffered until InstallBase
  uint64_t version_ = 0;             // bumped per install (merge validation)
  uint64_t heap_epoch_ = 0;
  uint64_t merge_count_ = 0;

  std::atomic<bool> merge_scheduled_{false};
};

}  // namespace ofi::storage
