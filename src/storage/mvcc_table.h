/// \file mvcc_table.h
/// \brief A versioned row store: every key holds a chain of tuple versions
/// with (xmin, xmax) headers, exactly the representation the paper's
/// Anomaly2 walkthrough uses (Fig. 2 table: tuple1 deleted by T1, tuple2
/// created by T1 and deleted by T3, tuple3 created by T3).
#pragma once

#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "sql/schema.h"
#include "txn/snapshot.h"
#include "txn/types.h"

namespace ofi::storage {

/// One tuple version with its MVCC header.
struct TupleVersion {
  txn::Xid xmin = txn::kInvalidXid;  // creator
  txn::Xid xmax = txn::kInvalidXid;  // deleter (kInvalidXid = live)
  sql::Row data;
};

/// \brief One heap mutation, streamed to the columnar delta store (see
/// storage/delta_store.h). Fired under the table's exclusive lock, so a
/// listener observes changes in exactly the heap's serialization order.
struct HeapChange {
  enum class Op : uint8_t {
    kInsert,        ///< new version appended (xid, key, row)
    kMarkDeleted,   ///< xmax set on the version created by `target_xmin`
    kClearXmax,     ///< rollback: clear xmax == xid on one key's chain
    kClearXmaxAll,  ///< rollback: clear xmax == xid everywhere
  };
  Op op = Op::kInsert;
  txn::Xid xid = txn::kInvalidXid;
  sql::Value key;
  sql::Row row;                            // kInsert only
  txn::Xid target_xmin = txn::kInvalidXid; // kMarkDeleted only
};

/// Invoked under the heap's exclusive lock — must not re-enter the table
/// and must not block on anything that can wait on a heap reader/writer.
using HeapChangeListener = std::function<void(const HeapChange&)>;

/// Full version-chain dump returned by AttachChangeListener: the base state
/// a delta store builds from, atomic with the listener installation.
using HeapDump = std::vector<std::pair<sql::Value, std::vector<TupleVersion>>>;

/// Handle for one attached listener; pass it to DetachChangeListener.
/// 0 is never issued, so a zero-initialized id means "not attached".
using ListenerId = uint64_t;

/// \brief A keyed MVCC heap. Writes are first-updater-wins: updating or
/// deleting a version whose xmax is already set by a live transaction
/// aborts the second writer (write-write conflict).
///
/// Thread safety: version chains are guarded by a std::shared_mutex —
/// reads/scans take a shared lock and run concurrently (the parallel MPP
/// scatter path), writes take an exclusive lock. Versions() returns a
/// pointer into guarded state; it is for single-threaded use (tests).
class MvccTable {
 public:
  explicit MvccTable(sql::Schema schema) : schema_(std::move(schema)) {}

  const sql::Schema& schema() const { return schema_; }

  /// Inserts a new row under `key`. Fails with AlreadyExists if a version
  /// visible to `vis` already exists for the key.
  Status Insert(const sql::Value& key, sql::Row row, txn::Xid xid,
                const txn::VisibilityChecker& vis);

  /// Updates the visible version: sets its xmax and appends the new version.
  Status Update(const sql::Value& key, sql::Row row, txn::Xid xid,
                const txn::VisibilityChecker& vis);

  /// Deletes the visible version (sets xmax).
  Status Delete(const sql::Value& key, txn::Xid xid,
                const txn::VisibilityChecker& vis);

  /// Point read of the visible version.
  Result<sql::Row> Read(const sql::Value& key,
                        const txn::VisibilityChecker& vis) const;

  /// Full scan: all visible rows, in unspecified order.
  std::vector<sql::Row> ScanVisible(const txn::VisibilityChecker& vis) const;

  /// Undoes the effects of an aborted transaction: clears xmax it set and
  /// leaves its insertions dead (their xmin is aborted, so they are
  /// invisible; physical removal happens in Vacuum).
  void RollbackXid(txn::Xid xid);

  /// Targeted rollback for one key (write-set driven abort path).
  void RollbackKey(const sql::Value& key, txn::Xid xid);

  /// Removes versions invisible to everyone older than `horizon` (dead
  /// versions from aborted or superseded writes).
  size_t Vacuum(txn::Xid horizon, const txn::CommitLog& clog);

  /// Raw version chain for a key (tests and the Fig. 2 walkthrough).
  const std::vector<TupleVersion>* Versions(const sql::Value& key) const;

  /// Atomically snapshots every version chain AND installs `listener`
  /// under one exclusive lock, so no mutation can fall between the dump
  /// and the first notification — the delta store's build contract.
  /// Multiple listeners can coexist (a columnar delta store and any number
  /// of secondary indexes); each gets every change in heap serialization
  /// order. The issued id (written to `id_out` when non-null) detaches
  /// exactly this listener.
  HeapDump AttachChangeListener(HeapChangeListener listener,
                                ListenerId* id_out = nullptr);
  void DetachChangeListener(ListenerId id);

  size_t num_keys() const {
    std::shared_lock lock(mu_);
    return chains_.size();
  }
  size_t num_versions() const {
    std::shared_lock lock(mu_);
    return num_versions_;
  }
  /// Monotone counter bumped by every mutating call (Insert/Update/Delete/
  /// Rollback*/Vacuum). Deletes only set xmax, so num_versions() cannot
  /// detect them; the columnar side-store (cluster/data_node) compares
  /// epochs to decide whether its chunks are stale.
  uint64_t epoch() const {
    std::shared_lock lock(mu_);
    return mutation_epoch_;
  }

 private:
  // Newest visible version index in a chain, or -1. Caller holds mu_.
  int FindVisible(const std::vector<TupleVersion>& chain,
                  const txn::VisibilityChecker& vis) const;

  // Fires `change` at every listener. Caller holds mu_ exclusively.
  void Notify(const HeapChange& change) const {
    for (const auto& [id, fn] : listeners_) fn(change);
  }
  bool HasListeners() const { return !listeners_.empty(); }

  mutable std::shared_mutex mu_;  // guards chains_, num_versions_, epoch
  sql::Schema schema_;
  std::unordered_map<sql::Value, std::vector<TupleVersion>> chains_;
  size_t num_versions_ = 0;
  uint64_t mutation_epoch_ = 0;
  // Attached listeners, fired in attach order under the unique_lock.
  // A small vector keeps Notify allocation-free on the hot write path.
  std::vector<std::pair<ListenerId, HeapChangeListener>> listeners_;
  ListenerId next_listener_id_ = 1;
};

}  // namespace ofi::storage
