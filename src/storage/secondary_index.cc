#include "storage/secondary_index.h"

#include <algorithm>

namespace ofi::storage {

Result<std::shared_ptr<SecondaryIndex>> SecondaryIndex::Make(
    const sql::Schema& schema, const std::string& column, Kind kind) {
  OFI_ASSIGN_OR_RETURN(size_t col, schema.IndexOf(column));
  return std::shared_ptr<SecondaryIndex>(
      new SecondaryIndex(schema.column(col).QualifiedName(), col, kind));
}

void SecondaryIndex::InstallBase(HeapDump dump) {
  std::unique_lock lock(mu_);
  for (const auto& [key, chain] : dump) {
    for (const auto& v : chain) {
      AddPostingLocked(key, v.xmin, v.data);
      by_key_[key].back().xmax = v.xmax;
    }
  }
  // Drain events that landed between the atomic dump+attach and this
  // install, in heap order. They are strictly newer than the dump.
  for (const auto& c : pending_) ApplyLocked(c);
  pending_.clear();
  ready_ = true;
}

void SecondaryIndex::OnHeapChange(const HeapChange& change) {
  std::unique_lock lock(mu_);
  if (!ready_) {
    pending_.push_back(change);
    return;
  }
  ApplyLocked(change);
}

void SecondaryIndex::AddPostingLocked(const sql::Value& heap_key,
                                      txn::Xid xmin, const sql::Row& row) {
  Posting p;
  p.xmin = xmin;
  p.row = row;
  by_key_[heap_key].push_back(std::move(p));
  ++num_postings_;
  if (col_ < row.size()) {
    Bucket& b = kind_ == Kind::kHash ? hash_buckets_[row[col_]]
                                     : ordered_buckets_[row[col_]];
    ++b[heap_key];
  }
}

void SecondaryIndex::BucketUnref(const sql::Value& indexed,
                                 const sql::Value& heap_key, uint32_t count) {
  auto unref = [&](auto& buckets) {
    auto bit = buckets.find(indexed);
    if (bit == buckets.end()) return;
    auto kit = bit->second.find(heap_key);
    if (kit == bit->second.end()) return;
    kit->second = kit->second > count ? kit->second - count : 0;
    if (kit->second == 0) bit->second.erase(kit);
    if (bit->second.empty()) buckets.erase(bit);
  };
  if (kind_ == Kind::kHash) {
    unref(hash_buckets_);
  } else {
    unref(ordered_buckets_);
  }
}

void SecondaryIndex::ApplyLocked(const HeapChange& change) {
  maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  switch (change.op) {
    case HeapChange::Op::kInsert:
      AddPostingLocked(change.key, change.xid, change.row);
      break;
    case HeapChange::Op::kMarkDeleted: {
      auto it = by_key_.find(change.key);
      if (it == by_key_.end()) break;
      // The heap marked the visible version created by target_xmin; mirror
      // onto the newest live posting with that xmin (delete/reinsert by the
      // same xid can leave several postings sharing an xmin).
      for (auto pit = it->second.rbegin(); pit != it->second.rend(); ++pit) {
        if (pit->xmin == change.target_xmin &&
            (pit->xmax == txn::kInvalidXid || pit->xmax == change.xid)) {
          pit->xmax = change.xid;
          break;
        }
      }
      break;
    }
    case HeapChange::Op::kClearXmax: {
      auto it = by_key_.find(change.key);
      if (it == by_key_.end()) break;
      for (auto& p : it->second) {
        if (p.xmax == change.xid) p.xmax = txn::kInvalidXid;
      }
      break;
    }
    case HeapChange::Op::kClearXmaxAll:
      for (auto& [key, postings] : by_key_) {
        for (auto& p : postings) {
          if (p.xmax == change.xid) p.xmax = txn::kInvalidXid;
        }
      }
      break;
  }
}

void SecondaryIndex::CollectVisibleLocked(const sql::Value& heap_key,
                                          const sql::Value* want,
                                          const txn::VisibilityChecker& vis,
                                          std::vector<sql::Row>* out,
                                          size_t* examined) const {
  auto it = by_key_.find(heap_key);
  if (it == by_key_.end()) return;
  // Newest-to-oldest, exactly like MvccTable::FindVisible: a consistent
  // snapshot sees at most one version per heap key.
  for (auto pit = it->second.rbegin(); pit != it->second.rend(); ++pit) {
    ++*examined;
    if (!vis.TupleVisible(pit->xmin, pit->xmax)) continue;
    // Re-check the indexed value: an update may have moved this heap key
    // to a different bucket while old postings still reference it.
    if (want == nullptr ||
        (col_ < pit->row.size() && pit->row[col_].Equals(*want))) {
      out->push_back(pit->row);
    }
    return;  // the one visible version has been judged
  }
}

std::vector<sql::Row> SecondaryIndex::Probe(const sql::Value& v,
                                            const txn::VisibilityChecker& vis,
                                            size_t* postings_examined) const {
  std::shared_lock lock(mu_);
  std::vector<sql::Row> out;
  size_t examined = 0;
  const Bucket* bucket = nullptr;
  if (kind_ == Kind::kHash) {
    auto it = hash_buckets_.find(v);
    if (it != hash_buckets_.end()) bucket = &it->second;
  } else {
    auto it = ordered_buckets_.find(v);
    if (it != ordered_buckets_.end()) bucket = &it->second;
  }
  if (bucket != nullptr) {
    for (const auto& [heap_key, refs] : *bucket) {
      CollectVisibleLocked(heap_key, &v, vis, &out, &examined);
    }
  }
  if (postings_examined != nullptr) *postings_examined = examined;
  return out;
}

std::vector<sql::Row> SecondaryIndex::RangeProbe(
    const sql::Value& lo, const sql::Value& hi,
    const txn::VisibilityChecker& vis, size_t* postings_examined) const {
  std::vector<sql::Row> out;
  size_t examined = 0;
  if (kind_ == Kind::kOrdered) {
    std::shared_lock lock(mu_);
    // Heap keys can appear in several buckets of the range (an update that
    // moved the value within [lo, hi]); each visible version matches in
    // exactly one bucket, but guard against emitting a key twice.
    std::unordered_map<sql::Value, bool> seen;
    for (auto it = ordered_buckets_.lower_bound(lo);
         it != ordered_buckets_.end() && !(hi < it->first); ++it) {
      for (const auto& [heap_key, refs] : it->second) {
        if (!seen.emplace(heap_key, true).second) continue;
        size_t before = out.size();
        CollectVisibleLocked(heap_key, nullptr, vis, &out, &examined);
        if (out.size() > before && col_ < out.back().size()) {
          const sql::Value& got = out.back()[col_];
          if (got < lo || hi < got) out.pop_back();  // moved out of range
        }
      }
    }
  }
  if (postings_examined != nullptr) *postings_examined = examined;
  return out;
}

Result<sql::Row> SecondaryIndex::ProbeHeapKey(
    const sql::Value& heap_key, const txn::VisibilityChecker& vis) const {
  std::shared_lock lock(mu_);
  auto it = by_key_.find(heap_key);
  if (it == by_key_.end()) {
    return Status::NotFound("index probe: " + heap_key.ToString());
  }
  for (auto pit = it->second.rbegin(); pit != it->second.rend(); ++pit) {
    if (vis.TupleVisible(pit->xmin, pit->xmax)) return pit->row;
  }
  return Status::NotFound("index probe: " + heap_key.ToString());
}

size_t SecondaryIndex::Compact(const txn::CommitLog& clog, txn::Xid horizon) {
  std::unique_lock lock(mu_);
  size_t removed = 0;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    auto& postings = it->second;
    auto dead = [&](const Posting& p) {
      // Same rule as MvccTable::Vacuum: no snapshot can still see it.
      if (clog.IsAborted(p.xmin)) return true;
      return p.xmax != txn::kInvalidXid && p.xmax < horizon &&
             clog.IsCommitted(p.xmax);
    };
    for (const auto& p : postings) {
      if (dead(p) && col_ < p.row.size()) {
        BucketUnref(p.row[col_], it->first, 1);
      }
    }
    auto keep = std::remove_if(postings.begin(), postings.end(), dead);
    removed += static_cast<size_t>(postings.end() - keep);
    postings.erase(keep, postings.end());
    it = postings.empty() ? by_key_.erase(it) : std::next(it);
  }
  num_postings_ -= removed;
  if (removed > 0) maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

}  // namespace ofi::storage
