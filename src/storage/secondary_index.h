/// \file secondary_index.h
/// \brief MVCC-aware secondary index over an MvccTable heap: the point-read
/// fast path ROADMAP's "millions-of-users point lookups" item asks for. The
/// index stores covering postings — (indexed value → heap key, row copy,
/// xmin/xmax) — and filters them with the *reader's* VisibilityChecker at
/// probe time, so a probe is bit-identical to a full-scan oracle at any
/// snapshot, including delete/reinsert cycles and in-flight writers.
///
/// Maintenance rides the same HeapChangeListener mechanism the columnar
/// delta store uses (storage/delta_store.h): every heap mutation fires
/// under the heap's exclusive lock, in heap serialization order, and the
/// index applies it under its own lock. Invariants:
///  * Every heap version is mirrored by exactly one posting (until Compact
///    prunes it after it becomes universally dead — the same rule as heap
///    Vacuum: aborted xmin, or xmax committed below the horizon). Vacuum
///    fires no events; stale dead postings are harmless meanwhile because
///    every probe re-checks visibility AND the indexed value.
///  * Lock order is heap mu_ → index mu_ (the listener runs under the heap
///    lock and takes the index lock; probes take only the index lock and
///    never call back into the heap), so no cycle with scans, background
///    delta merges, or concurrent index builds is possible.
///  * Build (AttachChangeListener dump + InstallBase) is atomic the same
///    way the delta store's is: events that race the build are buffered in
///    `pending_` and drained by InstallBase in heap order.
///
/// Two physical layouts share the code: kHash (unordered buckets, equality
/// probes only) and kOrdered (std::map buckets, adds inclusive range
/// probes for the optimizer's range conjuncts).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/mvcc_table.h"
#include "txn/commit_log.h"
#include "txn/snapshot.h"
#include "txn/types.h"

namespace ofi::storage {

class SecondaryIndex {
 public:
  enum class Kind : uint8_t { kHash, kOrdered };

  /// Resolves `column` against `schema` (bare or qualified name). Fails if
  /// the column does not exist.
  static Result<std::shared_ptr<SecondaryIndex>> Make(const sql::Schema& schema,
                                                      const std::string& column,
                                                      Kind kind);

  /// Build entry point: installs the base state from an atomic heap dump
  /// (MvccTable::AttachChangeListener), then drains listener events that
  /// raced the build, in heap order.
  void InstallBase(HeapDump dump);

  /// The heap listener entry point. Runs under the heap's exclusive lock;
  /// takes only the index lock (heap → index order).
  void OnHeapChange(const HeapChange& change);

  /// Equality probe: all rows whose indexed column equals `v` and whose
  /// version is visible to `vis`. `postings_examined`, when non-null,
  /// receives the number of postings touched (probe cost accounting).
  std::vector<sql::Row> Probe(const sql::Value& v,
                              const txn::VisibilityChecker& vis,
                              size_t* postings_examined = nullptr) const;

  /// Inclusive range probe [lo, hi] — kOrdered only (returns empty on a
  /// hash index; the planner never chooses a range over one).
  std::vector<sql::Row> RangeProbe(const sql::Value& lo, const sql::Value& hi,
                                   const txn::VisibilityChecker& vis,
                                   size_t* postings_examined = nullptr) const;

  /// Point read by HEAP key (the OLTP Txn::Read fast path): the visible
  /// version's row, or NotFound. Equivalent to MvccTable::Read but served
  /// from the index's covering postings without touching the heap.
  Result<sql::Row> ProbeHeapKey(const sql::Value& heap_key,
                                const txn::VisibilityChecker& vis) const;

  /// Prunes postings that are universally dead (same rule as heap Vacuum:
  /// aborted creator, or deleter committed below `horizon`). Returns the
  /// number of postings removed.
  size_t Compact(const txn::CommitLog& clog, txn::Xid horizon);

  Kind kind() const { return kind_; }
  const std::string& column() const { return column_; }
  size_t column_index() const { return col_; }

  size_t postings() const {
    std::shared_lock lock(mu_);
    return num_postings_;
  }
  /// Listener events applied since construction (index.maintenance_ops).
  uint64_t maintenance_ops() const {
    return maintenance_ops_.load(std::memory_order_relaxed);
  }

 private:
  SecondaryIndex(std::string column, size_t col, Kind kind)
      : column_(std::move(column)), col_(col), kind_(kind) {}

  /// One heap version projected into the index. Postings live in the
  /// per-heap-key chain mirror; forward buckets reference them by heap key.
  struct Posting {
    txn::Xid xmin = txn::kInvalidXid;
    txn::Xid xmax = txn::kInvalidXid;
    sql::Row row;
  };
  // Forward bucket: heap keys that have >= 1 posting with this indexed
  // value, with a refcount so delete/reinsert cycles and Compact can
  // maintain membership without scanning. Probes iterate bucket keys and
  // re-check value + visibility against the chain mirror, so a bucket may
  // safely lag (e.g. postings awaiting Compact).
  using Bucket = std::unordered_map<sql::Value, uint32_t>;

  void ApplyLocked(const HeapChange& change);
  void AddPostingLocked(const sql::Value& heap_key, txn::Xid xmin,
                        const sql::Row& row);
  void BucketUnref(const sql::Value& indexed, const sql::Value& heap_key,
                   uint32_t count);
  // Collects visible matches for `heap_key` into `out`; bumps `examined`
  // per posting touched. `want` restricts to one indexed value (equality
  // probe); nullptr accepts any value in [*lo, *hi] handled by the caller.
  void CollectVisibleLocked(const sql::Value& heap_key, const sql::Value* want,
                            const txn::VisibilityChecker& vis,
                            std::vector<sql::Row>* out,
                            size_t* examined) const;

  const std::string column_;  // indexed column name (as resolved)
  const size_t col_;          // indexed column position in the row
  const Kind kind_;

  mutable std::shared_mutex mu_;
  // Chain mirror: heap key → postings in heap append order (newest last).
  std::unordered_map<sql::Value, std::vector<Posting>> by_key_;
  // Forward maps; exactly one is used, per kind_.
  std::unordered_map<sql::Value, Bucket> hash_buckets_;
  std::map<sql::Value, Bucket> ordered_buckets_;
  size_t num_postings_ = 0;

  bool ready_ = false;
  std::vector<HeapChange> pending_;  // events buffered until InstallBase

  std::atomic<uint64_t> maintenance_ops_{0};
};

}  // namespace ofi::storage
