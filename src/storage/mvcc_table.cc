#include "storage/mvcc_table.h"

#include <algorithm>

namespace ofi::storage {

int MvccTable::FindVisible(const std::vector<TupleVersion>& chain,
                           const txn::VisibilityChecker& vis) const {
  // Scan newest-to-oldest; a consistent snapshot sees at most one version.
  for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
    if (vis.TupleVisible(chain[i].xmin, chain[i].xmax)) return i;
  }
  return -1;
}

Status MvccTable::Insert(const sql::Value& key, sql::Row row, txn::Xid xid,
                         const txn::VisibilityChecker& vis) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("insert: row arity mismatch");
  }
  std::unique_lock lock(mu_);
  auto& chain = chains_[key];
  if (FindVisible(chain, vis) >= 0) {
    return Status::AlreadyExists("insert: key exists: " + key.ToString());
  }
  chain.push_back(TupleVersion{xid, txn::kInvalidXid, std::move(row)});
  ++num_versions_;
  ++mutation_epoch_;
  if (HasListeners()) {
    HeapChange c;
    c.op = HeapChange::Op::kInsert;
    c.xid = xid;
    c.key = key;
    c.row = chain.back().data;
    Notify(c);
  }
  return Status::OK();
}

Status MvccTable::Update(const sql::Value& key, sql::Row row, txn::Xid xid,
                         const txn::VisibilityChecker& vis) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("update: row arity mismatch");
  }
  std::unique_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return Status::NotFound("update: " + key.ToString());
  int idx = FindVisible(it->second, vis);
  if (idx < 0) return Status::NotFound("update: " + key.ToString());
  TupleVersion& cur = it->second[idx];
  if (cur.xmax != txn::kInvalidXid && cur.xmax != xid) {
    // First-updater-wins: someone else already marked this version deleted.
    return Status::Aborted("write-write conflict on " + key.ToString());
  }
  cur.xmax = xid;
  const txn::Xid replaced_xmin = cur.xmin;
  it->second.push_back(TupleVersion{xid, txn::kInvalidXid, std::move(row)});
  ++num_versions_;
  ++mutation_epoch_;
  if (HasListeners()) {
    HeapChange del;
    del.op = HeapChange::Op::kMarkDeleted;
    del.xid = xid;
    del.key = key;
    del.target_xmin = replaced_xmin;
    Notify(del);
    HeapChange ins;
    ins.op = HeapChange::Op::kInsert;
    ins.xid = xid;
    ins.key = key;
    ins.row = it->second.back().data;
    Notify(ins);
  }
  return Status::OK();
}

Status MvccTable::Delete(const sql::Value& key, txn::Xid xid,
                         const txn::VisibilityChecker& vis) {
  std::unique_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return Status::NotFound("delete: " + key.ToString());
  int idx = FindVisible(it->second, vis);
  if (idx < 0) return Status::NotFound("delete: " + key.ToString());
  TupleVersion& cur = it->second[idx];
  if (cur.xmax != txn::kInvalidXid && cur.xmax != xid) {
    return Status::Aborted("write-write conflict on " + key.ToString());
  }
  cur.xmax = xid;
  ++mutation_epoch_;
  if (HasListeners()) {
    HeapChange c;
    c.op = HeapChange::Op::kMarkDeleted;
    c.xid = xid;
    c.key = key;
    c.target_xmin = cur.xmin;
    Notify(c);
  }
  return Status::OK();
}

Result<sql::Row> MvccTable::Read(const sql::Value& key,
                                 const txn::VisibilityChecker& vis) const {
  std::shared_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return Status::NotFound("read: " + key.ToString());
  int idx = FindVisible(it->second, vis);
  if (idx < 0) return Status::NotFound("read: " + key.ToString());
  return it->second[idx].data;
}

std::vector<sql::Row> MvccTable::ScanVisible(
    const txn::VisibilityChecker& vis) const {
  std::shared_lock lock(mu_);
  std::vector<sql::Row> out;
  for (const auto& [key, chain] : chains_) {
    int idx = FindVisible(chain, vis);
    if (idx >= 0) out.push_back(chain[idx].data);
  }
  return out;
}

void MvccTable::RollbackXid(txn::Xid xid) {
  std::unique_lock lock(mu_);
  for (auto& [key, chain] : chains_) {
    for (auto& v : chain) {
      if (v.xmax == xid) v.xmax = txn::kInvalidXid;
    }
  }
  ++mutation_epoch_;
  if (HasListeners()) {
    HeapChange c;
    c.op = HeapChange::Op::kClearXmaxAll;
    c.xid = xid;
    Notify(c);
  }
}

void MvccTable::RollbackKey(const sql::Value& key, txn::Xid xid) {
  std::unique_lock lock(mu_);
  auto it = chains_.find(key);
  if (it == chains_.end()) return;
  for (auto& v : it->second) {
    if (v.xmax == xid) v.xmax = txn::kInvalidXid;
  }
  ++mutation_epoch_;
  if (HasListeners()) {
    HeapChange c;
    c.op = HeapChange::Op::kClearXmax;
    c.xid = xid;
    c.key = key;
    Notify(c);
  }
}

size_t MvccTable::Vacuum(txn::Xid horizon, const txn::CommitLog& clog) {
  std::unique_lock lock(mu_);
  size_t removed = 0;
  for (auto it = chains_.begin(); it != chains_.end();) {
    auto& chain = it->second;
    auto keep = std::remove_if(chain.begin(), chain.end(), [&](const TupleVersion& v) {
      // Dead: creator aborted, or deleted by a committed txn older than the
      // horizon (no snapshot can still see it).
      if (clog.IsAborted(v.xmin)) return true;
      if (v.xmax != txn::kInvalidXid && v.xmax < horizon && clog.IsCommitted(v.xmax)) {
        return true;
      }
      return false;
    });
    removed += static_cast<size_t>(chain.end() - keep);
    chain.erase(keep, chain.end());
    if (chain.empty()) {
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
  num_versions_ -= removed;
  if (removed > 0) ++mutation_epoch_;
  return removed;
}

const std::vector<TupleVersion>* MvccTable::Versions(const sql::Value& key) const {
  std::shared_lock lock(mu_);
  auto it = chains_.find(key);
  return it == chains_.end() ? nullptr : &it->second;
}

HeapDump MvccTable::AttachChangeListener(HeapChangeListener listener,
                                         ListenerId* id_out) {
  std::unique_lock lock(mu_);
  HeapDump dump;
  dump.reserve(chains_.size());
  for (const auto& [key, chain] : chains_) dump.emplace_back(key, chain);
  ListenerId id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  if (id_out != nullptr) *id_out = id;
  return dump;
}

void MvccTable::DetachChangeListener(ListenerId id) {
  std::unique_lock lock(mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

}  // namespace ofi::storage
