/// \file column_store.h
/// \brief Columnar storage with light-weight compression (RLE for integers,
/// dictionary for strings) and vectorized scan kernels. FI-MPPDB supports
/// hybrid row-column storage with a SIMD-style vectorized execution engine
/// (paper Fig. 1 / §II); this module is the columnar half, and experiment
/// E11 compares it against the row path.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/schema.h"

namespace ofi::storage {

/// Encoding picked per column chunk.
enum class Encoding : uint8_t { kPlain, kRle, kDict };

/// \brief A compressed chunk of one int64 column.
struct Int64Chunk {
  Encoding encoding = Encoding::kPlain;
  std::vector<int64_t> plain;            // kPlain
  std::vector<int64_t> rle_values;       // kRle
  std::vector<uint32_t> rle_lengths;     // kRle
  size_t num_rows = 0;

  size_t CompressedBytes() const;
  /// Decodes into `out` (resized to num_rows).
  void Decode(std::vector<int64_t>* out) const;
};

/// \brief A compressed chunk of one string column (dictionary-encoded when
/// the distinct count is low enough to pay off).
struct StringChunk {
  Encoding encoding = Encoding::kPlain;
  std::vector<std::string> plain;        // kPlain
  std::vector<std::string> dict;         // kDict
  std::vector<uint32_t> codes;           // kDict
  size_t num_rows = 0;

  size_t CompressedBytes() const;
  const std::string& At(size_t i) const {
    return encoding == Encoding::kDict ? dict[codes[i]] : plain[i];
  }
};

/// Builds an Int64Chunk, choosing RLE when it beats plain.
Int64Chunk EncodeInt64(const std::vector<int64_t>& values);
/// Builds a StringChunk, choosing dictionary when it beats plain.
StringChunk EncodeString(const std::vector<std::string>& values);

/// \brief An append-optimized columnar table for int64/double/string
/// columns, chunked at kChunkRows, with vectorized filter and aggregate
/// kernels operating on selection vectors.
class ColumnTable {
 public:
  static constexpr size_t kChunkRows = 4096;

  explicit ColumnTable(sql::Schema schema);

  const sql::Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends one row (buffers until a chunk fills, then encodes it).
  Status Append(const sql::Row& row);
  /// Encodes any buffered tail so scans cover every appended row.
  void Seal();

  /// Vectorized: indices (global row ids) where column `col` > `bound`.
  Result<std::vector<uint32_t>> FilterGtInt64(const std::string& col,
                                              int64_t bound) const;
  /// Vectorized: indices where string column `col` == `needle`.
  Result<std::vector<uint32_t>> FilterEqString(const std::string& col,
                                               const std::string& needle) const;
  /// Sum of int64 column over a selection (or all rows when sel == nullptr).
  Result<int64_t> SumInt64(const std::string& col,
                           const std::vector<uint32_t>* sel = nullptr) const;

  /// Materializes selected rows back into row form.
  Result<std::vector<sql::Row>> Gather(const std::vector<uint32_t>& sel) const;

  /// Compressed footprint in bytes vs the plain-encoding footprint —
  /// reported by the storage bench.
  size_t CompressedBytes() const;
  size_t PlainBytes() const;

 private:
  struct ColumnData {
    sql::TypeId type;
    std::vector<Int64Chunk> int_chunks;      // int64/timestamp/double-as-bits
    std::vector<StringChunk> string_chunks;
    // Tail buffers not yet encoded.
    std::vector<int64_t> int_tail;
    std::vector<std::string> string_tail;
  };

  Result<size_t> ColIndex(const std::string& col, sql::TypeId expect) const;
  void EncodeTail(ColumnData* c);

  sql::Schema schema_;
  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ofi::storage
