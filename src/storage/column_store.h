/// \file column_store.h
/// \brief Columnar storage with light-weight compression (RLE for integers,
/// dictionary for strings), per-chunk zone maps, NULL validity bitmaps, and
/// vectorized scan kernels with a morsel-parallel driver. FI-MPPDB supports
/// hybrid row-column storage with a SIMD-style vectorized execution engine
/// (paper Fig. 1 / §II); this module is the columnar half. Experiment E11
/// compares it against the row path and E15 measures zone-map pruning.
///
/// Zone maps follow Moerkotte's small materialized aggregates (VLDB 1998):
/// every chunk records min/max/null-count at encode time, so range and
/// equality kernels skip chunks that cannot match, and MIN/MAX/COUNT over a
/// whole column are answered from metadata alone. The scan driver follows
/// HyPer's morsel-driven parallelism (Leis et al., SIGMOD 2014): chunk
/// ranges ("morsels") are dispatched onto the shared thread pool and merged
/// back in chunk order, so parallel results are bit-identical to serial.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/schema.h"

namespace ofi::storage {

/// Encoding picked per column chunk.
enum class Encoding : uint8_t { kPlain, kRle, kDict };

/// \brief Per-chunk zone map over an int64-payload column (min/max span
/// non-null values only; a chunk whose rows are all NULL has no span).
struct ZoneMap {
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();
  uint32_t null_count = 0;
  uint32_t num_rows = 0;

  bool all_null() const { return null_count == num_rows; }
  uint32_t non_null() const { return num_rows - null_count; }
};

/// Packed validity bitmap helpers (bit i set = row i is non-NULL; an empty
/// bitmap means every row is valid — the common no-NULL case costs nothing).
inline bool BitmapValidAt(const std::vector<uint64_t>& validity, size_t i) {
  return validity.empty() || ((validity[i >> 6] >> (i & 63)) & 1) != 0;
}
/// Count of valid rows in [begin, end) — popcount over whole words where
/// possible, so RLE aggregation over NULL-bearing runs never decodes values.
size_t BitmapCountValid(const std::vector<uint64_t>& validity, size_t begin,
                        size_t end);

/// \brief A compressed chunk of one int64 column.
struct Int64Chunk {
  Encoding encoding = Encoding::kPlain;
  std::vector<int64_t> plain;            // kPlain
  std::vector<int64_t> rle_values;       // kRle
  std::vector<uint32_t> rle_lengths;     // kRle
  /// Validity bitmap; empty = all rows valid. NULL rows hold an arbitrary
  /// placeholder in the value stream and must never be interpreted.
  std::vector<uint64_t> validity;
  ZoneMap zone;
  size_t num_rows = 0;

  bool ValidAt(size_t i) const { return BitmapValidAt(validity, i); }
  size_t CompressedBytes() const;
  /// Decodes into `out` (resized to num_rows; NULL positions hold the
  /// placeholder — consult ValidAt before use).
  void Decode(std::vector<int64_t>* out) const;
};

/// \brief A compressed chunk of one string column (dictionary-encoded when
/// the distinct count is low enough to pay off).
struct StringChunk {
  Encoding encoding = Encoding::kPlain;
  std::vector<std::string> plain;        // kPlain
  std::vector<std::string> dict;         // kDict
  std::vector<uint32_t> codes;           // kDict
  std::vector<uint64_t> validity;        // empty = all valid
  /// Zone map: lexicographic span of non-null values (empty when all-null).
  std::string zone_min, zone_max;
  uint32_t null_count = 0;
  size_t num_rows = 0;

  bool ValidAt(size_t i) const { return BitmapValidAt(validity, i); }
  bool all_null() const { return null_count == num_rows; }
  size_t CompressedBytes() const;
  const std::string& At(size_t i) const {
    return encoding == Encoding::kDict ? dict[codes[i]] : plain[i];
  }
};

/// Builds an Int64Chunk, choosing RLE when it beats plain. `valid` marks
/// non-NULL rows (nullptr = all valid); the zone map is built here.
Int64Chunk EncodeInt64(const std::vector<int64_t>& values,
                       const std::vector<bool>* valid = nullptr);
/// Builds a StringChunk, choosing dictionary when it beats plain.
StringChunk EncodeString(const std::vector<std::string>& values,
                         const std::vector<bool>* valid = nullptr);

/// \brief Counters one scan emits — the machine-independent evidence for
/// zone-map pruning (chunks skipped, values never decoded).
struct ScanStats {
  size_t chunks_total = 0;
  size_t chunks_scanned = 0;
  /// Chunks skipped entirely from zone maps (includes all-NULL chunks and
  /// full-range short-circuits where indices are emitted without decode).
  size_t chunks_pruned = 0;
  /// Values individually examined: plain rows touched, RLE runs touched
  /// (a run counts once regardless of length), dictionary codes compared.
  size_t rows_decoded = 0;
  /// Rows that passed the filter (== selection vector size for filters).
  size_t rows_matched = 0;
  /// Morsels dispatched by the parallel driver (0 for metadata-only scans).
  size_t morsels = 0;
  /// Delta-tail records examined when a scan unions a columnar shard's
  /// row-format delta with its sealed chunks (see storage/delta_store.h);
  /// 0 for pure sealed scans.
  size_t delta_rows = 0;
  /// Rows served by a secondary-index probe instead of a heap or chunk
  /// walk (see storage/secondary_index.h); 0 for scan paths.
  size_t index_rows = 0;

  void MergeFrom(const ScanStats& o);
};

/// \brief Execution knobs for the morsel scan driver. Results are
/// bit-identical between parallel and serial execution: morsels are fixed
/// chunk ranges merged back in chunk order (same contract as the MPP
/// scatter-gather in cluster/mpp_query). parallel=true must not be used
/// from inside a pool task (ThreadPool::ParallelFor restriction).
struct ScanOptions {
  bool parallel = false;
  /// Pool override; nullptr uses common::ThreadPool::Shared().
  common::ThreadPool* pool = nullptr;
  /// Chunks per morsel (clamped to >= 1).
  size_t morsel_chunks = 4;
};

// --- Grouped aggregation ----------------------------------------------------

/// One aggregate computed per group by ColumnTable::GroupedAggregate. All
/// partial states are int64 (SUM wraps modularly; COUNT/MIN/MAX are exact),
/// so per-morsel partials merge associatively and bit-identically.
enum class GroupedAggOp : uint8_t { kCountStar, kCount, kSum, kMin, kMax };

struct GroupedAggSpec {
  GroupedAggOp op = GroupedAggOp::kCountStar;
  std::string column;  // aggregated column; empty for kCountStar
};

/// \brief Columnar output of one grouped aggregation: per-group key values
/// (SoA, NULL keys form their own group) and per-aggregate partial states.
/// Group order is first-appearance order of the serial chunk scan — the
/// morsel-parallel driver merges per-worker tables in morsel order, so the
/// order (and every value) is identical to the serial kernel.
struct GroupedAggResult {
  struct KeyColumn {
    sql::TypeId type = sql::TypeId::kInt64;
    std::vector<int64_t> ints;        // int64/timestamp keys
    std::vector<std::string> strs;    // string keys
    std::vector<uint8_t> valid;       // 0 = the NULL-key group
  };
  struct AggColumn {
    /// The partial state per group (count for kCountStar/kCount).
    std::vector<int64_t> value;
    /// Non-null inputs folded into the state per group; 0 means SQL NULL
    /// for SUM/MIN/MAX (COUNT aggregates are never NULL).
    std::vector<int64_t> count;
  };
  std::vector<KeyColumn> keys;
  std::vector<AggColumn> aggs;
  size_t num_groups = 0;
};

/// \brief Zone-map-only pruning forecast for one filter — what EXPLAIN
/// reports per DN without touching a chunk.
struct PruneEstimate {
  size_t chunks_total = 0;
  /// Chunks the filter kernel would never decode (zone-pruned or emitted
  /// whole via the full-range short-circuit).
  size_t chunks_prunable = 0;
};

/// \brief Zone-map-derived column summary (no chunk is decoded): exact row,
/// NULL and min/max bounds for ANALYZE-style statistics.
struct ColumnZoneSummary {
  sql::TypeId type = sql::TypeId::kNull;
  uint64_t rows = 0;
  uint64_t nulls = 0;
  /// Int64/timestamp span (meaningless for doubles, which store raw bits).
  bool has_int_range = false;
  int64_t min = 0, max = 0;
  /// String span.
  bool has_string_range = false;
  std::string str_min, str_max;
  /// Strings: largest per-chunk dictionary (a distinct-count lower bound).
  uint64_t dict_ndv = 0;
  /// Total plain-encoded payload bytes (Value::ByteSize convention) — feeds
  /// avg_width for the exchange planner without decoding chunks.
  uint64_t plain_bytes = 0;
  size_t num_chunks = 0;
};

/// \brief An append-optimized columnar table for int64/double/string
/// columns, chunked at kChunkRows, with vectorized filter and aggregate
/// kernels operating on selection vectors of global row ids.
///
/// NULL semantics are SQL's: filters never match NULL, SUM/MIN/MAX/COUNT
/// skip NULLs (aggregates over zero non-null values return nullopt), and
/// Gather materializes NULL back as sql::Value::Null().
class ColumnTable {
 public:
  static constexpr size_t kChunkRows = 4096;

  explicit ColumnTable(sql::Schema schema);

  const sql::Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  /// Rows visible to scans (encoded into chunks; the buffered tail is not).
  size_t sealed_rows() const { return sealed_rows_; }
  /// Chunk count of the first column (all columns chunk identically).
  size_t num_chunks() const;

  /// Appends one row (buffers until a chunk fills, then encodes it).
  Status Append(const sql::Row& row);
  /// Encodes any buffered tail so scans cover every appended row.
  /// Idempotent: re-sealing with no new appends is a no-op. Appending after
  /// a Seal() is allowed; the next Seal() encodes only the new tail (as its
  /// own, possibly short, chunk — zone maps stay per-chunk exact).
  void Seal();

  // --- Filter kernels (selection vectors of global row ids) -----------------
  /// Indices where int64/timestamp column `col` is in [lo, hi] (inclusive).
  /// The primitive the comparison filters lower onto; zone maps prune
  /// chunks with no overlap, full-overlap chunks emit without decoding.
  Result<std::vector<uint32_t>> FilterRangeInt64(
      const std::string& col, int64_t lo, int64_t hi,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  Result<std::vector<uint32_t>> FilterGtInt64(
      const std::string& col, int64_t bound,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  Result<std::vector<uint32_t>> FilterGeInt64(
      const std::string& col, int64_t bound,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  Result<std::vector<uint32_t>> FilterLtInt64(
      const std::string& col, int64_t bound,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  Result<std::vector<uint32_t>> FilterLeInt64(
      const std::string& col, int64_t bound,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  /// Inclusive on both bounds (SQL BETWEEN).
  Result<std::vector<uint32_t>> FilterBetweenInt64(
      const std::string& col, int64_t lo, int64_t hi,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  /// Indices where string column `col` == `needle`.
  Result<std::vector<uint32_t>> FilterEqString(
      const std::string& col, const std::string& needle,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;

  // --- Aggregate kernels ----------------------------------------------------
  /// SUM of int64 column over a selection (nullptr = all rows). RLE runs
  /// aggregate as value x valid-run-length without decoding. nullopt when
  /// no non-null value contributes (SQL SUM of nothing is NULL).
  Result<std::optional<int64_t>> SumInt64(
      const std::string& col, const std::vector<uint32_t>* sel = nullptr,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  /// MIN/MAX over a selection (nullptr = all rows). The unselective form is
  /// answered from zone maps alone — no chunk is decoded.
  Result<std::optional<int64_t>> MinInt64(
      const std::string& col, const std::vector<uint32_t>* sel = nullptr,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  Result<std::optional<int64_t>> MaxInt64(
      const std::string& col, const std::vector<uint32_t>* sel = nullptr,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;
  /// COUNT of non-null values over a selection (nullptr = all rows, answered
  /// from zone maps; selective form reads validity bitmaps only).
  Result<int64_t> CountInt64(
      const std::string& col, const std::vector<uint32_t>* sel = nullptr,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;

  // --- Grouped aggregation --------------------------------------------------
  /// Vectorized hash GROUP BY: builds per-group partial states for `aggs`
  /// keyed by `key_cols` (int64/timestamp and string keys; NULL keys form
  /// their own group, exactly as SQL grouping treats NULL = NULL). `sel`
  /// restricts to a sorted selection (nullptr = all sealed rows); chunks
  /// with no selected row are skipped without decoding. Aggregate inputs
  /// must be int64-payload columns; SUM/MIN/MAX of zero non-null inputs
  /// surface count == 0 (SQL NULL), COUNT/COUNT(*) are never NULL. The
  /// morsel-parallel mode builds one flat hash table per worker and merges
  /// them in morsel order — output is bit-identical to the serial kernel,
  /// including group order (first appearance in chunk order).
  Result<GroupedAggResult> GroupedAggregate(
      const std::vector<std::string>& key_cols,
      const std::vector<GroupedAggSpec>& aggs,
      const std::vector<uint32_t>* sel = nullptr,
      const ScanOptions& opts = ScanOptions{}, ScanStats* stats = nullptr) const;

  /// Materializes selected rows back into row form (NULL-correct).
  Result<std::vector<sql::Row>> Gather(const std::vector<uint32_t>& sel) const;

  /// Gather without the full-table decode: only chunks containing selected
  /// rows are decoded, and the scan counters (charged per column-chunk)
  /// record exactly that — the columnar feed for distributed join sides and
  /// the grouped-aggregate row fallback. `sel` must be sorted ascending.
  Result<std::vector<sql::Row>> MaterializeRows(const std::vector<uint32_t>& sel,
                                                ScanStats* stats = nullptr) const;

  /// Zone-map-only forecasts of how many chunks an int64-range / string-eq
  /// filter would prune — per-DN EXPLAIN evidence, no chunk is decoded.
  Result<PruneEstimate> EstimatePruningInt64(const std::string& col, int64_t lo,
                                             int64_t hi) const;
  Result<PruneEstimate> EstimatePruningStringEq(const std::string& col,
                                                const std::string& needle) const;

  /// Zone-map rollup for one column (exact rows/nulls/min/max, no decode) —
  /// feeds optimizer::AnalyzeColumnTableZones.
  Result<ColumnZoneSummary> ZoneSummary(const std::string& col) const;

  /// Compressed footprint in bytes vs the plain-encoding footprint —
  /// reported by the storage bench.
  size_t CompressedBytes() const;
  size_t PlainBytes() const;

 private:
  struct ColumnData {
    sql::TypeId type;
    std::vector<Int64Chunk> int_chunks;      // int64/timestamp/double-as-bits
    std::vector<StringChunk> string_chunks;
    // Tail buffers not yet encoded (NULL rows hold a placeholder value and
    // a false bit in tail_valid).
    std::vector<int64_t> int_tail;
    std::vector<std::string> string_tail;
    std::vector<bool> tail_valid;
  };

  Result<size_t> ColIndex(const std::string& col, sql::TypeId expect) const;
  /// Global row id of each chunk's first row, plus a trailing sentinel of
  /// sealed_rows() — all columns chunk identically, so one table serves all.
  std::vector<uint32_t> ChunkBases() const;
  void EncodeTail(ColumnData* c);
  /// Runs fn(chunk_begin, chunk_end, morsel_index) over fixed chunk ranges,
  /// on the pool when opts.parallel — ranges are identical either way, so
  /// per-morsel outputs merge deterministically in morsel order.
  void RunMorsels(size_t chunk_count, const ScanOptions& opts,
                  const std::function<void(size_t, size_t, size_t)>& fn) const;

  sql::Schema schema_;
  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
  size_t sealed_rows_ = 0;
};

}  // namespace ofi::storage
