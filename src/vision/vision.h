/// \file vision.h
/// \brief The vision metadata engine (paper §II-B: cameras/lidar produce
/// data whose AI-extracted objects "need special indexing and proper
/// metadata for analysis"; the vision engine is announced as the next
/// runtime to integrate — we build it). Stores per-frame object detections
/// (label, confidence, bounding box, track id), indexes them by label, time
/// and track, and exposes relational views for cross-model queries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/table.h"
#include "spatial/spatial.h"

namespace ofi::vision {

using Timestamp = int64_t;
using TrackId = int64_t;

/// An axis-aligned box in image/world coordinates.
struct BBox {
  double x = 0, y = 0, w = 0, h = 0;

  double Area() const { return w * h; }
  /// Intersection-over-union with another box.
  double Iou(const BBox& other) const;
  spatial::Point Center() const { return {x + w / 2, y + h / 2}; }
};

/// One detected object in one frame.
struct Detection {
  int64_t id = 0;          // assigned by the store
  int64_t frame = 0;
  Timestamp ts = 0;
  std::string label;       // "car", "pedestrian", ...
  double confidence = 0;   // [0, 1]
  BBox bbox;
  TrackId track = -1;      // -1 = unassigned
};

/// \brief Detection metadata store for one camera/sensor.
class VisionStore {
 public:
  /// Ingests a detection; returns its id. If `detection.track` is -1 the
  /// store runs greedy IoU tracking: the detection joins the most recent
  /// track of the same label whose last box overlaps by at least
  /// `track_iou_threshold`, else it starts a new track.
  int64_t Ingest(Detection detection);

  double track_iou_threshold() const { return track_iou_threshold_; }
  void set_track_iou_threshold(double t) { track_iou_threshold_ = t; }

  // --- Queries ----------------------------------------------------------------
  /// Detections of `label` in [from, to) with confidence >= min_confidence.
  std::vector<const Detection*> Query(const std::string& label, Timestamp from,
                                      Timestamp to,
                                      double min_confidence = 0.0) const;

  /// The time-ordered detections of one track.
  std::vector<const Detection*> Track(TrackId track) const;

  /// Count per label over a window (the dashboard query).
  std::map<std::string, int64_t> CountByLabel(Timestamp from, Timestamp to) const;

  /// Distinct tracks (≈ distinct physical objects) of a label in a window.
  int64_t DistinctTracks(const std::string& label, Timestamp from,
                         Timestamp to) const;

  size_t size() const { return detections_.size(); }
  int64_t num_tracks() const { return next_track_; }

  // --- Relational views (metadata in relational tables, §II-B2) --------------
  /// (id, frame, time, label, confidence, x, y, w, h, track).
  sql::Table AsTable() const;

 private:
  std::vector<Detection> detections_;
  std::unordered_map<std::string, std::vector<size_t>> by_label_;
  std::unordered_map<TrackId, std::vector<size_t>> by_track_;
  double track_iou_threshold_ = 0.3;
  int64_t next_id_ = 1;
  TrackId next_track_ = 0;
};

}  // namespace ofi::vision
