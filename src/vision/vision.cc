#include "vision/vision.h"

#include <algorithm>

namespace ofi::vision {

double BBox::Iou(const BBox& other) const {
  double ix = std::max(x, other.x);
  double iy = std::max(y, other.y);
  double ix2 = std::min(x + w, other.x + other.w);
  double iy2 = std::min(y + h, other.y + other.h);
  double iw = std::max(0.0, ix2 - ix);
  double ih = std::max(0.0, iy2 - iy);
  double inter = iw * ih;
  double uni = Area() + other.Area() - inter;
  return uni > 0 ? inter / uni : 0;
}

int64_t VisionStore::Ingest(Detection detection) {
  detection.id = next_id_++;
  if (detection.track < 0) {
    // Greedy IoU tracker: match against the most recent detection of every
    // existing track with the same label.
    TrackId best_track = -1;
    double best_iou = track_iou_threshold_;
    for (const auto& [track, indexes] : by_track_) {
      const Detection& last = detections_[indexes.back()];
      if (last.label != detection.label) continue;
      if (last.ts >= detection.ts) continue;  // tracks move forward in time
      double iou = last.bbox.Iou(detection.bbox);
      if (iou >= best_iou) {
        best_iou = iou;
        best_track = track;
      }
    }
    detection.track = best_track >= 0 ? best_track : next_track_++;
    if (detection.track == next_track_ - 1 && best_track < 0) {
      // new track allocated above
    }
  } else {
    next_track_ = std::max(next_track_, detection.track + 1);
  }
  size_t index = detections_.size();
  by_label_[detection.label].push_back(index);
  by_track_[detection.track].push_back(index);
  int64_t id = detection.id;
  detections_.push_back(std::move(detection));
  return id;
}

std::vector<const Detection*> VisionStore::Query(const std::string& label,
                                                 Timestamp from, Timestamp to,
                                                 double min_confidence) const {
  std::vector<const Detection*> out;
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return out;
  for (size_t idx : it->second) {
    const Detection& d = detections_[idx];
    if (d.ts >= from && d.ts < to && d.confidence >= min_confidence) {
      out.push_back(&d);
    }
  }
  return out;
}

std::vector<const Detection*> VisionStore::Track(TrackId track) const {
  std::vector<const Detection*> out;
  auto it = by_track_.find(track);
  if (it == by_track_.end()) return out;
  for (size_t idx : it->second) out.push_back(&detections_[idx]);
  std::sort(out.begin(), out.end(),
            [](const Detection* a, const Detection* b) { return a->ts < b->ts; });
  return out;
}

std::map<std::string, int64_t> VisionStore::CountByLabel(Timestamp from,
                                                         Timestamp to) const {
  std::map<std::string, int64_t> out;
  for (const auto& d : detections_) {
    if (d.ts >= from && d.ts < to) out[d.label]++;
  }
  return out;
}

int64_t VisionStore::DistinctTracks(const std::string& label, Timestamp from,
                                    Timestamp to) const {
  std::vector<TrackId> tracks;
  for (const Detection* d : Query(label, from, to)) tracks.push_back(d->track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  return static_cast<int64_t>(tracks.size());
}

sql::Table VisionStore::AsTable() const {
  using sql::Column;
  using sql::TypeId;
  using sql::Value;
  sql::Table t{sql::Schema({{"id", TypeId::kInt64, ""},
                            {"frame", TypeId::kInt64, ""},
                            {"time", TypeId::kTimestamp, ""},
                            {"label", TypeId::kString, ""},
                            {"confidence", TypeId::kDouble, ""},
                            {"x", TypeId::kDouble, ""},
                            {"y", TypeId::kDouble, ""},
                            {"w", TypeId::kDouble, ""},
                            {"h", TypeId::kDouble, ""},
                            {"track", TypeId::kInt64, ""}})};
  for (const auto& d : detections_) {
    t.mutable_rows().push_back({Value(d.id), Value(d.frame),
                                Value::Timestamp(d.ts), Value(d.label),
                                Value(d.confidence), Value(d.bbox.x),
                                Value(d.bbox.y), Value(d.bbox.w), Value(d.bbox.h),
                                Value(d.track)});
  }
  return t;
}

}  // namespace ofi::vision
