#include "common/thread_pool.h"

#include <algorithm>

namespace ofi::common {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = n;
  for (int i = 0; i < n; ++i) {
    Submit([&, i] {
      fn(i);
      // Notify while holding the lock: once `remaining` hits 0 the caller
      // may return and destroy done_cv, so the signal must not outlive the
      // critical section.
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace ofi::common
