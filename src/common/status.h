/// \file status.h
/// \brief Error model for openfidb: a lightweight Status type (RocksDB/Arrow
/// idiom). Fallible APIs return Status or Result<T>; exceptions are not used
/// on any hot path.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace ofi {

/// Machine-inspectable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kAborted,          // transaction aborts, write-write conflicts
  kUnavailable,      // node down / partitioned
  kTimedOut,
  kCorruption,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kPermissionDenied,
  kIncompatibleSchema,  // GMDB schema evolution rejections
};

/// \brief Return-value error carrier. OK is cheap (no allocation);
/// failures carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status IncompatibleSchema(std::string msg) {
    return Status(StatusCode::kIncompatibleSchema, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsIncompatibleSchema() const {
    return code() == StatusCode::kIncompatibleSchema;
  }

  /// Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps copies cheap; Status is copied through Result<T> a lot.
  std::shared_ptr<Rep> rep_;
};

/// Converts a code to its canonical upper-case token (e.g. "NOT_FOUND").
std::string_view StatusCodeToString(StatusCode code);

}  // namespace ofi

/// Propagates a non-OK Status to the caller.
#define OFI_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::ofi::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define OFI_CONCAT_IMPL(a, b) a##b
#define OFI_CONCAT(a, b) OFI_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define OFI_ASSIGN_OR_RETURN(lhs, expr)                       \
  OFI_ASSIGN_OR_RETURN_IMPL(OFI_CONCAT(_res_, __LINE__), lhs, expr)

#define OFI_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();
