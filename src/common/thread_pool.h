/// \file thread_pool.h
/// \brief A fixed-size, work-stealing-free thread pool shared by the MPP
/// scatter path. The paper's CN fans a query out to all DNs *concurrently*
/// (Fig. 1: "they exchange data on-demand and execute the query in
/// parallel"); the pool is what makes that true on the wall clock, while
/// the latency model (max-over-DNs, see cluster/mpp_query.h) makes it true
/// in simulated time. One central FIFO queue, N worker threads: simple,
/// deterministic to reason about, and sufficient for shard-grained tasks
/// (work stealing pays off for fine-grained irregular tasks, which scatter
/// is not).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ofi::common {

/// \brief Fixed-size thread pool. Threads start in the constructor and join
/// in the destructor; tasks run in FIFO order per the central queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Runs fn(0..n-1) across the pool and blocks until every call returned.
  /// fn must be safe to invoke concurrently with distinct indices. n <= 1
  /// runs inline on the caller (no queue round trip). Must not be called
  /// from inside a pool task (a worker waiting on workers can deadlock once
  /// the queue backs up).
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The process-wide shared pool, sized to the hardware concurrency
  /// (minimum 2 so parallelism is exercised even on 1-core CI hosts).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ofi::common
