/// \file metrics.h
/// \brief Counters and latency histograms. Used by benchmarks to report the
/// paper-shaped series and by the autonomous-DB information store (§IV-A)
/// as its raw monitoring feed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ofi {

/// \brief A latency histogram with power-of-two-ish buckets plus exact
/// tracking of count/sum/min/max. Percentiles are approximate (bucket
/// upper bounds), which is fine for SLA checks and bench reporting.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  void Record(int64_t value_us) {
    if (value_us < 0) value_us = 0;
    ++count_;
    sum_ += value_us;
    min_ = count_ == 1 ? value_us : std::min(min_, value_us);
    max_ = std::max(max_, value_us);
    buckets_[BucketFor(value_us)]++;
  }

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0.0; }

  /// Approximate percentile (0 < p <= 100) as a bucket upper bound.
  int64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t target = static_cast<uint64_t>(p / 100.0 * count_);
    if (target >= count_) target = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen > target) return UpperBound(i);
    }
    return max_;
  }

  void Merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

 private:
  // 4 sub-buckets per power of two up to ~2^40 us.
  static constexpr size_t kNumBuckets = 41 * 4;

  static size_t BucketFor(int64_t v) {
    if (v <= 0) return 0;
    int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(v));
    int64_t base = int64_t{1} << log2;
    int sub = static_cast<int>((v - base) * 4 / (base > 0 ? base : 1));
    size_t idx = static_cast<size_t>(log2 * 4 + std::min(sub, 3));
    return std::min(idx, kNumBuckets - 1);
  }

  static int64_t UpperBound(size_t idx) {
    int log2 = static_cast<int>(idx / 4);
    int sub = static_cast<int>(idx % 4);
    int64_t base = int64_t{1} << log2;
    return base + base * (sub + 1) / 4;
  }

  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

/// \brief A named bag of counters and histograms; the unit every component
/// reports into and the autonomous DB reads out of.
///
/// Counter operations are thread-safe (background maintenance like vacuum
/// reports concurrently with the MPP coordinator). Histogram() hands out a
/// reference into the registry: the lookup is guarded, but recording into
/// the returned histogram is single-threaded by convention.
class MetricsRegistry {
 public:
  void Add(const std::string& counter, int64_t delta = 1) {
    std::lock_guard lock(mu_);
    counters_[counter] += delta;
  }
  int64_t Get(const std::string& counter) const {
    std::lock_guard lock(mu_);
    auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
  }
  LatencyHistogram& Histogram(const std::string& name) {
    std::lock_guard lock(mu_);
    return histograms_[name];
  }
  /// Snapshot of every counter (copy: safe to iterate while writers run).
  std::map<std::string, int64_t> counters() const {
    std::lock_guard lock(mu_);
    return counters_;
  }
  void Reset() {
    std::lock_guard lock(mu_);
    counters_.clear();
    histograms_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace ofi
