/// \file logging.h
/// \brief Minimal leveled logging to stderr. Off by default so tests and
/// benches stay quiet; enable with OFI_LOG_LEVEL env or SetLogLevel().
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace ofi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << "\n";
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel l) {
    switch (l) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      default: return "?";
    }
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ofi

#define OFI_LOG(level) \
  ::ofi::internal::LogMessage(::ofi::LogLevel::k##level, __FILE__, __LINE__).stream()
