#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace ofi {
namespace {

LogLevel FromEnv() {
  const char* env = std::getenv("OFI_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel g_level = FromEnv();

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

}  // namespace ofi
