/// \file result.h
/// \brief Result<T>: a Status or a value (Arrow idiom). Used by every
/// fallible value-producing API in openfidb.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ofi {

/// \brief Either an OK value of type T or a non-OK Status.
///
/// Construction from T yields an OK result; construction from a non-OK
/// Status yields an error result. Constructing from an OK Status is a
/// programming error (asserted in debug builds, demoted to Internal).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(runtime/explicit)
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK if this result holds a value.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// The value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or a fallback when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ofi
