/// \file sim_clock.h
/// \brief Simulated time. The paper's experiments ran on clusters of
/// physical machines; we reproduce their *queueing behaviour* (e.g. the GTM
/// becoming a serialized bottleneck, Fig. 3) deterministically by charging
/// simulated microseconds for network hops and critical sections instead of
/// relying on wall-clock contention.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

namespace ofi {

/// Simulated microseconds since simulation start.
using SimTime = int64_t;

/// \brief A discrete-event scheduler with per-actor serialization.
///
/// Actors (clients, data nodes, the GTM) are modeled as serialized
/// resources. Each resource keeps its set of busy intervals; charging work
/// packs the request into the earliest idle gap at or after its arrival
/// (gap-fitting). This makes the result independent of the order in which
/// charges are issued — closed-loop clients execute whole transactions in
/// code order while their requests interleave correctly in simulated time —
/// and a shared resource still saturates at 1/service-time requests per
/// second, the bottleneck behaviour GTM-lite removes from the GTM.
///
/// Thread safety: all methods take an internal mutex. Because gap-fitting
/// makes completion times independent of charge issue order, charging from
/// background threads (e.g. delta-merge tasks) stays deterministic as long
/// as the *set* of (resource, arrival, service) charges is deterministic.
class SimScheduler {
 public:
  /// Registers a serialized resource; returns its id.
  int AddResource() {
    std::lock_guard lock(mu_);
    resources_.emplace_back();
    return static_cast<int>(resources_.size()) - 1;
  }

  /// Charges `service_us` of serialized work on `resource` for a request
  /// arriving at `arrival`. Returns the completion time (the request waits
  /// for the first idle gap big enough to hold it).
  SimTime Charge(int resource, SimTime arrival, SimTime service_us) {
    std::lock_guard lock(mu_);
    auto& busy = resources_[resource].busy;
    SimTime t = arrival;
    auto it = busy.upper_bound(t);
    if (it != busy.begin()) {
      auto prev = std::prev(it);
      if (prev->second > t) t = prev->second;
    }
    // Slide over occupied intervals until a gap of `service_us` fits.
    while (it != busy.end() && it->first < t + service_us) {
      t = it->second;
      ++it;
    }
    busy.emplace(t, t + service_us);
    return t + service_us;
  }

  /// Total busy time charged to `resource` in [0, horizon) — utilization
  /// reporting for benches.
  SimTime BusyTime(int resource) const {
    std::lock_guard lock(mu_);
    SimTime total = 0;
    for (const auto& [start, end] : resources_[resource].busy) total += end - start;
    return total + resources_[resource].trimmed_busy;
  }

  /// Drops interval bookkeeping that ended before `floor` (no future arrival
  /// will be earlier). Call periodically from closed-loop drivers.
  void Trim(SimTime floor) {
    std::lock_guard lock(mu_);
    for (auto& r : resources_) {
      auto it = r.busy.begin();
      while (it != r.busy.end() && it->second < floor) {
        r.trimmed_busy += it->second - it->first;
        it = r.busy.erase(it);
      }
    }
  }

  void Reset() {
    std::lock_guard lock(mu_);
    for (auto& r : resources_) {
      r.busy.clear();
      r.trimmed_busy = 0;
    }
  }

 private:
  struct Resource {
    std::map<SimTime, SimTime> busy;  // start -> end, non-overlapping
    SimTime trimmed_busy = 0;
  };
  mutable std::mutex mu_;
  std::vector<Resource> resources_;
};

/// \brief A monotonically advancing simulated clock usable where only
/// "now" is needed (GMDB checkpointing, metrics windows, edge sync).
class SimClock {
 public:
  SimTime Now() const { return now_; }
  void Advance(SimTime delta_us) { now_ += delta_us; }
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }
  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace ofi
