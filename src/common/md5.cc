#include "common/md5.h"

#include <cstring>

namespace ofi {
namespace {

constexpr uint32_t kS[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr uint32_t kK[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline uint32_t Rotl(uint32_t x, uint32_t c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

Md5::Md5() : a0_(0x67452301), b0_(0xefcdab89), c0_(0x98badcfe), d0_(0x10325476) {}

void Md5::ProcessBlock(const uint8_t* block) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[i * 4]) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 8) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 3]) << 24);
  }
  uint32_t a = a0_, b = b0_, c = c0_, d = d0_;
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    f = f + a + kK[i] + m[g];
    a = d;
    d = c;
    c = b;
    b = b + Rotl(f, kS[i]);
  }
  a0_ += a;
  b0_ += b;
  c0_ += c;
  d0_ += d;
}

void Md5::Update(std::string_view data) {
  total_len_ += data.size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  if (buffer_len_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

std::array<uint8_t, 16> Md5::Digest() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(std::string_view(reinterpret_cast<const char*>(&pad), 1));
  total_len_ -= 1;  // padding does not count toward message length
  static const uint8_t kZeros[64] = {};
  while (buffer_len_ != 56) {
    size_t need = buffer_len_ < 56 ? 56 - buffer_len_ : 64 - buffer_len_ + 56;
    size_t take = std::min<size_t>(need, 64);
    Update(std::string_view(reinterpret_cast<const char*>(kZeros), take));
    total_len_ -= take;
  }
  uint8_t len_le[8];
  for (int i = 0; i < 8; ++i) len_le[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  Update(std::string_view(reinterpret_cast<const char*>(len_le), 8));

  std::array<uint8_t, 16> out;
  uint32_t regs[4] = {a0_, b0_, c0_, d0_};
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 4; ++i) {
      out[r * 4 + i] = static_cast<uint8_t>(regs[r] >> (8 * i));
    }
  }
  return out;
}

std::string Md5::HexDigest(std::string_view data) {
  Md5 h;
  h.Update(data);
  auto d = h.Digest();
  static const char kHex[] = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[i * 2] = kHex[d[i] >> 4];
    s[i * 2 + 1] = kHex[d[i] & 0xF];
  }
  return s;
}

}  // namespace ofi
