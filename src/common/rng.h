/// \file rng.h
/// \brief Deterministic pseudo-random generation for workloads: splitmix64
/// core, uniform/zipfian/NURand helpers. TPC-C's NURand is reproduced per
/// the spec because the GTM-lite evaluation (Fig. 3) uses a modified TPC-C.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace ofi {

/// \brief splitmix64 PRNG: tiny, fast, and deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// TPC-C NURand(A, x, y) non-uniform distribution (spec clause 2.1.6).
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c = 42) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random lower-case alphanumeric string of length n.
  std::string AlphaString(size_t n) {
    static const char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(n, 'a');
    for (auto& ch : s) ch = kChars[Next() % 36];
    return s;
  }

 private:
  uint64_t state_;
};

/// \brief Zipfian generator over [0, n) with parameter theta, using the
/// Gray et al. method (as popularized by YCSB). Skewed access patterns are
/// used by the learned-optimizer and GMDB workloads.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta = 0.99, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace ofi
