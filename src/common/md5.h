/// \file md5.h
/// \brief From-scratch MD5 (RFC 1321). The learned optimizer's plan store
/// keys canonical step text by its MD5 digest (32 hex chars) to bound key
/// size for arbitrarily complex queries (paper §II-C).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ofi {

/// \brief Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  /// Absorbs `data` into the digest state.
  void Update(std::string_view data);

  /// Finalizes and returns the 16-byte digest. The hasher must not be
  /// updated afterwards.
  std::array<uint8_t, 16> Digest();

  /// One-shot convenience: 32-char lower-case hex digest of `data`.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t a0_, b0_, c0_, d0_;
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace ofi
