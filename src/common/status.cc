#include "common/status.h"

namespace ofi {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimedOut: return "TIMED_OUT";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kNotImplemented: return "NOT_IMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kIncompatibleSchema: return "INCOMPATIBLE_SCHEMA";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace ofi
