/// \file streaming.h
/// \brief The streaming runtime (paper §II-B2: the SQL extension integrates
/// "a continuous query language used in streaming processing"). Continuous
/// queries run standing over an event stream: optional filter, optional
/// group key, a windowed aggregate, and an emit callback fired when event
/// time passes the window end (plus allowed lateness). Late events are
/// counted and dropped, never silently mis-aggregated.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/expr.h"
#include "sql/plan.h"
#include "sql/schema.h"

namespace ofi::streaming {

using Timestamp = int64_t;

/// One emitted window.
struct WindowResult {
  std::string query;
  Timestamp window_start = 0;
  sql::Value key;  // NULL for un-keyed queries
  double value = 0;
  uint64_t count = 0;
};

using EmitCallback = std::function<void(const WindowResult&)>;

/// Definition of a continuous query.
struct ContinuousQuerySpec {
  std::string name;
  sql::ExprPtr filter;        // optional row predicate
  std::string key_column;     // optional group-by column ("" = global)
  sql::AggFunc agg = sql::AggFunc::kCount;
  std::string agg_column;     // aggregated column ("" allowed for COUNT)
  Timestamp window_us = 1'000'000;
  Timestamp allowed_lateness_us = 0;
};

/// \brief Standing queries over one event schema.
class StreamEngine {
 public:
  /// \param schema the event schema; the first column must be the
  ///        event-time column (TIMESTAMP), like the EventStore layout.
  explicit StreamEngine(sql::Schema schema);

  /// Registers a continuous query; returns its id. Binds the filter and
  /// columns against the stream schema.
  Result<int> Register(ContinuousQuerySpec spec, EmitCallback callback);
  Status Unregister(int query_id);

  /// Ingests one event (row WITHOUT the time column). Advancing event time
  /// closes windows and fires callbacks; events older than the watermark
  /// (max event time - allowed lateness) are dropped and counted late.
  Status Ingest(Timestamp ts, sql::Row values);

  /// Closes and emits every open window (end of stream / shutdown).
  void Flush();

  uint64_t events_ingested() const { return events_ingested_; }
  uint64_t late_events() const { return late_events_; }
  Timestamp watermark() const { return max_event_time_; }

 private:
  struct WindowState {
    double sum = 0, min = 0, max = 0;
    uint64_t count = 0;
  };
  struct Query {
    ContinuousQuerySpec spec;
    EmitCallback callback;
    int key_index = -1;  // into the full (time-prefixed) row
    int agg_index = -1;
    // (window_start, key) -> state. std::map keeps windows ordered by start.
    std::map<std::pair<Timestamp, sql::Value>, WindowState> windows;
  };

  void AccumulateInto(Query* q, Timestamp ts, const sql::Row& full_row);
  void EmitClosedWindows(Query* q);
  void EmitWindow(Query* q, const std::pair<Timestamp, sql::Value>& key,
                  const WindowState& st);

  sql::Schema schema_;  // time + value columns
  std::map<int, Query> queries_;
  int next_id_ = 1;
  Timestamp max_event_time_ = INT64_MIN;
  uint64_t events_ingested_ = 0;
  uint64_t late_events_ = 0;
};

}  // namespace ofi::streaming
