#include "streaming/streaming.h"

#include <algorithm>

namespace ofi::streaming {

StreamEngine::StreamEngine(sql::Schema schema) : schema_(std::move(schema)) {}

Result<int> StreamEngine::Register(ContinuousQuerySpec spec,
                                   EmitCallback callback) {
  Query q;
  if (spec.window_us <= 0) {
    return Status::InvalidArgument("window must be positive");
  }
  if (spec.filter) {
    OFI_RETURN_NOT_OK(spec.filter->Bind(schema_));
  }
  if (!spec.key_column.empty()) {
    OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(spec.key_column));
    q.key_index = static_cast<int>(idx);
  }
  if (!spec.agg_column.empty()) {
    OFI_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(spec.agg_column));
    q.agg_index = static_cast<int>(idx);
  } else if (spec.agg != sql::AggFunc::kCount) {
    return Status::InvalidArgument("only COUNT may omit the aggregate column");
  }
  q.spec = std::move(spec);
  q.callback = std::move(callback);
  int id = next_id_++;
  queries_[id] = std::move(q);
  return id;
}

Status StreamEngine::Unregister(int query_id) {
  if (queries_.erase(query_id) == 0) return Status::NotFound("no such query");
  return Status::OK();
}

void StreamEngine::AccumulateInto(Query* q, Timestamp ts,
                                  const sql::Row& full_row) {
  if (q->spec.filter) {
    sql::Value pass = q->spec.filter->Eval(full_row);
    if (pass.is_null() || !pass.AsBool()) return;
  }
  Timestamp wstart =
      ts - ((ts % q->spec.window_us) + q->spec.window_us) % q->spec.window_us;
  sql::Value key = q->key_index >= 0 ? full_row[q->key_index] : sql::Value::Null();
  WindowState& st = q->windows[{wstart, key}];
  double v = 0;
  if (q->agg_index >= 0 && !full_row[q->agg_index].is_null()) {
    v = full_row[q->agg_index].AsDouble();
  } else if (q->agg_index >= 0) {
    return;  // NULL aggregate input: skipped, SQL-style
  }
  if (st.count == 0) {
    st.min = st.max = v;
  } else {
    st.min = std::min(st.min, v);
    st.max = std::max(st.max, v);
  }
  st.sum += v;
  ++st.count;
}

void StreamEngine::EmitWindow(Query* q,
                              const std::pair<Timestamp, sql::Value>& key,
                              const WindowState& st) {
  WindowResult r;
  r.query = q->spec.name;
  r.window_start = key.first;
  r.key = key.second;
  r.count = st.count;
  switch (q->spec.agg) {
    case sql::AggFunc::kCount: r.value = static_cast<double>(st.count); break;
    case sql::AggFunc::kSum: r.value = st.sum; break;
    case sql::AggFunc::kAvg:
      r.value = st.count ? st.sum / static_cast<double>(st.count) : 0;
      break;
    case sql::AggFunc::kMin: r.value = st.min; break;
    case sql::AggFunc::kMax: r.value = st.max; break;
  }
  q->callback(r);
}

void StreamEngine::EmitClosedWindows(Query* q) {
  // A window [w, w + window) is closed once the watermark passes its end
  // plus the query's lateness allowance.
  while (!q->windows.empty()) {
    auto it = q->windows.begin();
    Timestamp closes_at =
        it->first.first + q->spec.window_us + q->spec.allowed_lateness_us;
    if (max_event_time_ < closes_at) break;
    EmitWindow(q, it->first, it->second);
    q->windows.erase(it);
  }
}

Status StreamEngine::Ingest(Timestamp ts, sql::Row values) {
  if (values.size() + 1 != schema_.num_columns()) {
    return Status::InvalidArgument("event arity mismatch");
  }
  ++events_ingested_;

  sql::Row full_row;
  full_row.reserve(values.size() + 1);
  full_row.push_back(sql::Value::Timestamp(ts));
  for (auto& v : values) full_row.push_back(std::move(v));

  bool late_for_all = true;
  for (auto& [id, q] : queries_) {
    Timestamp wstart =
        ts - ((ts % q.spec.window_us) + q.spec.window_us) % q.spec.window_us;
    Timestamp closes_at = wstart + q.spec.window_us + q.spec.allowed_lateness_us;
    if (max_event_time_ != INT64_MIN && closes_at <= max_event_time_) {
      continue;  // this event's window already closed for query q: late
    }
    late_for_all = false;
    AccumulateInto(&q, ts, full_row);
  }
  if (late_for_all && !queries_.empty() && max_event_time_ != INT64_MIN &&
      ts < max_event_time_) {
    ++late_events_;
  }

  if (ts > max_event_time_) {
    max_event_time_ = ts;
    for (auto& [id, q] : queries_) EmitClosedWindows(&q);
  }
  return Status::OK();
}

void StreamEngine::Flush() {
  for (auto& [id, q] : queries_) {
    for (const auto& [key, st] : q.windows) EmitWindow(&q, key, st);
    q.windows.clear();
  }
}

}  // namespace ofi::streaming
