/// \file property_graph.h
/// \brief Property graph storage, represented relationally underneath
/// (vertex and edge tables with property maps) exactly as the paper's
/// unified storage engine prescribes: "graphs are represented through
/// tables for vertexes and edges" (§II-B2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/table.h"
#include "sql/value.h"

namespace ofi::graph {

using VertexId = int64_t;
using EdgeId = int64_t;

/// A vertex: label + property map.
struct Vertex {
  VertexId id = 0;
  std::string label;
  std::map<std::string, sql::Value> properties;
};

/// A directed edge: label + property map.
struct Edge {
  EdgeId id = 0;
  std::string label;
  VertexId src = 0;
  VertexId dst = 0;
  std::map<std::string, sql::Value> properties;
};

/// \brief In-memory property graph with adjacency and property indexes.
class PropertyGraph {
 public:
  /// Adds a vertex; returns its id.
  VertexId AddVertex(std::string label,
                     std::map<std::string, sql::Value> properties = {});
  /// Adds a directed edge; fails if either endpoint is unknown.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string label,
                         std::map<std::string, sql::Value> properties = {});

  Result<const Vertex*> GetVertex(VertexId id) const;
  Result<const Edge*> GetEdge(EdgeId id) const;

  /// Outgoing / incoming edge ids of a vertex, optionally label-filtered.
  std::vector<EdgeId> OutEdges(VertexId v, const std::string& label = "") const;
  std::vector<EdgeId> InEdges(VertexId v, const std::string& label = "") const;

  /// All vertex ids (optionally by label).
  std::vector<VertexId> AllVertices(const std::string& label = "") const;

  /// Vertices whose property `key` equals `value` (uses the property index).
  std::vector<VertexId> VerticesByProperty(const std::string& key,
                                           const sql::Value& value) const;

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  // --- Graph algorithms (domain-specific knowledge processing, §II-B1) ------
  /// Unweighted shortest path (BFS); empty if unreachable.
  std::vector<VertexId> ShortestPath(VertexId from, VertexId to) const;
  /// PageRank over the whole graph.
  std::unordered_map<VertexId, double> PageRank(int iterations = 20,
                                                double damping = 0.85) const;
  /// Weakly connected components: vertex -> component id.
  std::unordered_map<VertexId, int> ConnectedComponents() const;

  // --- Relational views (unified storage, §II-B2) ----------------------------
  /// Vertex table: (id, label, <property> ...) for the given property names.
  sql::Table VerticesAsTable(const std::vector<std::string>& property_cols) const;
  /// Edge table: (id, label, src, dst, <property> ...).
  sql::Table EdgesAsTable(const std::vector<std::string>& property_cols) const;

 private:
  std::unordered_map<VertexId, Vertex> vertices_;
  std::unordered_map<EdgeId, Edge> edges_;
  std::unordered_map<VertexId, std::vector<EdgeId>> out_;
  std::unordered_map<VertexId, std::vector<EdgeId>> in_;
  // Property index: key -> value -> vertex ids.
  std::unordered_map<std::string, std::unordered_map<sql::Value, std::vector<VertexId>>>
      property_index_;
  VertexId next_vertex_ = 1;
  EdgeId next_edge_ = 1;
};

}  // namespace ofi::graph
