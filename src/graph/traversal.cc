#include "graph/traversal.h"

#include <algorithm>
#include <unordered_set>

namespace ofi::graph {

bool Gp::Test(const sql::Value& v) const {
  if (v.is_null()) return false;
  int c = v.Compare(operand);
  switch (op) {
    case Op::kEq: return c == 0;
    case Op::kNe: return c != 0;
    case Op::kLt: return c < 0;
    case Op::kLe: return c <= 0;
    case Op::kGt: return c > 0;
    case Op::kGe: return c >= 0;
  }
  return false;
}

Traversal& Traversal::V() {
  vertices_ = graph_->AllVertices();
  edges_.clear();
  values_.clear();
  mode_ = Mode::kVertices;
  return *this;
}

Traversal& Traversal::V(VertexId id) {
  vertices_.clear();
  if (graph_->GetVertex(id).ok()) vertices_.push_back(id);
  edges_.clear();
  values_.clear();
  mode_ = Mode::kVertices;
  return *this;
}

Traversal& Traversal::HasLabel(const std::string& label) {
  if (mode_ == Mode::kVertices) {
    std::vector<VertexId> keep;
    for (VertexId v : vertices_) {
      if ((*graph_->GetVertex(v))->label == label) keep.push_back(v);
    }
    vertices_ = std::move(keep);
  } else if (mode_ == Mode::kEdges) {
    std::vector<EdgeId> keep;
    for (EdgeId e : edges_) {
      if ((*graph_->GetEdge(e))->label == label) keep.push_back(e);
    }
    edges_ = std::move(keep);
  }
  return *this;
}

Traversal& Traversal::Has(const std::string& key, const sql::Value& value) {
  return Has(key, Gp::Eq(value));
}

Traversal& Traversal::Has(const std::string& key, const Gp& pred) {
  auto property_of = [&](const std::map<std::string, sql::Value>& props) {
    auto it = props.find(key);
    return it == props.end() ? sql::Value::Null() : it->second;
  };
  if (mode_ == Mode::kVertices) {
    std::vector<VertexId> keep;
    for (VertexId v : vertices_) {
      if (pred.Test(property_of((*graph_->GetVertex(v))->properties))) {
        keep.push_back(v);
      }
    }
    vertices_ = std::move(keep);
  } else if (mode_ == Mode::kEdges) {
    std::vector<EdgeId> keep;
    for (EdgeId e : edges_) {
      if (pred.Test(property_of((*graph_->GetEdge(e))->properties))) {
        keep.push_back(e);
      }
    }
    edges_ = std::move(keep);
  } else {
    std::vector<sql::Value> keep;
    for (const auto& v : values_) {
      if (pred.Test(v)) keep.push_back(v);
    }
    values_ = std::move(keep);
  }
  return *this;
}

Traversal& Traversal::Where(const std::function<Traversal(Traversal)>& sub,
                            const Gp& count_pred) {
  if (mode_ != Mode::kVertices) return *this;
  std::vector<VertexId> keep;
  for (VertexId v : vertices_) {
    Traversal seed(graph_, {v});
    Traversal result = sub(std::move(seed));
    if (count_pred.Test(sql::Value(result.Count()))) keep.push_back(v);
  }
  vertices_ = std::move(keep);
  return *this;
}

Traversal& Traversal::Dedup() {
  if (mode_ == Mode::kVertices) {
    std::unordered_set<VertexId> seen;
    std::vector<VertexId> keep;
    for (VertexId v : vertices_) {
      if (seen.insert(v).second) keep.push_back(v);
    }
    vertices_ = std::move(keep);
  } else if (mode_ == Mode::kEdges) {
    std::unordered_set<EdgeId> seen;
    std::vector<EdgeId> keep;
    for (EdgeId e : edges_) {
      if (seen.insert(e).second) keep.push_back(e);
    }
    edges_ = std::move(keep);
  } else {
    std::vector<sql::Value> keep;
    for (const auto& v : values_) {
      bool dup = false;
      for (const auto& k : keep) {
        if (k.Equals(v)) {
          dup = true;
          break;
        }
      }
      if (!dup) keep.push_back(v);
    }
    values_ = std::move(keep);
  }
  return *this;
}

Traversal& Traversal::Limit(size_t n) {
  if (vertices_.size() > n) vertices_.resize(n);
  if (edges_.size() > n) edges_.resize(n);
  if (values_.size() > n) values_.resize(n);
  return *this;
}

Traversal& Traversal::OutE(const std::string& label) {
  std::vector<EdgeId> next;
  for (VertexId v : vertices_) {
    auto es = graph_->OutEdges(v, label);
    next.insert(next.end(), es.begin(), es.end());
  }
  edges_ = std::move(next);
  vertices_.clear();
  mode_ = Mode::kEdges;
  return *this;
}

Traversal& Traversal::InE(const std::string& label) {
  std::vector<EdgeId> next;
  for (VertexId v : vertices_) {
    auto es = graph_->InEdges(v, label);
    next.insert(next.end(), es.begin(), es.end());
  }
  edges_ = std::move(next);
  vertices_.clear();
  mode_ = Mode::kEdges;
  return *this;
}

Traversal& Traversal::OutV() {
  std::vector<VertexId> next;
  for (EdgeId e : edges_) next.push_back((*graph_->GetEdge(e))->src);
  vertices_ = std::move(next);
  edges_.clear();
  mode_ = Mode::kVertices;
  return *this;
}

Traversal& Traversal::InV() {
  std::vector<VertexId> next;
  for (EdgeId e : edges_) next.push_back((*graph_->GetEdge(e))->dst);
  vertices_ = std::move(next);
  edges_.clear();
  mode_ = Mode::kVertices;
  return *this;
}

Traversal& Traversal::Out(const std::string& label) { return OutE(label).InV(); }
Traversal& Traversal::In(const std::string& label) { return InE(label).OutV(); }

Traversal& Traversal::Both(const std::string& label) {
  std::vector<VertexId> next;
  for (VertexId v : vertices_) {
    for (EdgeId e : graph_->OutEdges(v, label)) {
      next.push_back((*graph_->GetEdge(e))->dst);
    }
    for (EdgeId e : graph_->InEdges(v, label)) {
      next.push_back((*graph_->GetEdge(e))->src);
    }
  }
  vertices_ = std::move(next);
  edges_.clear();
  mode_ = Mode::kVertices;
  return *this;
}

Traversal& Traversal::Repeat(const std::string& label, int times) {
  for (int i = 0; i < times; ++i) {
    Out(label);
    Dedup();  // keep the frontier a set, else fan-out explodes
  }
  return *this;
}

Traversal& Traversal::PropertyValues(const std::string& key) {
  std::vector<sql::Value> next;
  auto push = [&](const std::map<std::string, sql::Value>& props) {
    auto it = props.find(key);
    if (it != props.end()) next.push_back(it->second);
  };
  if (mode_ == Mode::kVertices) {
    for (VertexId v : vertices_) push((*graph_->GetVertex(v))->properties);
  } else if (mode_ == Mode::kEdges) {
    for (EdgeId e : edges_) push((*graph_->GetEdge(e))->properties);
  }
  values_ = std::move(next);
  vertices_.clear();
  edges_.clear();
  mode_ = Mode::kValues;
  return *this;
}

int64_t Traversal::Count() const {
  switch (mode_) {
    case Mode::kVertices: return static_cast<int64_t>(vertices_.size());
    case Mode::kEdges: return static_cast<int64_t>(edges_.size());
    case Mode::kValues: return static_cast<int64_t>(values_.size());
  }
  return 0;
}

sql::Table Traversal::ToTable(const std::vector<std::string>& property_cols) const {
  std::vector<sql::Column> cols = {{"id", sql::TypeId::kInt64, ""}};
  for (const auto& p : property_cols) cols.push_back({p, sql::TypeId::kNull, ""});
  sql::Table t{sql::Schema(std::move(cols))};
  for (VertexId v : vertices_) {
    const Vertex& vertex = **graph_->GetVertex(v);
    sql::Row row = {sql::Value(v)};
    for (const auto& p : property_cols) {
      auto it = vertex.properties.find(p);
      row.push_back(it == vertex.properties.end() ? sql::Value::Null() : it->second);
    }
    t.mutable_rows().push_back(std::move(row));
  }
  return t;
}

}  // namespace ofi::graph
