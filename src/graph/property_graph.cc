#include "graph/property_graph.h"

#include <algorithm>
#include <deque>

namespace ofi::graph {

VertexId PropertyGraph::AddVertex(std::string label,
                                  std::map<std::string, sql::Value> properties) {
  VertexId id = next_vertex_++;
  for (const auto& [k, v] : properties) {
    property_index_[k][v].push_back(id);
  }
  vertices_[id] = Vertex{id, std::move(label), std::move(properties)};
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst,
                                      std::string label,
                                      std::map<std::string, sql::Value> properties) {
  if (!vertices_.count(src)) return Status::NotFound("unknown src vertex");
  if (!vertices_.count(dst)) return Status::NotFound("unknown dst vertex");
  EdgeId id = next_edge_++;
  edges_[id] = Edge{id, std::move(label), src, dst, std::move(properties)};
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

Result<const Vertex*> PropertyGraph::GetVertex(VertexId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) return Status::NotFound("no vertex " + std::to_string(id));
  return &it->second;
}

Result<const Edge*> PropertyGraph::GetEdge(EdgeId id) const {
  auto it = edges_.find(id);
  if (it == edges_.end()) return Status::NotFound("no edge " + std::to_string(id));
  return &it->second;
}

std::vector<EdgeId> PropertyGraph::OutEdges(VertexId v,
                                            const std::string& label) const {
  std::vector<EdgeId> result;
  auto it = out_.find(v);
  if (it == out_.end()) return result;
  for (EdgeId e : it->second) {
    if (label.empty() || edges_.at(e).label == label) result.push_back(e);
  }
  return result;
}

std::vector<EdgeId> PropertyGraph::InEdges(VertexId v,
                                           const std::string& label) const {
  std::vector<EdgeId> result;
  auto it = in_.find(v);
  if (it == in_.end()) return result;
  for (EdgeId e : it->second) {
    if (label.empty() || edges_.at(e).label == label) result.push_back(e);
  }
  return result;
}

std::vector<VertexId> PropertyGraph::AllVertices(const std::string& label) const {
  std::vector<VertexId> ids;
  for (const auto& [id, v] : vertices_) {
    if (label.empty() || v.label == label) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<VertexId> PropertyGraph::VerticesByProperty(
    const std::string& key, const sql::Value& value) const {
  auto kit = property_index_.find(key);
  if (kit == property_index_.end()) return {};
  auto vit = kit->second.find(value);
  if (vit == kit->second.end()) return {};
  return vit->second;
}

std::vector<VertexId> PropertyGraph::ShortestPath(VertexId from, VertexId to) const {
  if (!vertices_.count(from) || !vertices_.count(to)) return {};
  std::unordered_map<VertexId, VertexId> parent;
  std::deque<VertexId> queue = {from};
  parent[from] = from;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    if (v == to) break;
    auto it = out_.find(v);
    if (it == out_.end()) continue;
    for (EdgeId e : it->second) {
      VertexId next = edges_.at(e).dst;
      if (parent.emplace(next, v).second) queue.push_back(next);
    }
  }
  if (!parent.count(to)) return {};
  std::vector<VertexId> path;
  for (VertexId v = to; v != from; v = parent[v]) path.push_back(v);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

std::unordered_map<VertexId, double> PropertyGraph::PageRank(int iterations,
                                                             double damping) const {
  std::unordered_map<VertexId, double> rank;
  size_t n = vertices_.size();
  if (n == 0) return rank;
  double init = 1.0 / static_cast<double>(n);
  for (const auto& [id, v] : vertices_) rank[id] = init;
  for (int iter = 0; iter < iterations; ++iter) {
    std::unordered_map<VertexId, double> next;
    double dangling = 0;
    for (const auto& [id, r] : rank) {
      auto it = out_.find(id);
      if (it == out_.end() || it->second.empty()) {
        dangling += r;
        continue;
      }
      double share = r / static_cast<double>(it->second.size());
      for (EdgeId e : it->second) next[edges_.at(e).dst] += share;
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    for (const auto& [id, v] : vertices_) {
      rank[id] = base + damping * next[id];
    }
  }
  return rank;
}

std::unordered_map<VertexId, int> PropertyGraph::ConnectedComponents() const {
  std::unordered_map<VertexId, int> comp;
  int next_comp = 0;
  for (const auto& [start, v] : vertices_) {
    if (comp.count(start)) continue;
    int c = next_comp++;
    std::deque<VertexId> queue = {start};
    comp[start] = c;
    while (!queue.empty()) {
      VertexId cur = queue.front();
      queue.pop_front();
      for (const auto* adj : {&out_, &in_}) {
        auto it = adj->find(cur);
        if (it == adj->end()) continue;
        for (EdgeId e : it->second) {
          const Edge& edge = edges_.at(e);
          VertexId other = adj == &out_ ? edge.dst : edge.src;
          if (comp.emplace(other, c).second) queue.push_back(other);
        }
      }
    }
  }
  return comp;
}

sql::Table PropertyGraph::VerticesAsTable(
    const std::vector<std::string>& property_cols) const {
  std::vector<sql::Column> cols = {{"id", sql::TypeId::kInt64, ""},
                                   {"label", sql::TypeId::kString, ""}};
  for (const auto& p : property_cols) cols.push_back({p, sql::TypeId::kNull, ""});
  sql::Table t{sql::Schema(std::move(cols))};
  for (VertexId id : AllVertices()) {
    const Vertex& v = vertices_.at(id);
    sql::Row row = {sql::Value(id), sql::Value(v.label)};
    for (const auto& p : property_cols) {
      auto it = v.properties.find(p);
      row.push_back(it == v.properties.end() ? sql::Value::Null() : it->second);
    }
    t.mutable_rows().push_back(std::move(row));
  }
  return t;
}

sql::Table PropertyGraph::EdgesAsTable(
    const std::vector<std::string>& property_cols) const {
  std::vector<sql::Column> cols = {{"id", sql::TypeId::kInt64, ""},
                                   {"label", sql::TypeId::kString, ""},
                                   {"src", sql::TypeId::kInt64, ""},
                                   {"dst", sql::TypeId::kInt64, ""}};
  for (const auto& p : property_cols) cols.push_back({p, sql::TypeId::kNull, ""});
  sql::Table t{sql::Schema(std::move(cols))};
  std::vector<EdgeId> ids;
  for (const auto& [id, e] : edges_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (EdgeId id : ids) {
    const Edge& e = edges_.at(id);
    sql::Row row = {sql::Value(id), sql::Value(e.label), sql::Value(e.src),
                    sql::Value(e.dst)};
    for (const auto& p : property_cols) {
      auto it = e.properties.find(p);
      row.push_back(it == e.properties.end() ? sql::Value::Null() : it->second);
    }
    t.mutable_rows().push_back(std::move(row));
  }
  return t;
}

}  // namespace ofi::graph
