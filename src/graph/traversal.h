/// \file traversal.h
/// \brief Gremlin-style fluent traversals (the paper integrates the Gremlin
/// language for graph traversal into its SQL extension, §II-B2). The
/// operator vocabulary matches Gremlin: V, has, hasLabel, outE/inE,
/// outV/inV, out/in, count, values, dedup, limit, where(sub-traversal).
///
/// Example 1's graph fragment
///   g.V().has(cid,11111).inE(call).has(time, gt(2018/6/1)).count().gt(3)
/// is written as:
///   g.V().Has("cid", Value(11111))
///        .Where([&](Traversal t) {
///           return std::move(t).InE("call").Has("time", Gp::Gt(ts));
///        }, Gp::Gt(Value(3)))
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "graph/property_graph.h"

namespace ofi::graph {

/// \brief A Gremlin `P` predicate: compares a property value to a constant.
struct Gp {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe } op = Op::kEq;
  sql::Value operand;

  static Gp Eq(sql::Value v) { return {Op::kEq, std::move(v)}; }
  static Gp Ne(sql::Value v) { return {Op::kNe, std::move(v)}; }
  static Gp Lt(sql::Value v) { return {Op::kLt, std::move(v)}; }
  static Gp Le(sql::Value v) { return {Op::kLe, std::move(v)}; }
  static Gp Gt(sql::Value v) { return {Op::kGt, std::move(v)}; }
  static Gp Ge(sql::Value v) { return {Op::kGe, std::move(v)}; }

  bool Test(const sql::Value& v) const;
};

/// \brief An eagerly evaluated traversal. The frontier is either a set of
/// vertices, a set of edges, or a list of plain values.
class Traversal {
 public:
  explicit Traversal(const PropertyGraph* graph) : graph_(graph) {}
  Traversal(const PropertyGraph* graph, std::vector<VertexId> vertices)
      : graph_(graph), vertices_(std::move(vertices)), mode_(Mode::kVertices) {}

  // --- Start steps ----------------------------------------------------------
  /// All vertices.
  Traversal& V();
  /// One vertex by id.
  Traversal& V(VertexId id);

  // --- Filter steps ---------------------------------------------------------
  Traversal& HasLabel(const std::string& label);
  /// Property equality (uses the property index on a fresh vertex frontier).
  Traversal& Has(const std::string& key, const sql::Value& value);
  /// Property predicate.
  Traversal& Has(const std::string& key, const Gp& pred);
  /// Keeps elements for which the sub-traversal's count satisfies `count_pred`
  /// (Gremlin `where(__.inE()...count().is(P.gt(n)))`).
  Traversal& Where(const std::function<Traversal(Traversal)>& sub,
                   const Gp& count_pred);
  Traversal& Dedup();
  Traversal& Limit(size_t n);

  // --- Move steps -----------------------------------------------------------
  Traversal& OutE(const std::string& label = "");
  Traversal& InE(const std::string& label = "");
  /// Edge frontier -> source vertices.
  Traversal& OutV();
  /// Edge frontier -> destination vertices.
  Traversal& InV();
  /// Adjacent vertices over outgoing / incoming edges.
  Traversal& Out(const std::string& label = "");
  Traversal& In(const std::string& label = "");
  /// Neighbours in either direction (undirected adjacency).
  Traversal& Both(const std::string& label = "");
  /// Gremlin repeat(out(label)).times(n) with per-round dedup — multi-hop
  /// reachability (friend-of-friend, fraud rings).
  Traversal& Repeat(const std::string& label, int times);

  // --- Map / terminal steps ---------------------------------------------------
  /// Property values of the current elements.
  Traversal& PropertyValues(const std::string& key);
  int64_t Count() const;
  const std::vector<VertexId>& VertexIds() const { return vertices_; }
  const std::vector<EdgeId>& EdgeIds() const { return edges_; }
  const std::vector<sql::Value>& Values() const { return values_; }

  /// Materializes the vertex frontier as a relational table
  /// (id + requested properties) for cross-model joins.
  sql::Table ToTable(const std::vector<std::string>& property_cols) const;

 private:
  enum class Mode { kVertices, kEdges, kValues };

  const PropertyGraph* graph_;
  std::vector<VertexId> vertices_;
  std::vector<EdgeId> edges_;
  std::vector<sql::Value> values_;
  Mode mode_ = Mode::kVertices;
};

/// \brief `g` — the traversal source.
class GraphTraversalSource {
 public:
  explicit GraphTraversalSource(const PropertyGraph* graph) : graph_(graph) {}
  Traversal V() const {
    Traversal t(graph_);
    t.V();
    return t;
  }
  Traversal V(VertexId id) const {
    Traversal t(graph_);
    t.V(id);
    return t;
  }

 private:
  const PropertyGraph* graph_;
};

}  // namespace ofi::graph
