/// \file versioned_store.h
/// \brief Versioned replicated KV state for the device-edge-cloud platform
/// (paper §IV-B2). Causality is tracked with version vectors — the paper's
/// "P2P sync algorithm to solve the time drift problem across devices":
/// no wall clocks are compared, ever. Concurrent updates resolve
/// deterministically on every replica (eventual consistency); the sync
/// protocol ships only entries the peer has not seen (no data loss, no
/// redundant data).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace ofi::edge {

using NodeId = int32_t;

/// \brief A version vector: node id -> update counter.
class VersionVector {
 public:
  void Bump(NodeId node) { ++counters_[node]; }
  uint64_t Of(NodeId node) const {
    auto it = counters_.find(node);
    return it == counters_.end() ? 0 : it->second;
  }

  enum class Order { kEqual, kBefore, kAfter, kConcurrent };
  /// Causal comparison of this vs other.
  Order Compare(const VersionVector& other) const;

  /// Pointwise maximum (used after conflict resolution so the merged entry
  /// dominates both inputs).
  void MergeMax(const VersionVector& other);

  uint64_t TotalEvents() const;
  const std::map<NodeId, uint64_t>& counters() const { return counters_; }
  size_t ByteSize() const { return counters_.size() * 12; }
  std::string ToString() const;

 private:
  std::map<NodeId, uint64_t> counters_;
};

/// One replicated entry.
struct Entry {
  std::string key;
  sql::Value value;
  VersionVector version;
  bool tombstone = false;   // deletes replicate as tombstones
  NodeId last_writer = -1;  // deterministic concurrent-update tiebreak

  size_t ByteSize() const {
    return key.size() + value.ByteSize() + version.ByteSize() + 6;
  }
};

/// Outcome of merging a remote entry into a local store.
enum class MergeResult {
  kApplied,     // remote was causally newer (or won the conflict)
  kStale,       // local already dominates; nothing changed
  kConflictResolvedLocal,  // concurrent; local won deterministically
};

/// \brief One replica's key-value state.
class ReplicatedStore {
 public:
  explicit ReplicatedStore(NodeId node) : node_(node) {}

  NodeId node() const { return node_; }

  /// Local write: bumps this node's counter on the entry's version.
  void Put(const std::string& key, sql::Value value);
  /// Local delete (tombstone).
  void Delete(const std::string& key);

  /// Live value (NotFound for absent or tombstoned keys).
  Result<sql::Value> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;

  /// Merges a remote entry (the receive side of sync). Resolution:
  /// dominance wins; concurrent updates pick the higher (TotalEvents,
  /// last_writer) pair — identical on every replica, hence convergent.
  MergeResult Merge(const Entry& remote);

  /// Entries the peer (described by its per-key versions summary) has not
  /// seen: every entry not dominated by the peer's version of that key.
  std::vector<Entry> EntriesNewerThan(
      const std::map<std::string, VersionVector>& peer_versions) const;

  /// Per-key version summary (the sync digest).
  std::map<std::string, VersionVector> VersionSummary() const;

  const std::map<std::string, Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  /// Count of live (non-tombstone) keys.
  size_t live_size() const;

 private:
  NodeId node_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ofi::edge
