#include "edge/versioned_store.h"

#include <algorithm>

namespace ofi::edge {

VersionVector::Order VersionVector::Compare(const VersionVector& other) const {
  bool less = false, greater = false;
  auto visit = [&](NodeId node) {
    uint64_t a = Of(node), b = other.Of(node);
    if (a < b) less = true;
    if (a > b) greater = true;
  };
  for (const auto& [node, c] : counters_) visit(node);
  for (const auto& [node, c] : other.counters_) visit(node);
  if (less && greater) return Order::kConcurrent;
  if (less) return Order::kBefore;
  if (greater) return Order::kAfter;
  return Order::kEqual;
}

void VersionVector::MergeMax(const VersionVector& other) {
  for (const auto& [node, c] : other.counters_) {
    counters_[node] = std::max(counters_[node], c);
  }
}

uint64_t VersionVector::TotalEvents() const {
  uint64_t total = 0;
  for (const auto& [node, c] : counters_) total += c;
  return total;
}

std::string VersionVector::ToString() const {
  std::string out = "<";
  bool first = true;
  for (const auto& [node, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(node) + ":" + std::to_string(c);
  }
  return out + ">";
}

void ReplicatedStore::Put(const std::string& key, sql::Value value) {
  Entry& e = entries_[key];
  e.key = key;
  e.value = std::move(value);
  e.version.Bump(node_);
  e.tombstone = false;
  e.last_writer = node_;
}

void ReplicatedStore::Delete(const std::string& key) {
  Entry& e = entries_[key];
  e.key = key;
  e.value = sql::Value::Null();
  e.version.Bump(node_);
  e.tombstone = true;
  e.last_writer = node_;
}

Result<sql::Value> ReplicatedStore::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.tombstone) {
    return Status::NotFound("no key: " + key);
  }
  return it->second.value;
}

bool ReplicatedStore::Contains(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && !it->second.tombstone;
}

MergeResult ReplicatedStore::Merge(const Entry& remote) {
  auto it = entries_.find(remote.key);
  if (it == entries_.end()) {
    entries_[remote.key] = remote;
    return MergeResult::kApplied;
  }
  Entry& local = it->second;
  switch (local.version.Compare(remote.version)) {
    case VersionVector::Order::kEqual:
    case VersionVector::Order::kAfter:
      return MergeResult::kStale;
    case VersionVector::Order::kBefore:
      local = remote;
      return MergeResult::kApplied;
    case VersionVector::Order::kConcurrent: {
      // Deterministic resolution: higher (total events, last_writer) wins.
      bool remote_wins =
          std::make_pair(remote.version.TotalEvents(), remote.last_writer) >
          std::make_pair(local.version.TotalEvents(), local.last_writer);
      VersionVector merged = local.version;
      merged.MergeMax(remote.version);
      if (remote_wins) {
        local = remote;
        local.version = merged;
        return MergeResult::kApplied;
      }
      local.version = merged;
      return MergeResult::kConflictResolvedLocal;
    }
  }
  return MergeResult::kStale;
}

std::vector<Entry> ReplicatedStore::EntriesNewerThan(
    const std::map<std::string, VersionVector>& peer_versions) const {
  std::vector<Entry> out;
  for (const auto& [key, entry] : entries_) {
    auto it = peer_versions.find(key);
    if (it == peer_versions.end()) {
      out.push_back(entry);
      continue;
    }
    auto order = entry.version.Compare(it->second);
    if (order == VersionVector::Order::kAfter ||
        order == VersionVector::Order::kConcurrent) {
      out.push_back(entry);
    }
  }
  return out;
}

std::map<std::string, VersionVector> ReplicatedStore::VersionSummary() const {
  std::map<std::string, VersionVector> out;
  for (const auto& [key, entry] : entries_) out[key] = entry.version;
  return out;
}

size_t ReplicatedStore::live_size() const {
  size_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (!e.tombstone) ++n;
  }
  return n;
}

}  // namespace ofi::edge
