#include "edge/mbaas.h"

namespace ofi::edge {

void MbaasClient::Put(const std::string& collection, const std::string& id,
                      const Record& record) {
  std::string prefix = RecordPrefix(collection, id);
  node_->Put(prefix, sql::Value(true));  // presence marker
  for (const auto& [field, value] : record) {
    node_->Put(prefix + "/" + field, value);
  }
}

void MbaasClient::Delete(const std::string& collection, const std::string& id) {
  std::string prefix = RecordPrefix(collection, id);
  // Tombstone the marker and every live field key.
  std::vector<std::string> to_delete = {prefix};
  const auto& entries = node_->store().entries();
  for (auto it = entries.lower_bound(prefix + "/");
       it != entries.end() && it->first.rfind(prefix + "/", 0) == 0; ++it) {
    if (!it->second.tombstone) to_delete.push_back(it->first);
  }
  for (const auto& key : to_delete) node_->Delete(key);
}

Result<Record> MbaasClient::Get(const std::string& collection,
                                const std::string& id) const {
  std::string prefix = RecordPrefix(collection, id);
  if (!node_->store().Contains(prefix)) {
    return Status::NotFound("no record " + collection + "/" + id);
  }
  Record record;
  const auto& entries = node_->store().entries();
  for (auto it = entries.lower_bound(prefix + "/");
       it != entries.end() && it->first.rfind(prefix + "/", 0) == 0; ++it) {
    if (it->second.tombstone) continue;
    record[it->first.substr(prefix.size() + 1)] = it->second.value;
  }
  return record;
}

std::vector<std::string> MbaasClient::List(const std::string& collection) const {
  std::string prefix = app_ + "/" + collection + "/";
  std::vector<std::string> ids;
  const auto& entries = node_->store().entries();
  for (auto it = entries.lower_bound(prefix);
       it != entries.end() && it->first.rfind(prefix, 0) == 0; ++it) {
    if (it->second.tombstone) continue;
    // Presence markers have no '/' after the id.
    std::string tail = it->first.substr(prefix.size());
    if (tail.find('/') == std::string::npos) ids.push_back(tail);
  }
  return ids;
}

void MbaasClient::Listen(const std::string& collection, RecordListener listener) {
  std::string prefix = app_ + "/" + collection + "/";
  std::string coll = collection;
  node_->Subscribe(
      prefix, [prefix, coll, listener](const std::string& key,
                                       const sql::Value& value) {
        std::string tail = key.substr(prefix.size());
        auto slash = tail.find('/');
        if (slash == std::string::npos) {
          // Presence marker changed: creation (TRUE) or deletion (NULL).
          if (value.is_null()) listener(coll, tail, Record{});
          return;
        }
        std::string id = tail.substr(0, slash);
        std::string field = tail.substr(slash + 1);
        Record changed;
        if (!value.is_null()) changed[field] = value;
        listener(coll, id, changed);
      });
}

}  // namespace ofi::edge
