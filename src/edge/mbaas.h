/// \file mbaas.h
/// \brief Mobile Backend as a Service (paper §IV-B2): the Firebase /
/// CloudKit-style developer API over the sync platform — apps work with
/// named COLLECTIONS of RECORDS (field maps) on their local device, get
/// change listeners, and the platform syncs: through the cloud like current
/// MBaaS products, or directly device-to-device over the ad-hoc network
/// (the paper's envisioned extension).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "edge/platform.h"

namespace ofi::edge {

/// A record is a named bag of fields.
using Record = std::map<std::string, sql::Value>;

/// Change listener: (collection, record id, fields; empty = deleted).
using RecordListener =
    std::function<void(const std::string&, const std::string&, const Record&)>;

/// \brief One app instance running on one node (usually a device).
class MbaasClient {
 public:
  MbaasClient(Platform* platform, SyncNode* node, std::string app)
      : platform_(platform), node_(node), app_(std::move(app)) {}

  const std::string& app() const { return app_; }
  SyncNode* node() { return node_; }

  /// Writes (creates or replaces) a record.
  void Put(const std::string& collection, const std::string& id,
           const Record& record);
  /// Deletes a record.
  void Delete(const std::string& collection, const std::string& id);
  /// Reads one record (NotFound if absent on this device).
  Result<Record> Get(const std::string& collection, const std::string& id) const;
  /// All record ids of a collection present on this device.
  std::vector<std::string> List(const std::string& collection) const;

  /// Fires on every change to `collection` (local or synced in).
  void Listen(const std::string& collection, RecordListener listener);

  /// Syncs this device with another app instance directly (D2D).
  SyncStats SyncWith(MbaasClient* other) {
    return platform_->SyncPair(node_->id(), other->node()->id());
  }
  /// Current-MBaaS behaviour: sync through the cloud.
  Result<SyncStats> SyncViaCloud(MbaasClient* other) {
    return platform_->SyncThroughCloud(node_->id(), other->node()->id());
  }

 private:
  // Key layout: app/collection/id/field -> value, plus a presence marker
  // app/collection/id -> TRUE so deletes and listing are well-defined.
  std::string RecordPrefix(const std::string& collection,
                           const std::string& id) const {
    return app_ + "/" + collection + "/" + id;
  }

  Platform* platform_;
  SyncNode* node_;
  std::string app_;
};

}  // namespace ofi::edge
