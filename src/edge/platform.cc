#include "edge/platform.h"

#include <algorithm>

namespace ofi::edge {

void SyncNode::Notify(const std::string& key, const sql::Value& value) {
  for (const auto& [prefix, cb] : subscriptions_) {
    if (key.rfind(prefix, 0) == 0) cb(key, value);
  }
}

bool SyncPolicy::Allows(const std::string& key, Tier tier) const {
  // Longest matching prefix wins; no match = allowed anywhere.
  const PlacementRule* best = nullptr;
  for (const auto& rule : rules_) {
    if (key.rfind(rule.key_prefix, 0) != 0) continue;
    if (best == nullptr || rule.key_prefix.size() > best->key_prefix.size()) {
      best = &rule;
    }
  }
  if (best == nullptr) return true;
  return static_cast<int>(tier) <= static_cast<int>(best->max_tier);
}

int Platform::TierPairKey(Tier a, Tier b) {
  int x = static_cast<int>(a), y = static_cast<int>(b);
  if (x > y) std::swap(x, y);
  return x * 16 + y;
}

Platform::Platform() {
  // Defaults loosely modeling: Bluetooth/WLAN direct ~ low latency; WAN to
  // the cloud ~ an order of magnitude slower (the paper's "at least 10X").
  SetLink(Tier::kDevice, Tier::kDevice, LinkProfile{4'000, 30});
  SetLink(Tier::kDevice, Tier::kEdge, LinkProfile{8'000, 40});
  SetLink(Tier::kEdge, Tier::kEdge, LinkProfile{10'000, 20});
  SetLink(Tier::kDevice, Tier::kCloud, LinkProfile{50'000, 100});
  SetLink(Tier::kEdge, Tier::kCloud, LinkProfile{30'000, 50});
  SetLink(Tier::kCloud, Tier::kCloud, LinkProfile{2'000, 5});
}

SyncNode* Platform::AddNode(const std::string& name, Tier tier) {
  NodeId id = next_id_++;
  auto node = std::make_unique<SyncNode>(id, name, tier);
  SyncNode* raw = node.get();
  nodes_[id] = std::move(node);
  return raw;
}

Status Platform::RemoveNode(NodeId id) {
  if (nodes_.erase(id) == 0) return Status::NotFound("no node");
  return Status::OK();
}

SyncNode* Platform::node(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Platform::SetLink(Tier a, Tier b, LinkProfile profile) {
  links_[TierPairKey(a, b)] = profile;
}

LinkProfile Platform::Link(Tier a, Tier b) const {
  auto it = links_.find(TierPairKey(a, b));
  return it == links_.end() ? LinkProfile{10'000, 50} : it->second;
}

SyncStats Platform::SyncPair(NodeId a, NodeId b) {
  SyncStats stats;
  SyncNode* na = node(a);
  SyncNode* nb = node(b);
  if (na == nullptr || nb == nullptr) return stats;
  LinkProfile link = Link(na->tier(), nb->tier());

  // Round 1: digest exchange.
  auto digest_a = na->store().VersionSummary();
  auto digest_b = nb->store().VersionSummary();
  size_t digest_bytes = 0;
  for (const auto& [k, vv] : digest_a) digest_bytes += k.size() + vv.ByteSize();
  for (const auto& [k, vv] : digest_b) digest_bytes += k.size() + vv.ByteSize();
  stats.bytes_on_wire += digest_bytes;
  stats.latency_us += link.rtt_us;

  // Round 2: ship deltas both ways, apply, fire subscriptions.
  auto ship = [&](SyncNode* from, SyncNode* to,
                  const std::map<std::string, VersionVector>& to_digest) {
    for (const Entry& e : from->store().EntriesNewerThan(to_digest)) {
      // Placement policy: the entry may be forbidden on the receiver's tier
      // (e.g. private keys never leave the device tier).
      if (!policy_.Allows(e.key, to->tier())) {
        stats.blocked_by_policy++;
        continue;
      }
      stats.entries_sent++;
      stats.bytes_on_wire += e.ByteSize();
      MergeResult r = to->store().Merge(e);
      if (r == MergeResult::kApplied) {
        to->Notify(e.key, e.tombstone ? sql::Value::Null() : e.value);
      }
      if (r == MergeResult::kConflictResolvedLocal) stats.conflicts++;
    }
  };
  ship(na, nb, digest_b);
  ship(nb, na, digest_a);
  stats.latency_us += link.rtt_us;
  stats.latency_us += static_cast<SimTime>(
      static_cast<double>(stats.bytes_on_wire) / 1024.0 * link.us_per_kb);
  return stats;
}

Result<SyncStats> Platform::SyncThroughCloud(NodeId a, NodeId b) {
  OFI_ASSIGN_OR_RETURN(NodeId cloud, CloudNode());
  SyncStats s1 = SyncPair(a, cloud);
  SyncStats s2 = SyncPair(cloud, b);
  // And the answer propagates back to a on its next poll.
  SyncStats s3 = SyncPair(cloud, a);
  SyncStats total;
  total.entries_sent = s1.entries_sent + s2.entries_sent + s3.entries_sent;
  total.bytes_on_wire = s1.bytes_on_wire + s2.bytes_on_wire + s3.bytes_on_wire;
  total.conflicts = s1.conflicts + s2.conflicts + s3.conflicts;
  total.blocked_by_policy =
      s1.blocked_by_policy + s2.blocked_by_policy + s3.blocked_by_policy;
  total.latency_us = s1.latency_us + s2.latency_us + s3.latency_us;
  return total;
}

SyncStats Platform::SyncAllPairs() {
  SyncStats total;
  std::vector<NodeId> ids;
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      SyncStats s = SyncPair(ids[i], ids[j]);
      total.entries_sent += s.entries_sent;
      total.bytes_on_wire += s.bytes_on_wire;
      total.conflicts += s.conflicts;
      total.blocked_by_policy += s.blocked_by_policy;
      total.latency_us += s.latency_us;
    }
  }
  return total;
}

Result<NodeId> Platform::CloudNode() const {
  for (const auto& [id, n] : nodes_) {
    if (n->tier() == Tier::kCloud) return id;
  }
  return Status::NotFound("no cloud node in the platform");
}

}  // namespace ofi::edge
