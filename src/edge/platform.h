/// \file platform.h
/// \brief The distributed collaboration platform across devices, edge and
/// cloud (paper §IV-B, Fig. 13): nodes in three tiers connected by
/// latency-parameterized links, pairwise anti-entropy sync sessions (the
/// distributed-data layer), key-prefix subscriptions (real-time
/// query-based events), and an MBaaS-style facade that syncs either
/// through the cloud or directly device-to-device — direct ad-hoc links
/// are ~10x faster than the Internet path (§IV-B2).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "edge/versioned_store.h"

namespace ofi::edge {

enum class Tier : uint8_t { kDevice, kEdge, kCloud };

/// Subscription callback: (key, new value or NULL on delete).
using EventCallback = std::function<void(const std::string&, const sql::Value&)>;

/// \brief One participant: a device, edge server or cloud region.
class SyncNode {
 public:
  SyncNode(NodeId id, std::string name, Tier tier)
      : id_(id), name_(std::move(name)), tier_(tier), store_(id) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Tier tier() const { return tier_; }
  ReplicatedStore& store() { return store_; }
  const ReplicatedStore& store() const { return store_; }

  /// Local write (application-side).
  void Put(const std::string& key, sql::Value value) {
    store_.Put(key, value);
    Notify(key, value);
  }
  void Delete(const std::string& key) {
    store_.Delete(key);
    Notify(key, sql::Value::Null());
  }
  Result<sql::Value> Get(const std::string& key) const { return store_.Get(key); }

  /// Query-based event subscription: fires on every applied change whose key
  /// starts with `prefix` (local writes and incoming sync alike).
  void Subscribe(const std::string& prefix, EventCallback cb) {
    subscriptions_.emplace_back(prefix, std::move(cb));
  }
  void Notify(const std::string& key, const sql::Value& value);

 private:
  NodeId id_;
  std::string name_;
  Tier tier_;
  ReplicatedStore store_;
  std::vector<std::pair<std::string, EventCallback>> subscriptions_;
};

/// Cost/result of one sync session.
struct SyncStats {
  size_t entries_sent = 0;     // both directions
  size_t bytes_on_wire = 0;    // entries + digests
  size_t conflicts = 0;
  size_t blocked_by_policy = 0;  // entries withheld by placement rules
  SimTime latency_us = 0;      // simulated wall time of the session
};

/// Link parameters between two tiers.
struct LinkProfile {
  SimTime rtt_us = 0;               // per round trip
  double us_per_kb = 0;             // serialization cost
};

/// \brief A declarative sync & placement rule (paper §IV-B1 "Secure:
/// supports strong data privacy with declarative data sync and placement
/// policy using fine granularity authorization rules"). Rules match key
/// prefixes and bound which tiers an entry may be placed on; the most
/// specific (longest-prefix) matching rule wins.
struct PlacementRule {
  std::string key_prefix;
  /// Highest tier the data may reach: kDevice = never leaves devices,
  /// kEdge = devices + edge servers, kCloud = anywhere (the default).
  Tier max_tier = Tier::kCloud;
};

/// \brief Ordered rule set evaluated per entry during sync.
class SyncPolicy {
 public:
  void AddRule(PlacementRule rule) { rules_.push_back(std::move(rule)); }

  /// True if `key` may be placed on a node of tier `tier`.
  bool Allows(const std::string& key, Tier tier) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<PlacementRule> rules_;
};

/// \brief The platform: nodes + links + sync orchestration.
class Platform {
 public:
  Platform();

  /// Adds a node; returns it (owned by the platform).
  SyncNode* AddNode(const std::string& name, Tier tier);
  /// Removes a node (devices join and leave the ad-hoc network dynamically).
  Status RemoveNode(NodeId id);
  SyncNode* node(NodeId id);
  size_t num_nodes() const { return nodes_.size(); }

  /// Overrides the default link profile between two tiers.
  void SetLink(Tier a, Tier b, LinkProfile profile);
  LinkProfile Link(Tier a, Tier b) const;

  /// The platform-wide placement policy; rules apply to every future sync.
  SyncPolicy& policy() { return policy_; }
  const SyncPolicy& policy() const { return policy_; }

  /// One bidirectional anti-entropy session between two nodes:
  /// digest exchange, then each side ships entries the other lacks.
  /// No loss: afterwards both stores are identical for all synced keys.
  /// No duplication: a second immediate session ships zero entries.
  SyncStats SyncPair(NodeId a, NodeId b);

  /// Device-to-device sync routed THROUGH the cloud (the current-MBaaS
  /// baseline): a syncs with the cloud node, then the cloud syncs with b.
  Result<SyncStats> SyncThroughCloud(NodeId a, NodeId b);

  /// Full anti-entropy round over all node pairs (gossip convergence).
  SyncStats SyncAllPairs();

  /// The designated cloud node (first added cloud-tier node).
  Result<NodeId> CloudNode() const;

 private:
  std::map<NodeId, std::unique_ptr<SyncNode>> nodes_;
  std::map<int, LinkProfile> links_;  // key = TierPairKey
  SyncPolicy policy_;
  NodeId next_id_ = 1;

  static int TierPairKey(Tier a, Tier b);
};

}  // namespace ofi::edge
